"""Property-based tests (hypothesis) on the core invariants.

These complement the exhaustive small-parameter tests with randomized
exploration of larger parameter spaces: round-trip recovery, schedule
executor equivalence, field laws, and update/encode consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes import make_code
from repro.core.decoder import decode_schedule
from repro.core.encoder import encode_schedule
from repro.engine.executor import (
    StreamingSchedule,
    compile_schedule,
    execute_bits,
)
from repro.engine.ops import Schedule
from repro.gf.gf256 import GF256
from repro.utils.modular import Mod, mod_inverse
from repro.utils.primes import primes_up_to
from repro.utils.words import WORD_BYTES, WORD_DTYPE, bytes_to_words, words_to_bytes

PRIMES = [p for p in primes_up_to(23) if p != 2]

pk_strategy = st.sampled_from(PRIMES).flatmap(
    lambda p: st.tuples(st.just(p), st.integers(2, p))
)

CODE_NAMES = ["liberation-optimal", "liberation-original", "evenodd", "rdp"]


def build_code(name, p, k, element_size=8):
    if name == "rdp":
        k = min(k, p - 1)
        if k < 2:
            k = 2
    return make_code(name, k, p=p, element_size=element_size)


@st.composite
def code_and_erasures(draw):
    name = draw(st.sampled_from(CODE_NAMES))
    p, k = draw(pk_strategy)
    if name == "rdp" and k >= p:
        k = p - 1
    n_ers = draw(st.integers(0, 2))
    ers = draw(
        st.lists(
            st.integers(0, k + 1), min_size=n_ers, max_size=n_ers, unique=True
        )
    )
    return name, p, k, tuple(sorted(ers))


class TestRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(case=code_and_erasures(), seed=st.integers(0, 2**31))
    def test_decode_inverts_erasure(self, case, seed):
        name, p, k, ers = case
        code = build_code(name, p, k)
        rng = np.random.default_rng(seed)
        buf = code.alloc_stripe()
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code.encode(buf)
        ref = buf.copy()
        for c in ers:
            buf[c] = rng.integers(0, 2**64, buf[c].shape, dtype=np.uint64)
        code.decode(buf, list(ers))
        assert np.array_equal(buf[: code.n_cols], ref[: code.n_cols])


class TestUpdateProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        case=code_and_erasures(),
        seed=st.integers(0, 2**31),
        n_updates=st.integers(1, 6),
    )
    def test_updates_preserve_consistency(self, case, seed, n_updates):
        """Any sequence of delta updates == full re-encode."""
        name, p, k, _ = case
        code = build_code(name, p, k)
        rng = np.random.default_rng(seed)
        buf = code.alloc_stripe()
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code.encode(buf)
        for _ in range(n_updates):
            col = int(rng.integers(0, code.k))
            row = int(rng.integers(0, code.rows))
            code.update(
                buf, col, row, rng.integers(0, 2**64, buf[col, row].shape, dtype=np.uint64)
            )
        assert code.verify(buf)


class TestLiberationBounds:
    @settings(max_examples=60, deadline=None)
    @given(pk=pk_strategy)
    def test_encode_always_at_bound(self, pk):
        p, k = pk
        assert encode_schedule(p, k).n_xors == 2 * p * (k - 1)

    @settings(max_examples=60, deadline=None)
    @given(pk=pk_strategy, data=st.data())
    def test_decode_never_below_bound(self, pk, data):
        p, k = pk
        l = data.draw(st.integers(0, k - 1))
        r = data.draw(st.integers(0, k - 1).filter(lambda x: x != l))
        sched = decode_schedule(p, k, sorted((l, r)))
        # Information-theoretic floor: each missing bit needs at least
        # one XOR with something, and the bound is k-1 per bit.
        assert sched.n_xors >= 2 * p * (k - 1) - 2 * p  # generous floor
        # ... and the near-optimality ceiling from the paper.
        assert sched.n_xors <= 2 * p * (k - 1) * 1.30 + 4 * p


class TestExecutorEquivalence:
    @st.composite
    def schedules(draw):
        cols = draw(st.integers(2, 6))
        rows = draw(st.integers(1, 5))
        n_ops = draw(st.integers(1, 80))
        rng = np.random.default_rng(draw(st.integers(0, 2**31)))
        s = Schedule(cols, rows)
        for _ in range(n_ops):
            dst = (int(rng.integers(0, cols)), int(rng.integers(0, rows)))
            src = (int(rng.integers(0, cols)), int(rng.integers(0, rows)))
            if dst == src:
                continue
            if not s.touched(dst) or rng.random() < 0.2:
                s.copy_cell(dst, src)
            else:
                s.accumulate(dst, src)
        return s

    @settings(max_examples=100, deadline=None)
    @given(sched=schedules(), seed=st.integers(0, 2**31))
    def test_three_executors_agree(self, sched, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (sched.cols, sched.rows)).astype(np.uint8)
        words = bits.astype(np.uint64)[:, :, None]
        streaming = words.copy()
        execute_bits(sched, bits)
        compile_schedule(sched).run(words)
        StreamingSchedule(sched).run(streaming)
        assert np.array_equal(words[:, :, 0], bits.astype(np.uint64))
        assert np.array_equal(streaming, words)

    @settings(max_examples=60, deadline=None)
    @given(sched=schedules())
    def test_xor_count_invariant_under_compilation(self, sched):
        """Compilation may fuse ops but never changes the declared cost."""
        before = sched.n_xors
        compile_schedule(sched)
        assert sched.n_xors == before


class TestWordCodecProperty:
    """bytes_to_words / words_to_bytes round-trip at every alignment."""

    @settings(max_examples=120, deadline=None)
    @given(n_words=st.integers(0, 64), seed=st.integers(0, 2**31))
    def test_round_trip_aligned(self, n_words, seed):
        blob = np.random.default_rng(seed).bytes(n_words * WORD_BYTES)
        words = bytes_to_words(blob)
        assert words.dtype == WORD_DTYPE
        assert words.size == n_words
        assert words_to_bytes(words) == blob

    @settings(max_examples=120, deadline=None)
    @given(words=st.lists(st.integers(0, 2**64 - 1), max_size=32))
    def test_round_trip_from_words(self, words):
        arr = np.array(words, dtype=WORD_DTYPE)
        back = bytes_to_words(words_to_bytes(arr))
        assert np.array_equal(back, arr)

    @settings(max_examples=120, deadline=None)
    @given(n=st.integers(0, 256))
    def test_misaligned_lengths_rejected(self, n):
        blob = b"\x5a" * n
        if n % WORD_BYTES:
            with pytest.raises(ValueError):
                bytes_to_words(blob)
        else:
            assert words_to_bytes(bytes_to_words(blob)) == blob

    @settings(max_examples=60, deadline=None)
    @given(n_words=st.integers(1, 32), seed=st.integers(0, 2**31))
    def test_accepts_any_buffer_type(self, n_words, seed):
        blob = np.random.default_rng(seed).bytes(n_words * WORD_BYTES)
        for view in (blob, bytearray(blob), memoryview(blob)):
            assert np.array_equal(bytes_to_words(view), bytes_to_words(blob))


class TestModularProperty:
    """The paper's <.> operator and its derived constants, any prime."""

    @settings(max_examples=200, deadline=None)
    @given(p=st.sampled_from(PRIMES), x=st.integers(-10**6, 10**6))
    def test_residue_range_and_congruence(self, p, x):
        m = Mod(p)
        r = m(x)
        assert 0 <= r < p
        assert (x - r) % p == 0
        assert m(r) == r  # idempotent on residues

    @settings(max_examples=200, deadline=None)
    @given(p=st.sampled_from(PRIMES), a=st.integers(-10**4, 10**4),
           b=st.integers(-10**4, 10**4))
    def test_homomorphism(self, p, a, b):
        m = Mod(p)
        assert m(a + b) == m(m(a) + m(b))
        assert m(a * b) == m(m(a) * m(b))

    @settings(max_examples=200, deadline=None)
    @given(p=st.sampled_from(PRIMES), a=st.integers(1, 10**4))
    def test_inverse_identity(self, p, a):
        m = Mod(p)
        if m(a) == 0:
            with pytest.raises(ZeroDivisionError):
                m.inv(a)
        else:
            assert m(a * m.inv(a)) == 1
            assert mod_inverse(a, p) == m.inv(a)

    @settings(max_examples=60, deadline=None)
    @given(p=st.sampled_from(PRIMES))
    def test_half_constants(self, p):
        m = Mod(p)
        assert m.half_minus + m.half_plus == p
        assert m(2 * m.half_plus) == 1  # (p+1)/2 is the inverse of 2
        assert m.inv(2) == m.half_plus


class TestEraseAnyTwoProperty:
    """encode -> erase any <= 2 columns -> decode, on the ISSUE's exact
    prime menu, for every code family (superset runs above draw p more
    broadly; this pins the named contract)."""

    @settings(max_examples=100, deadline=None)
    @given(
        name=st.sampled_from(CODE_NAMES),
        p=st.sampled_from([5, 7, 11, 13]),
        data=st.data(),
    )
    def test_any_two_erasures_recovered(self, name, p, data):
        k = data.draw(st.integers(2, p - 1 if name == "rdp" else p))
        code = build_code(name, p, k)
        ers = data.draw(st.lists(st.integers(0, code.n_cols - 1),
                                 min_size=2, max_size=2, unique=True))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        buf = code.alloc_stripe()
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code.encode(buf)
        ref = buf.copy()
        for c in ers:
            buf[c] = rng.integers(0, 2**64, buf[c].shape, dtype=np.uint64)
        code.decode(buf, sorted(ers))
        assert np.array_equal(buf[: code.n_cols], ref[: code.n_cols])


class TestGF256Properties:
    gf = GF256()

    @settings(max_examples=200, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
    def test_ring_axioms(self, a, b, c):
        gf = self.gf
        assert int(gf.mul(a, b)) == int(gf.mul(b, a))
        assert int(gf.mul(gf.mul(a, b), c)) == int(gf.mul(a, gf.mul(b, c)))
        assert int(gf.mul(a, b ^ c)) == int(gf.mul(a, b)) ^ int(gf.mul(a, c))

    @settings(max_examples=100, deadline=None)
    @given(a=st.integers(1, 255))
    def test_inverse(self, a):
        assert int(self.gf.mul(a, self.gf.inverse(a))) == 1


class TestErrorCorrectionProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        pk=pk_strategy,
        col_seed=st.integers(0, 2**31),
    )
    def test_any_single_column_corruption_corrected(self, pk, col_seed):
        from repro.core.error_correction import ScanStatus, locate_and_correct

        p, k = pk
        code = make_code("liberation-optimal", k, p=p, element_size=8)
        rng = np.random.default_rng(col_seed)
        buf = code.alloc_stripe()
        buf[:k] = rng.integers(0, 2**64, buf[:k].shape, dtype=np.uint64)
        code.encode(buf)
        ref = buf.copy()
        col = int(rng.integers(0, k + 2))
        n = int(rng.integers(1, p + 1))
        rows = rng.choice(p, size=n, replace=False)
        for r in rows:
            buf[col, r] ^= rng.integers(1, 2**64, buf[col, r].shape, dtype=np.uint64)
        res = locate_and_correct(code.geometry, buf)
        assert res.status is ScanStatus.CORRECTED
        assert res.column == col
        assert np.array_equal(buf, ref)
