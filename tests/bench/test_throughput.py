"""Tests for the throughput harness (small, fast configurations)."""

import pytest

from repro.bench.throughput import (
    ThroughputResult,
    decode_throughput_series,
    encode_throughput_series,
    element_size_series,
    make_bench_code,
    measure_decode,
    measure_encode,
)


FAST = dict(inner=2, repeats=1)


class TestMeasureEncode:
    def test_result_fields(self):
        res = measure_encode("liberation-optimal", 4, element_size=64, **FAST)
        assert isinstance(res, ThroughputResult)
        assert res.k == 4 and res.p == 5 and res.element_size == 64
        assert res.gbps > 0 and res.seconds_per_call > 0

    def test_explicit_p(self):
        res = measure_encode("liberation-optimal", 4, p=11, element_size=64, **FAST)
        assert res.p == 11

    def test_bench_code_is_streaming(self):
        code = make_bench_code("liberation-original", 4, None, 64)
        assert code.execution == "streaming"


class TestMeasureDecode:
    def test_runs_and_positive(self):
        res = measure_decode(
            "liberation-optimal", 4, element_size=64, max_pairs=2, **FAST
        )
        assert res.gbps > 0

    def test_original_slower_than_optimal(self):
        """The paper's headline direction must hold even at toy sizes:
        the original pays a matrix inversion per decode call."""
        opt = measure_decode(
            "liberation-optimal", 6, p=7, element_size=256, max_pairs=3, **FAST
        )
        orig = measure_decode(
            "liberation-original", 6, p=7, element_size=256, max_pairs=3, **FAST
        )
        assert opt.gbps > orig.gbps


class TestSeries:
    def test_encode_series_shape(self):
        rows = encode_throughput_series([3, 4], element_size=64, **FAST)
        assert [r["k"] for r in rows] == [3, 4]
        for r in rows:
            assert r["liberation-original"] > 0
            assert r["liberation-optimal"] > 0

    def test_decode_series_shape(self):
        rows = decode_throughput_series(
            [3, 4], element_size=64, max_pairs=2, **FAST
        )
        assert len(rows) == 2

    def test_element_size_series_shape(self):
        data = element_size_series(p_values=(5,), log2_sizes=(6, 7), **FAST)
        assert list(data) == [5]
        assert [r["log2_elem"] for r in data[5]] == [6, 7]

    def test_fixed_p_series(self):
        rows = encode_throughput_series([3, 5], p=7, element_size=64, **FAST)
        assert len(rows) == 2
