"""Tests for series rendering and persistence."""

import json

from repro.bench.report import format_table, results_dir, save_json_report, save_series


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"k": 2, "x": 1.0}, {"k": 10, "x": 0.5}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["k", "x"]
        assert "1.0000" in out and "0.5000" in out

    def test_none_rendered_as_dash(self):
        out = format_table([{"k": 2, "x": None}])
        assert "-" in out.splitlines()[-1]

    def test_empty_rows(self):
        assert format_table([], title="hi") == "hi\n"
        assert format_table([]) == ""

    def test_wide_values_widen_columns(self):
        rows = [{"name": "liberation-optimal", "v": 1}]
        header, sep, row = format_table(rows).splitlines()
        assert len(header) == len(row)


class TestSaveSeries:
    def test_writes_file(self, tmp_path):
        path = save_series("fig_test", [{"k": 1, "v": 2.0}], base=tmp_path)
        assert path.read_text().startswith("k")
        assert path.parent == tmp_path

    def test_results_dir_created(self, tmp_path):
        d = results_dir(tmp_path / "nested" / "results")
        assert d.is_dir()


class TestSaveJsonReport:
    SERIES = [
        {"name": "fig05", "title": "Fig. 5", "rows": [{"k": 2, "xors": 1.0}]},
        {"name": "table1", "title": None, "rows": []},
    ]

    def test_round_trips_every_series(self, tmp_path):
        path = save_json_report("BENCH_test.json", self.SERIES, base=tmp_path)
        doc = json.loads(path.read_text())
        assert [s["name"] for s in doc["series"]] == ["fig05", "table1"]
        assert doc["series"][0]["rows"] == [{"k": 2, "xors": 1.0}]
        assert doc["generated_unix"] > 0

    def test_metadata_stamped_at_top_level(self, tmp_path):
        path = save_json_report(
            "BENCH_test.json", self.SERIES, base=tmp_path, quick=True, python="3.11"
        )
        doc = json.loads(path.read_text())
        assert doc["quick"] is True and doc["python"] == "3.11"
