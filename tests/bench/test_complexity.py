"""Tests for the complexity experiment harness (Figs. 5-8, Table I)."""

import pytest

from repro.bench.complexity import (
    FIG5_CODES,
    all_data_pairs,
    decoding_complexity_point,
    decoding_complexity_series,
    encoding_complexity_point,
    encoding_complexity_series,
    table1_rows,
)


class TestPoints:
    def test_optimal_encoding_always_one(self):
        for k in (2, 5, 10, 16):
            assert encoding_complexity_point("liberation-optimal", k) == pytest.approx(1.0)

    def test_original_encoding_above_one(self):
        assert encoding_complexity_point("liberation-original", 8) > 1.0

    def test_decoding_point_with_subset(self):
        full = decoding_complexity_point("liberation-optimal", 8)
        sub = decoding_complexity_point(
            "liberation-optimal", 8, pairs=all_data_pairs(8)[:5]
        )
        assert 0.9 < sub / full < 1.1

    def test_all_data_pairs_count(self):
        assert len(all_data_pairs(6)) == 15


class TestFig5Series:
    """The Fig. 5 shape: optimal at 1.0, original above, EVENODD worst
    at small k, RDP at 1.0 when k = p-1."""

    def test_rows_and_columns(self):
        rows = encoding_complexity_series([4, 6, 10])
        assert [r["k"] for r in rows] == [4, 6, 10]
        for name in FIG5_CODES:
            assert all(name in r for r in rows)

    def test_optimal_flat_at_bound(self):
        rows = encoding_complexity_series([2, 6, 12, 18])
        assert all(r["liberation-optimal"] == pytest.approx(1.0) for r in rows)

    def test_ordering_matches_paper(self):
        for row in encoding_complexity_series([4, 8, 14]):
            assert row["liberation-optimal"] <= row["rdp"] + 1e-9
            assert row["liberation-optimal"] < row["liberation-original"]
            assert row["liberation-original"] < row["evenodd"]

    def test_rdp_optimal_at_its_sweet_spot(self):
        # k = 4 -> p = 5 = k+1: RDP encodes optimally.
        row = encoding_complexity_series([4])[0]
        assert row["rdp"] == pytest.approx(1.0)


class TestFig6Series:
    def test_fixed_p_scalability_story(self):
        """Fig. 6: at p=31, EVENODD/RDP degrade as k shrinks; the two
        Liberation curves stay flat."""
        rows = encoding_complexity_series([4, 10, 16, 22], p=31)
        evenodd = [r["evenodd"] for r in rows]
        rdp = [r["rdp"] for r in rows]
        assert evenodd[0] > evenodd[-1]  # worse at small k
        assert rdp[0] > rdp[-1]
        lib = [r["liberation-original"] for r in rows]
        assert max(lib) - min(lib) < 0.001  # flat
        opt = [r["liberation-optimal"] for r in rows]
        assert all(v == pytest.approx(1.0) for v in opt)

    def test_rdp_excluded_at_k_eq_p(self):
        rows = encoding_complexity_series([31], p=31)
        assert rows[0]["rdp"] is None
        assert rows[0]["evenodd"] == pytest.approx(1 + 0.5 / 30 - 0.5 / (30 * 30))


class TestFig7And8Series:
    def test_decode_reduction_band(self):
        rows = decoding_complexity_series([8, 12], max_pairs=12)
        for row in rows:
            orig = row["liberation-original"]
            opt = row["liberation-optimal"]
            assert 0.10 < 1 - opt / orig < 0.25

    def test_optimal_near_bound_p31(self):
        rows = decoding_complexity_series([14, 20], p=31, max_pairs=10)
        for row in rows:
            assert row["liberation-optimal"] < 1.05

    def test_max_pairs_subsampling(self):
        rows = decoding_complexity_series([10], max_pairs=5)
        assert rows[0]["liberation-optimal"] > 0


class TestTable1:
    def test_structure(self):
        rows = table1_rows(k=6)
        names = [r["code"] for r in rows]
        assert names[-1] == "lower-bound"
        assert set(names[:-1]) == set(FIG5_CODES)

    def test_bound_row_dominates(self):
        rows = table1_rows(k=6)
        bound = rows[-1]
        for r in rows[:-1]:
            assert r["encoding"] >= bound["encoding"] - 1e-9
            assert r["decoding"] >= bound["decoding"] - 1e-9
            assert r["update"] >= bound["update"] - 1e-9

    def test_liberation_optimal_meets_encode_bound(self):
        rows = {r["code"]: r for r in table1_rows(k=6)}
        assert rows["liberation-optimal"]["encoding"] == pytest.approx(5.0)
        assert rows["liberation-optimal"]["update"] < rows["evenodd"]["update"]
