"""VirtualClock semantics: virtual seconds cost no wall time, fire in
deadline order, and wait_for mirrors asyncio.wait_for."""

import asyncio
import time

import pytest

from repro.sim import RealClock, VirtualClock


def test_virtual_sleep_costs_no_wall_time():
    async def run():
        clock = VirtualClock()
        await clock.sleep(3600.0)
        return clock.time()

    wall0 = time.monotonic()
    virtual = asyncio.run(run())
    assert virtual == 3600.0
    assert time.monotonic() - wall0 < 2.0  # an hour of virtual time, instantly


def test_sleepers_fire_in_deadline_order():
    async def run():
        clock = VirtualClock()
        order = []

        async def napper(name, delay):
            await clock.sleep(delay)
            order.append((name, clock.time()))

        await asyncio.gather(
            napper("c", 3.0), napper("a", 1.0), napper("b", 2.0)
        )
        return order

    order = asyncio.run(run())
    assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_time_starts_at_start_and_is_monotonic():
    async def run():
        clock = VirtualClock(start=100.0)
        assert clock.time() == 100.0
        await clock.sleep(0.5)
        assert clock.time() == 100.5
        await clock.sleep(0)  # zero-sleep must not advance time
        assert clock.time() == 100.5

    asyncio.run(run())


def test_wait_for_timeout_cancels_and_raises():
    async def run():
        clock = VirtualClock()
        cancelled = asyncio.Event()

        async def forever():
            try:
                await clock.sleep(10_000.0)
            except asyncio.CancelledError:
                cancelled.set()
                raise

        with pytest.raises(asyncio.TimeoutError):
            await clock.wait_for(forever(), timeout=0.25)
        assert cancelled.is_set()
        return clock.time()

    assert asyncio.run(run()) == pytest.approx(0.25)


def test_wait_for_returns_result_before_timeout():
    async def run():
        clock = VirtualClock()

        async def quick():
            await clock.sleep(0.1)
            return "done"

        result = await clock.wait_for(quick(), timeout=50.0)
        return result, clock.time()

    result, t = asyncio.run(run())
    assert result == "done"
    assert t == pytest.approx(0.1)  # the loser timer never fires


def test_interleaved_sleep_chains_are_deterministic():
    """Two runs of the same concurrent sleep pattern trace identically."""

    def campaign():
        async def run():
            clock = VirtualClock()
            trace = []

            async def worker(name, period, n):
                for i in range(n):
                    await clock.sleep(period)
                    trace.append((name, i, clock.time()))

            await asyncio.gather(worker("x", 0.3, 4), worker("y", 0.5, 3))
            return trace

        return asyncio.run(run())

    assert campaign() == campaign()


def test_real_clock_smoke():
    async def run():
        clock = RealClock()
        t0 = clock.time()
        await clock.sleep(0)
        assert clock.time() >= t0
        assert await clock.wait_for(asyncio.sleep(0, result=7), timeout=5.0) == 7

    asyncio.run(run())
