"""MemoryTransport semantics: the failure surface must look exactly
like real sockets (refused connections, EOF on close) minus the kernel
timing noise."""

import asyncio

import pytest

from repro.sim import MemoryTransport


def test_serve_connect_round_trip():
    async def run():
        transport = MemoryTransport()
        served = []

        async def echo(reader, writer):
            data = await reader.readexactly(5)
            served.append(data)
            writer.write(data[::-1])
            await writer.drain()
            writer.close()

        listener = await transport.serve(echo, "127.0.0.1", 0)
        reader, writer = await transport.connect(listener.address)
        writer.write(b"hello")
        await writer.drain()
        back = await reader.readexactly(5)
        writer.close()
        listener.close()
        await listener.wait_closed()
        return served, back

    served, back = asyncio.run(run())
    assert served == [b"hello"]
    assert back == b"olleh"


def test_connect_to_unbound_address_refused():
    async def run():
        transport = MemoryTransport()
        with pytest.raises(ConnectionRefusedError):
            await transport.connect(("127.0.0.1", 50000))

    asyncio.run(run())


def test_closed_listener_refuses_new_connections():
    async def run():
        transport = MemoryTransport()

        async def handler(reader, writer):
            writer.close()

        listener = await transport.serve(handler, "127.0.0.1", 0)
        addr = listener.address
        await transport.connect(addr)  # reachable while bound
        listener.close()
        with pytest.raises(ConnectionRefusedError):
            await transport.connect(addr)

    asyncio.run(run())


def test_peer_close_feeds_eof():
    """A mid-frame close surfaces as IncompleteReadError, the same
    exception a dropped TCP connection produces."""

    async def run():
        transport = MemoryTransport()

        async def rude(reader, writer):
            writer.write(b"par")  # half a frame...
            writer.close()  # ...then hang up

        listener = await transport.serve(rude, "127.0.0.1", 0)
        reader, writer = await transport.connect(listener.address)
        with pytest.raises(asyncio.IncompleteReadError):
            await reader.readexactly(6)

    asyncio.run(run())


def test_write_after_close_raises_reset():
    async def run():
        transport = MemoryTransport()

        async def handler(reader, writer):
            await reader.read()

        listener = await transport.serve(handler, "127.0.0.1", 0)
        _, writer = await transport.connect(listener.address)
        writer.close()
        assert writer.is_closing()
        with pytest.raises(ConnectionResetError):
            writer.write(b"late")

    asyncio.run(run())


def test_transports_are_isolated_namespaces():
    async def run():
        net_a, net_b = MemoryTransport(), MemoryTransport()

        async def handler(reader, writer):
            writer.close()

        listener = await net_a.serve(handler, "127.0.0.1", 0)
        with pytest.raises(ConnectionRefusedError):
            await net_b.connect(listener.address)

    asyncio.run(run())


def test_ephemeral_ports_are_distinct_and_rebindable():
    async def run():
        transport = MemoryTransport()

        async def handler(reader, writer):
            writer.close()

        a = await transport.serve(handler, "127.0.0.1", 0)
        b = await transport.serve(handler, "127.0.0.1", 0)
        assert a.address != b.address
        with pytest.raises(OSError):
            await transport.serve(handler, *a.address)  # explicit clash
        a.close()
        again = await transport.serve(handler, *a.address)  # rebindable
        assert again.address == a.address

    asyncio.run(run())
