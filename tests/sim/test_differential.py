"""The differential fuzzer tested against itself.

The load-bearing test here is the ISSUE's acceptance drill: plant a
code with a single flipped XOR in its encode schedule, and the fuzzer
must catch it, shrink it to a minimal case, and write a repro file
that replays -- all in under 60 seconds.
"""

import json
import time

import pytest

from repro.codes import make_code
from repro.codes.liberation import LiberationOptimal
from repro.engine.ops import Schedule, XorOp
from repro.sim import StripeCase, fuzz, replay_file, shrink_case
from repro.sim.differential import run_stripe_case
from repro.sim.shrink import failure_signature


class BuggyOptimal(LiberationOptimal):
    """LiberationOptimal with one accumulate reading the wrong row."""

    name = "liberation-optimal"

    def build_encode_schedule(self):
        good = super().build_encode_schedule()
        ops = list(good)
        for i, op in enumerate(ops):
            if not op.copy:
                ops[i] = XorOp(op.dst_col, op.dst_row, op.src_col,
                               (op.src_row + 1) % good.rows)
                break
        return Schedule(good.cols, good.rows, ops)


def buggy_factory(name, k, **kwargs):
    if name == "liberation-optimal":
        return BuggyOptimal(k, **kwargs)
    return make_code(name, k, **kwargs)


class TestCleanStack:
    def test_fuzz_is_clean_on_the_real_stack(self):
        assert fuzz(seed=100, max_cases=8) is None

    def test_progress_callback_sees_every_case(self):
        seen = []
        fuzz(seed=0, max_cases=6, scenarios=False,
             on_progress=lambda n, rec: seen.append((n, rec["kind"])))
        assert [n for n, _ in seen] == [1, 2, 3, 4, 5, 6]
        assert all(kind == "stripe" for _, kind in seen)

    def test_membership_fuzz_is_clean_on_the_real_stack(self):
        # Every 4th-ish scenario slot becomes a churn campaign; a full
        # pass means each converged with zero misplaced stripes.
        assert fuzz(seed=100, max_cases=10, membership=True, shrink=False) is None

    def test_time_budget_terminates(self):
        t0 = time.monotonic()
        assert fuzz(seed=0, time_budget=1.0, scenarios=False) is None
        assert time.monotonic() - t0 < 30.0

    def test_stripe_case_generation_is_pure(self):
        assert StripeCase.generate(9).to_dict() == StripeCase.generate(9).to_dict()


class TestInjectedBug:
    def test_flipped_xor_caught_shrunk_and_replayable(self, tmp_path):
        """The ISSUE's acceptance drill, with its 60-second budget."""
        t0 = time.monotonic()
        failure = fuzz(seed=0, max_cases=50, code_factory=buggy_factory)
        assert failure is not None, "fuzzer missed a flipped XOR"
        assert failure.cases_run >= 1

        # Shrinking reached the floor of the geometry menu.
        shrunk = failure.shrunk
        assert shrunk["p"] == 5
        assert shrunk["k"] == 2
        assert shrunk["element_size"] == 8

        # The repro file replays: still failing on the buggy stack,
        # passing on the healthy one.
        repro = tmp_path / "repro.json"
        failure.save(repro)
        err = replay_file(repro, code_factory=buggy_factory)
        assert err is not None
        assert replay_file(repro) is None

        assert time.monotonic() - t0 < 60.0, "acceptance budget blown"

        record = json.loads(repro.read_text())
        assert record["original"] == failure.case
        assert "error" in record

    def test_direct_stripe_case_diverges(self):
        case = StripeCase(seed=0, p=5, k=2, element_size=8, erasures=[])
        with pytest.raises(AssertionError, match="encode"):
            run_stripe_case(case, code_factory=buggy_factory)


class TestShrinker:
    def test_signature_none_on_healthy_case(self):
        case = StripeCase.generate(4).to_dict()
        assert failure_signature(case) is None

    def test_shrink_preserves_signature_and_reduces(self):
        big = StripeCase(seed=33, p=13, k=8, element_size=32,
                         erasures=[0, 9]).to_dict()
        target = failure_signature(big, code_factory=buggy_factory)
        assert target is not None
        small = shrink_case(big, code_factory=buggy_factory)
        assert failure_signature(small, code_factory=buggy_factory) == target
        assert (small["p"], small["k"]) == (5, 2)
        assert small["element_size"] == 8
        assert small["erasures"] == []

    def test_shrink_returns_unreproducible_case_unchanged(self):
        healthy = StripeCase.generate(4).to_dict()
        assert shrink_case(healthy) == healthy
