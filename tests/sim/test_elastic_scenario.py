"""Seeded membership-churn campaigns: joins, heartbeat-detected
leaves, drains and spurious epoch bumps, every one of which must
converge -- the closing ``check_placement`` proves zero misplaced
stripes, every holder inside the LIVE pool and every held strip
scrub-clean -- and replay bit-identically from its seed."""

import pytest

from repro.sim import SimScenario, generate_scenario, run_scenario
from repro.sim.scenario import ELASTIC_OPS

#: Seeds chosen to cover join / leave / drain / epoch_bump branches.
SEEDS = [0, 2, 3, 5]

ALLOWED = ELASTIC_OPS | {"write", "read", "read_all"}


def test_generation_is_pure_and_elastic():
    for seed in SEEDS:
        a = generate_scenario(seed, elastic=True)
        b = generate_scenario(seed, elastic=True)
        assert a.to_dict() == b.to_dict()
        assert a.n_nodes >= a.k + 2
        assert {op["op"] for op in a.ops} <= ALLOWED
        assert any(op["op"] in ELASTIC_OPS for op in a.ops)


def test_campaign_shape_ends_in_convergence_proof():
    sc = generate_scenario(1, elastic=True)
    assert sc.ops[0]["op"] == "write"  # full prefill
    # The epilogue: converge, prove placement, read everything back.
    assert [op["op"] for op in sc.ops[-3:]] == [
        "rebalance",
        "check_placement",
        "read_all",
    ]


def test_churn_across_seeds_hits_every_verb():
    seen = set()
    for seed in range(12):
        seen |= {op["op"] for op in generate_scenario(seed, elastic=True).ops}
    assert {"join", "leave", "drain", "epoch_bump", "rebalance"} <= seen


@pytest.mark.parametrize("seed", SEEDS)
def test_churn_converges_and_replays_bit_identically(seed):
    sc = generate_scenario(seed, elastic=True)
    first = run_scenario(sc)  # raises DivergenceError on any failure
    second = run_scenario(sc)
    assert first.digest == second.digest
    assert first.counters == second.counters
    # The quiescence proof ran and passed.
    checks = [r for r in first.trace if r.get("op") == "check_placement"]
    assert checks and all(r.get("quiescent") for r in checks)


def test_elastic_scenario_json_round_trip(tmp_path):
    sc = generate_scenario(4, elastic=True)
    path = tmp_path / "scenario.json"
    sc.save(path)
    loaded = SimScenario.load(path)
    assert loaded.to_dict() == sc.to_dict()
    assert loaded.n_nodes == sc.n_nodes
    assert run_scenario(loaded) == run_scenario(sc)


def test_leave_is_observed_through_the_heartbeat():
    # Find a seed whose campaign kills a node; the runner must route
    # around it via the monitor's DEAD verdict, never an operator call.
    for seed in range(16):
        sc = generate_scenario(seed, elastic=True)
        if any(op["op"] == "leave" for op in sc.ops):
            result = run_scenario(sc)
            leaves = [r for r in result.trace if r.get("op") == "leave"]
            assert leaves and all(r.get("state") == "dead" for r in leaves)
            return
    pytest.fail("no seed in range produced a leave op")
