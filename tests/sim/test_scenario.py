"""Seeded cluster scenarios: generation is pure, execution is
bit-identical across runs, and records survive a JSON round trip."""

import pytest

from repro.sim import SimScenario, generate_scenario, run_scenario

#: Seeds chosen to cover stop_node / net_fault / rebuild branches.
SEEDS = [0, 1, 7, 11]


def test_generation_is_pure():
    for seed in SEEDS:
        a, b = generate_scenario(seed), generate_scenario(seed)
        assert a.to_dict() == b.to_dict()


def test_generated_campaign_shape():
    sc = generate_scenario(3)
    assert sc.ops[0]["op"] == "write"  # full prefill
    assert sc.ops[0]["offset"] == 0
    assert sc.ops[-1]["op"] == "read_all"  # closing full read-back
    assert sc.k + 2 >= 4
    assert sc.p in (5, 7, 11, 13)


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_bit_identically(seed):
    """The acceptance criterion: two runs of one seed produce the same
    digest -- which hashes every op record, every read's SHA-256, the
    final metrics counters and every virtual timestamp."""
    sc = generate_scenario(seed)
    first = run_scenario(sc)
    second = run_scenario(sc)
    assert first.digest == second.digest
    assert first.trace == second.trace
    assert first.virtual_end == second.virtual_end
    assert first.counters == second.counters
    assert first == second  # ScenarioResult equality is digest equality


def test_different_seeds_differ():
    digests = {run_scenario(generate_scenario(s)).digest for s in SEEDS}
    assert len(digests) == len(SEEDS)


def test_scenario_json_round_trip(tmp_path):
    sc = generate_scenario(5)
    path = tmp_path / "scenario.json"
    sc.save(path)
    loaded = SimScenario.load(path)
    assert loaded.to_dict() == sc.to_dict()
    # A reloaded scenario replays to the same digest as the original.
    assert run_scenario(loaded) == run_scenario(sc)


def test_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError):
        SimScenario.from_dict({"kind": "stripe", "seed": 0})


def test_virtual_time_advances_under_faults():
    """A campaign that times out against a sick node consumes virtual
    seconds (timeouts + backoff) but trivial wall time -- the whole
    point of the clock seam."""
    for seed in SEEDS:
        sc = generate_scenario(seed)
        if any(op["op"] in ("stop_node", "fault") for op in sc.ops):
            result = run_scenario(sc)
            assert result.virtual_end > 0.0
            break
    else:  # pragma: no cover - seed menu guarantees a faulty campaign
        pytest.fail("no seed in the menu produced a faulty campaign")


class TestScenarioTracing:
    """Span traces are a pure function of the seed, like the op trace."""

    def test_same_seed_same_span_digest(self):
        from repro.obs.tracing import Tracer

        sc = generate_scenario(1)
        digests, op_digests = [], []
        for _ in range(2):
            tracer = Tracer()
            result = run_scenario(sc, tracer=tracer)
            digests.append(tracer.digest())
            op_digests.append(result.digest)
            assert tracer.spans, "a traced campaign must record spans"
        assert digests[0] == digests[1]
        assert op_digests[0] == op_digests[1]

    def test_tracing_does_not_perturb_the_op_digest(self):
        from repro.obs.tracing import Tracer

        sc = generate_scenario(7)
        untraced = run_scenario(sc)
        traced = run_scenario(sc, tracer=Tracer())
        assert traced.digest == untraced.digest

    def test_spans_ride_the_virtual_clock(self):
        from repro.obs.tracing import Tracer

        sc = generate_scenario(1)
        tracer = Tracer()
        result = run_scenario(sc, tracer=tracer)
        # Every span timestamp lies inside the campaign's virtual window.
        assert all(0.0 <= s.start <= result.virtual_end for s in tracer.spans)
        names = {s.name for s in tracer.spans}
        assert "rpc.put" in names and "node.put" in names
        # Engine spans land too: the active tracer covers the op loop.
        assert "code.encode" in names
