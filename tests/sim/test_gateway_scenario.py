"""Object-traffic scenarios: the gateway vocabulary is opt-in, pure to
generate, and every seed converges deterministically with all three
oracles (gateway directory, raw shadow, object CRC) agreeing."""

import pytest

from repro.sim import generate_scenario, run_scenario
from repro.sim.scenario import CHAOS_OPS, GATEWAY_OPS

#: Seeds exercised end-to-end; chosen to cover put/get/update/delete
#: plus fault interleavings (verified reachable below).
OBJECT_SEEDS = [0, 2, 5, 9]


class TestObjectGenerator:
    def test_existing_vocabularies_are_untouched(self):
        """Opting out must be byte-identical to the pre-gateway
        generator, in both plain and chaos modes: no gateway op ever
        appears, and ``objects=False`` matches no flag at all."""
        for seed in range(12):
            plain = generate_scenario(seed)
            assert plain.to_dict() == generate_scenario(
                seed, objects=False
            ).to_dict()
            chaos = generate_scenario(seed, chaos=True)
            for sc in (plain, chaos):
                assert not any(op["op"] in GATEWAY_OPS for op in sc.ops)

    def test_object_generation_is_pure(self):
        for seed in OBJECT_SEEDS:
            a = generate_scenario(seed, objects=True)
            b = generate_scenario(seed, objects=True)
            assert a.to_dict() == b.to_dict()

    def test_object_vocabulary_is_reachable(self):
        kinds = set()
        for seed in range(30):
            kinds |= {op["op"]
                      for op in generate_scenario(seed, objects=True).ops}
        assert {"gateway_put", "gateway_get", "gateway_update",
                "gateway_delete", "check_objects"} <= kinds

    def test_campaigns_end_with_the_object_check(self):
        for seed in OBJECT_SEEDS:
            ops = [op["op"]
                   for op in generate_scenario(seed, objects=True).ops]
            assert ops[-1] == "read_all"
            assert ops[-2] == "check_objects"

    def test_objects_mode_never_issues_raw_stripe_writes_after_priming(self):
        """Raw ``txn_write`` would clobber extents beneath the gateway;
        after the sidecar-freshening prefill, the data plane must be
        object traffic only."""
        for seed in range(20):
            sc = generate_scenario(seed, objects=True, chaos=True)
            assert sc.ops[0]["op"] == "write"  # the freshening prefill
            assert not any(op["op"] in ("write", "txn_write")
                           for op in sc.ops[1:])

    def test_delete_then_get_is_generated(self):
        """The dead-name probe: some gets must target deleted objects so
        the runner proves the directory forgets them."""
        for seed in range(40):
            sc = generate_scenario(seed, objects=True)
            deleted, probed = set(), False
            for op in sc.ops:
                if op["op"] == "gateway_delete":
                    deleted.add(op["name"])
                elif op["op"] == "gateway_get" and op["name"] in deleted:
                    probed = True
            if probed:
                return
        pytest.fail("no seed in range(40) probed a deleted object")


class TestObjectConvergence:
    @pytest.mark.parametrize("seed", OBJECT_SEEDS)
    def test_every_object_seed_replays_bit_identically(self, seed):
        sc = generate_scenario(seed, objects=True)
        first = run_scenario(sc)  # check_objects raises on divergence
        second = run_scenario(sc)
        assert first.digest == second.digest

    @pytest.mark.parametrize("seed", OBJECT_SEEDS)
    def test_objects_survive_chaos_quiescence(self, seed):
        """The ISSUE's acceptance criterion: after faults, corruption
        and repair, no object is readable-but-corrupt -- quiescence
        re-reads every live object through the gateway's CRC path."""
        sc = generate_scenario(seed, objects=True, chaos=True)
        result = run_scenario(sc)
        by_op = {}
        for rec in result.trace:
            by_op.setdefault(rec.get("op"), []).append(rec)
        assert by_op["check_quiescent"][0]["quiescent"] is True
        assert by_op["check_quiescent"][0]["objects"] >= 0
        assert run_scenario(sc).digest == result.digest

    def test_fuzz_objects_mode_stays_clean(self):
        from repro.sim.differential import fuzz

        assert fuzz(seed=0, max_cases=4, objects=True) is None

    def test_fuzz_objects_chaos_mode_stays_clean(self):
        from repro.sim.differential import fuzz

        assert fuzz(seed=1, max_cases=3, chaos=True, objects=True) is None
