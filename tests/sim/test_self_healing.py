"""Chaos scenarios: the self-healing stack must converge, deterministically.

The acceptance drill of the self-healing work: a campaign that corrupts
a strip, hangs a node and crashes a client mid-write must end with
every stripe clean, the hung column rebuilt, and no transaction intent
pending -- and two runs of the same seed must produce byte-identical
trace digests.  The ``check_quiescent`` op *is* the oracle: it raises
:class:`DivergenceError` unless intents are drained, a deep scrub is
spotless and the dirty-stripe list is empty.
"""

import pytest

from repro.array.faults import NetworkFaultPlan
from repro.sim import SimScenario, generate_scenario, run_scenario
from repro.sim.scenario import CHAOS_OPS

CHAOS_SEEDS = list(range(8))


def acceptance_scenario(seed=424242):
    """Corrupt a strip + hang a node + crash the client mid-write."""
    hang = NetworkFaultPlan(latency=10.5)  # far beyond every sim timeout
    return SimScenario(
        seed=seed, k=3, p=5, element_size=8, n_stripes=2,
        ops=[
            {"op": "write", "offset": 0, "length": 240, "seed": 7},
            {"op": "corrupt", "column": 1, "stripe": 0, "seed": 99},
            {"op": "scrub"},
            {"op": "fault", "column": 3, "plan": hang.to_header()},
            {"op": "txn_write", "stripe": 1, "seed": 8, "crash_after": 3},
            {"op": "heal"},
            {"op": "recover"},
            {"op": "scrub", "deep": True},
            {"op": "check_quiescent"},
            {"op": "read_all"},
        ],
    )


class TestAcceptanceScenario:
    def test_converges_and_replays_bit_identically(self):
        sc = acceptance_scenario()
        first = run_scenario(sc)  # raises DivergenceError if not convergent
        second = run_scenario(sc)
        assert first.digest == second.digest
        assert first.trace == second.trace

        by_op = {}
        for rec in first.trace:
            by_op.setdefault(rec.get("op"), []).append(rec)
        # The corruption was located and repaired by the paper's locator.
        assert by_op["scrub"][0]["corrected"] == [[0, 1]] or (
            by_op["scrub"][0]["corrected"] == [(0, 1)]
        )
        # The hung column was failed by heartbeats and rebuilt on a spare.
        assert by_op["heal"][0]["healed"] == [3]
        # The crashed transaction was resolved, one way, by recovery.
        assert by_op["txn_write"][0]["crashed"] is True
        assert by_op["check_quiescent"][0]["quiescent"] is True


class TestChaosGenerator:
    def test_plain_vocabulary_is_untouched(self):
        """Default generation must stay byte-identical to the pre-chaos
        generator: no chaos op ever appears, and ``chaos=False`` is the
        same draw sequence as no flag at all."""
        for seed in range(12):
            plain = generate_scenario(seed)
            assert plain.to_dict() == generate_scenario(seed, chaos=False).to_dict()
            assert not any(op["op"] in CHAOS_OPS for op in plain.ops)

    def test_chaos_generation_is_pure(self):
        for seed in CHAOS_SEEDS:
            a = generate_scenario(seed, chaos=True)
            b = generate_scenario(seed, chaos=True)
            assert a.to_dict() == b.to_dict()

    def test_chaos_campaigns_end_with_the_convergence_epilogue(self):
        for seed in CHAOS_SEEDS:
            ops = [op["op"] for op in generate_scenario(seed, chaos=True).ops]
            assert ops[-1] == "read_all"
            assert ops[-2] == "check_quiescent"
            assert "heal" in ops and "recover" in ops
            # The deep scrub sits between recovery and the final check.
            assert ops[-3] == "scrub"

    def test_corrupt_is_always_followed_by_scrub(self):
        """Silent corruption breaks the healthy-read oracle, so the
        generator may never leave it unscrubbed."""
        for seed in range(30):
            ops = generate_scenario(seed, chaos=True).ops
            for i, op in enumerate(ops):
                if op["op"] == "corrupt":
                    assert ops[i + 1]["op"] == "scrub"

    def test_chaos_vocabulary_is_reachable(self):
        kinds = set()
        for seed in range(30):
            kinds |= {op["op"] for op in generate_scenario(seed, chaos=True).ops}
        assert {"txn_write", "scrub", "corrupt", "heal", "recover",
                "check_quiescent"} <= kinds


class TestChaosConvergence:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_every_chaos_seed_converges_deterministically(self, seed):
        sc = generate_scenario(seed, chaos=True)
        first = run_scenario(sc)  # check_quiescent raises if not convergent
        second = run_scenario(sc)
        assert first.digest == second.digest

    def test_fuzz_chaos_mode_stays_clean(self):
        from repro.sim.differential import fuzz

        assert fuzz(seed=0, max_cases=4, chaos=True) is None
