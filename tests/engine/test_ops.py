"""Tests for the schedule data model."""

import numpy as np
import pytest

from repro.engine.ops import Schedule, XorOp


class TestXorOp:
    def test_cost_accounting(self):
        assert XorOp(0, 0, 1, 1, copy=True).xor_cost == 0
        assert XorOp(0, 0, 1, 1, copy=False).xor_cost == 1

    def test_cell_accessors(self):
        op = XorOp(2, 3, 4, 5)
        assert op.dst == (2, 3)
        assert op.src == (4, 5)

    def test_str_labels_cols_and_rows(self):
        # The rendering must agree with the constructor's
        # (dst_col, dst_row, src_col, src_row) order; an earlier
        # unlabelled form printed row,col and was read as col,row.
        assert str(XorOp(2, 3, 4, 5, copy=True)) == "b[c2,r3] <- b[c4,r5]"
        assert str(XorOp(2, 3, 4, 5, copy=False)) == "b[c2,r3] ^= b[c4,r5]"

    def test_str_roundtrips_cell_accessors(self):
        op = XorOp(7, 1, 0, 6)
        rendered = str(op)
        assert f"c{op.dst[0]},r{op.dst[1]}" in rendered.split("^=")[0]
        assert f"c{op.src[0]},r{op.src[1]}" in rendered.split("^=")[1]


class TestScheduleConstruction:
    def test_empty(self):
        s = Schedule(4, 3)
        assert len(s) == 0 and s.n_xors == 0 and s.n_copies == 0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Schedule(0, 3)

    def test_bounds_checked(self):
        s = Schedule(2, 2)
        with pytest.raises(IndexError):
            s.copy_cell((2, 0), (0, 0))
        with pytest.raises(IndexError):
            s.accumulate((0, 0), (0, 2))

    def test_xor_into_first_touch_is_copy(self):
        s = Schedule(3, 3)
        s.xor_into((2, 0), (0, 0))
        s.xor_into((2, 0), (1, 0))
        assert s.n_copies == 1 and s.n_xors == 1
        assert s.ops[0].copy and not s.ops[1].copy

    def test_mark_touched_forces_accumulate(self):
        s = Schedule(3, 3)
        s.mark_touched((2, 0))
        s.xor_into((2, 0), (0, 0))
        assert s.n_xors == 1 and s.n_copies == 0

    def test_touched_tracking(self):
        s = Schedule(3, 3)
        assert not s.touched((1, 1))
        s.copy_cell((1, 1), (0, 0))
        assert s.touched((1, 1))


class TestPaperAccounting:
    def test_worked_example_costs(self):
        # b[0,5] <- b[0,1] ^ b[0,2]; b[4,6] <- b[0,5]  == 1 XOR
        s = Schedule(7, 5)
        s.copy_cell((5, 0), (1, 0))
        s.accumulate((5, 0), (2, 0))
        s.copy_cell((6, 4), (5, 0))
        assert s.n_xors == 1

    def test_five_term_chain_costs_four(self):
        # b[4,5] <- b[4,0] ^ ... ^ b[4,4]  == 4 XORs
        s = Schedule(7, 5)
        for j in range(5):
            s.xor_into((5, 4), (j, 4))
        assert s.n_xors == 4


class TestScheduleCombinators:
    def test_extend(self):
        a = Schedule(3, 3)
        a.copy_cell((2, 0), (0, 0))
        b = Schedule(3, 3)
        b.accumulate((2, 0), (1, 0))
        a.extend(b)
        assert len(a) == 2 and a.n_xors == 1
        # extend transfers touched state
        a.xor_into((2, 0), (1, 1))
        assert a.ops[-1].copy is False

    def test_extend_shape_mismatch(self):
        with pytest.raises(ValueError):
            Schedule(3, 3).extend(Schedule(4, 3))

    def test_destinations(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (0, 0))
        s.copy_cell((2, 1), (0, 1))
        assert s.destinations() == {(2, 0), (2, 1)}

    def test_to_array(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 1), (0, 0))
        s.accumulate((2, 1), (1, 0))
        arr = s.to_array()
        assert arr.shape == (2, 5)
        assert arr[0].tolist() == [2, 1, 0, 0, 1]
        assert arr[1].tolist() == [2, 1, 1, 0, 0]

    def test_to_array_empty(self):
        assert Schedule(2, 2).to_array().shape == (0, 5)

    def test_iteration_and_indexing(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (1, 0))
        assert list(s)[0] is s[0]
        assert repr(s).startswith("Schedule(")
