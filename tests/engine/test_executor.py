"""Tests for schedule execution: bit reference vs compiled word engines.

The central invariant: for any legal schedule, the fused
:class:`CompiledSchedule`, the :class:`StreamingSchedule` and the
op-by-op bit executor compute identical results.
"""

import numpy as np
import pytest

from repro.engine.executor import (
    CompiledSchedule,
    StreamingSchedule,
    compile_schedule,
    execute_bits,
    execute_words,
)
from repro.engine.ops import Schedule


def random_schedule(rng, cols=5, rows=4, n_ops=60):
    """A random legal schedule with read-write interleavings."""
    s = Schedule(cols, rows)
    for _ in range(n_ops):
        dst = (int(rng.integers(0, cols)), int(rng.integers(0, rows)))
        src = (int(rng.integers(0, cols)), int(rng.integers(0, rows)))
        if src == dst:
            continue
        if not s.touched(dst) or rng.random() < 0.15:
            s.copy_cell(dst, src)
        else:
            s.accumulate(dst, src)
    return s


def bits_of_words(words):
    """Unpack a (cols, rows, words) uint64 stripe into per-bit planes."""
    return np.unpackbits(words.view(np.uint8), axis=-1)


class TestBitExecutor:
    def test_copy_then_xor(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        bits = np.array([[1], [1], [0]], dtype=np.uint8)
        execute_bits(s, bits)
        assert bits[2, 0] == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            execute_bits(Schedule(3, 2), np.zeros((2, 2), dtype=np.uint8))


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_compiled_matches_bits(self, seed):
        rng = np.random.default_rng(seed)
        sched = random_schedule(rng)
        bits = rng.integers(0, 2, (5, 4)).astype(np.uint8)
        # Word buffer whose single word's low bit mirrors `bits`.
        words = bits.astype(np.uint64)[:, :, None]
        execute_bits(sched, bits)
        compile_schedule(sched).run(words)
        assert np.array_equal(words[:, :, 0] & 1, bits)

    @pytest.mark.parametrize("seed", range(12))
    def test_streaming_matches_bits(self, seed):
        rng = np.random.default_rng(seed)
        sched = random_schedule(rng)
        bits = rng.integers(0, 2, (5, 4)).astype(np.uint8)
        words = bits.astype(np.uint64)[:, :, None]
        execute_bits(sched, bits)
        StreamingSchedule(sched).run(words)
        assert np.array_equal(words[:, :, 0] & 1, bits)

    @pytest.mark.parametrize("seed", range(8))
    def test_batched_matches_sequential(self, seed):
        rng = np.random.default_rng(100 + seed)
        sched = random_schedule(rng, n_ops=120)
        base = rng.integers(0, 2**64, (5, 4, 3), dtype=np.uint64)
        a, b = base.copy(), base.copy()
        compile_schedule(sched).run(a)
        plan = compile_schedule(sched)
        CompiledSchedule(plan.cols, plan.rows, [], batched=True)  # smoke ctor
        from repro.engine.executor import _Group  # rebuild batched from groups

        groups = [
            _Group(dst, list(srcs), init)
            for (dst, srcs, init) in plan._groups
        ]
        CompiledSchedule(plan.cols, plan.rows, groups, batched=True).run(b)
        assert np.array_equal(a, b)

    def test_execute_words_one_shot(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        buf = np.array([[[5]], [[3]], [[0]]], dtype=np.uint64)
        execute_words(s, buf)
        assert buf[2, 0, 0] == 6


class TestHazards:
    def test_value_read_mid_accumulation(self):
        """A copy must observe the partial value at its program point.

        This is exactly the encoder's common-expression pattern: Q is
        seeded from P while P is only partially accumulated.
        """
        s = Schedule(4, 1)
        s.copy_cell((2, 0), (0, 0))  # P <- a
        s.accumulate((2, 0), (1, 0))  # P ^= b  (P == common expression)
        s.copy_cell((3, 0), (2, 0))  # Q <- E  (partial P!)
        s.accumulate((2, 0), (1, 0))  # P continues accumulating
        buf = np.array([[[0b100]], [[0b010]], [[0]], [[0]]], dtype=np.uint64)
        execute_words(s, buf.copy())
        out = buf.copy()
        compile_schedule(s).run(out)
        assert out[3, 0, 0] == 0b110  # saw a^b, not the final P
        assert out[2, 0, 0] == 0b100  # a^b^b

    def test_write_after_read(self):
        """A source overwritten later must have been consumed first."""
        s = Schedule(3, 1)
        s.copy_cell((1, 0), (0, 0))  # B <- A
        s.copy_cell((0, 0), (2, 0))  # A <- C (overwrites the source)
        buf = np.array([[[7]], [[0]], [[9]]], dtype=np.uint64)
        compile_schedule(s).run(buf)
        assert buf[1, 0, 0] == 7 and buf[0, 0, 0] == 9

    def test_in_place_syndrome_update(self):
        """Decode pattern: produce, consume, update, consume again."""
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (0, 0))  # S <- a
        s.accumulate((2, 0), (1, 0))  # S ^= b
        s.copy_cell((2, 1), (2, 0))  # T <- S
        s.accumulate((2, 0), (0, 1))  # S ^= c  (update after read)
        s.accumulate((2, 1), (2, 0))  # T ^= S' (read updated value)
        rng = np.random.default_rng(5)
        buf = rng.integers(0, 2**64, (3, 2, 2), dtype=np.uint64)
        expect = buf.copy()
        a, b, c = expect[0, 0].copy(), expect[1, 0].copy(), expect[0, 1].copy()
        expect[2, 0] = a ^ b ^ c
        expect[2, 1] = (a ^ b) ^ (a ^ b ^ c)
        compile_schedule(s).run(buf)
        assert np.array_equal(buf, expect)


class TestCompiledProperties:
    def test_group_count_reported(self):
        s = Schedule(3, 1)
        for j in range(2):
            s.xor_into((2, 0), (j, 0))
        plan = compile_schedule(s)
        assert plan.n_groups == 1

    def test_run_shape_mismatch(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (0, 0))
        with pytest.raises(ValueError):
            compile_schedule(s).run(np.zeros((3, 3, 1), dtype=np.uint64))
        with pytest.raises(ValueError):
            StreamingSchedule(s).run(np.zeros((3, 3, 1), dtype=np.uint64))

    def test_streaming_op_count(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        assert StreamingSchedule(s).n_ops == 2


class TestCompileValidation:
    """compile_schedule(validate=True): the lowering is symbolically
    proved equivalent to the source schedule at compile time."""

    def _real_schedules(self):
        from repro.codes import make_code

        for name in ("liberation-optimal", "evenodd", "rdp"):
            code = make_code(name, 4, p=5)
            yield code.build_encode_schedule()
            yield code.build_decode_schedule((0, 1))
            yield code.build_decode_schedule((1, code.q_col))

    def test_real_schedules_validate(self):
        for sched in self._real_schedules():
            compile_schedule(sched, validate=True)
            compile_schedule(sched, batched=True, validate=True)

    def test_planted_lowering_bug_is_caught(self):
        from repro.codes import make_code
        from repro.engine.executor import CompiledSchedule, _validate_compilation
        from repro.engine.verify import ScheduleViolation

        sched = make_code("liberation-optimal", 4, p=5).build_encode_schedule()
        good = compile_schedule(sched)
        # Corrupt one fused group: drop its last source term.
        dst, srcs, init = good._groups[0]
        bad = CompiledSchedule.__new__(CompiledSchedule)
        bad.cols, bad.rows = good.cols, good.rows
        bad.batched, bad._batches = False, None
        bad._groups = [(dst, srcs[:-1], init)] + good._groups[1:]
        with pytest.raises(ScheduleViolation, match="lowering diverges"):
            _validate_compilation(sched, bad)

    def test_wrong_group_order_is_caught(self):
        from repro.engine.executor import CompiledSchedule, _validate_compilation
        from repro.engine.verify import ScheduleViolation

        # dst2 copies dst1's accumulated value, so group order matters.
        s = Schedule(4, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        s.copy_cell((3, 0), (2, 0))
        good = compile_schedule(s, validate=True)
        bad = CompiledSchedule.__new__(CompiledSchedule)
        bad.cols, bad.rows = good.cols, good.rows
        bad.batched, bad._batches = False, None
        bad._groups = list(reversed(good._groups))
        with pytest.raises(ScheduleViolation, match="lowering diverges"):
            _validate_compilation(s, bad)
