"""Tests for static schedule verification."""

import itertools

import pytest

from repro.engine.ops import Schedule
from repro.engine.verify import ScheduleViolation, verify_schedule


class TestReadDiscipline:
    def test_clean_schedule_passes(self):
        s = Schedule(3, 2)
        s.copy_cell((1, 0), (0, 0))  # write erased col 1 first
        s.accumulate((1, 0), (2, 0))
        verify_schedule(s, unreadable_cols=[1])

    def test_read_of_unwritten_erased_cell_flagged(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (1, 0))  # reads erased col 1 without writing
        with pytest.raises(ScheduleViolation, match="reads unwritten"):
            verify_schedule(s, unreadable_cols=[1])

    def test_accumulate_into_unwritten_erased_cell_flagged(self):
        s = Schedule(3, 2)
        s.mark_touched((1, 0))
        s.accumulate((1, 0), (0, 0))  # dst holds garbage yet accumulates
        with pytest.raises(ScheduleViolation, match="accumulates into unwritten"):
            verify_schedule(s, unreadable_cols=[1])

    def test_write_then_read_is_fine(self):
        s = Schedule(3, 2)
        s.copy_cell((1, 0), (0, 0))
        s.copy_cell((2, 1), (1, 0))
        verify_schedule(s, unreadable_cols=[1])


class TestCoverage:
    def test_missing_required_dst_flagged(self):
        s = Schedule(3, 2)
        s.copy_cell((1, 0), (0, 0))
        with pytest.raises(ScheduleViolation, match="never writes"):
            verify_schedule(s, required_dsts=[(1, 0), (1, 1)])

    def test_full_coverage_passes(self):
        s = Schedule(3, 2)
        s.copy_cell((1, 0), (0, 0))
        s.copy_cell((1, 1), (0, 1))
        verify_schedule(s, required_dsts=[(1, 0), (1, 1)])


class TestAgainstRealCodes:
    @pytest.mark.parametrize(
        "name,k,p",
        [
            ("liberation-optimal", 7, 7),
            ("liberation-original", 7, 7),
            ("evenodd", 6, 7),
            ("rdp", 6, 7),
            ("blaum-roth", 6, 7),
            ("cauchy-rs", 6, None),
        ],
    )
    def test_every_decode_schedule_is_disciplined(self, name, k, p):
        from repro.codes import make_code

        kw = {} if p is None else {"p": p}
        code = make_code(name, k, **kw)
        scratch = range(code.n_cols, code.total_cols)
        for pat in [(c,) for c in range(k + 2)] + list(
            itertools.combinations(range(k + 2), 2)
        ):
            sched = code.build_decode_schedule(pat)
            required = {(c, r) for c in pat for r in range(code.rows)}
            verify_schedule(
                sched,
                unreadable_cols=pat,
                garbage_cols=scratch,
                required_dsts=required,
            )

    def test_encode_schedules_write_all_parity(self):
        from repro.codes import make_code

        for name in ("liberation-optimal", "evenodd", "rdp"):
            code = make_code(name, 6, p=7)
            required = {
                (c, r)
                for c in (code.p_col, code.q_col)
                for r in range(code.rows)
            }
            verify_schedule(code.encode_schedule(), required_dsts=required)


class TestScratchGarbage:
    """Regression: scratch-column garbage must be declarable.

    The EVENODD decoder stages its adjuster S in the scratch column with
    a copy before any read.  A reordered schedule that reads the staging
    cell *before* that copy silently consumes garbage -- and the later
    copy into the (erased-pattern-unrelated) scratch cell must not be
    treated as making those earlier reads safe.  The original
    ``verify_schedule`` could not see this because callers had no way to
    declare scratch columns as garbage-holding; ``garbage_cols`` closes
    the hole.
    """

    @staticmethod
    def _reordered_evenodd_decode():
        """An EVENODD (0,1)-decode with the scratch-initialising copy
        deliberately moved after the first read of the scratch cell."""
        from repro.codes import make_code

        code = make_code("evenodd", 4, p=5)
        sched = code.build_decode_schedule((0, 1))
        scratch = code.n_cols
        ops = list(sched)
        first_write = next(
            i for i, op in enumerate(ops) if op.dst_col == scratch and op.copy
        )
        first_read = next(i for i, op in enumerate(ops) if op.src_col == scratch)
        moved = ops.pop(first_write)
        ops.insert(first_read, moved)
        bad = Schedule(sched.cols, sched.rows, ops)
        return code, bad

    def test_reordered_scratch_copy_rejected(self):
        code, bad = self._reordered_evenodd_decode()
        scratch = range(code.n_cols, code.total_cols)
        with pytest.raises(ScheduleViolation, match="scratch"):
            verify_schedule(bad, unreadable_cols=(0, 1), garbage_cols=scratch)

    def test_hole_without_declaration_documented(self):
        # Without garbage_cols the checker cannot know the scratch
        # column holds garbage: the reordered schedule passes.  This
        # documents why decode verification must declare scratch.
        code, bad = self._reordered_evenodd_decode()
        verify_schedule(bad, unreadable_cols=(0, 1))

    def test_symbolic_prover_catches_it_too(self):
        # The functional proof rejects the same mutant independently of
        # any declaration: garbage atoms reach the recovered cells.
        from repro.analysis.static import prove_decode

        code, bad = self._reordered_evenodd_decode()
        proof = prove_decode(code, (0, 1), bad)
        assert not proof.ok

    def test_pristine_schedule_passes_with_declaration(self):
        from repro.codes import make_code

        code = make_code("evenodd", 4, p=5)
        sched = code.build_decode_schedule((0, 1))
        verify_schedule(
            sched,
            unreadable_cols=(0, 1),
            garbage_cols=range(code.n_cols, code.total_cols),
        )
