"""The differential kernel-equivalence harness (this PR's tentpole).

The kernel data plane (:mod:`repro.engine.kernels`) is a pure
*execution-strategy* change: lowering a schedule to levelized bulk-XOR
slice calls must never change a single output byte.  This harness pins
that claim three ways:

* a **deterministic grid** -- every XOR-schedule code family at
  p in {5, 7, 11, 13} (plus Cauchy RS, which is parameterized by ``w``
  rather than ``p``), random data, encode plus a menu of single- and
  double-erasure decodes, each schedule run through the naive
  streaming executor, the fused executor, the kernel plan on a single
  stripe, the kernel plan bound wide over a word-packed batch, and the
  bit-plane reference -- all byte-identical, with every kernel
  lowering symbolically proved (``validate=True``);
* a **Hypothesis fuzz** over random (family, p, k, data, erasures)
  cases -- the shapes the grid's fixed menu cannot enumerate;
* **mutation canaries** -- a single flipped XOR, planted either in the
  source schedule or in the lowered op list, must be caught (by the
  byte comparison and by the symbolic prover respectively).  A harness
  that cannot fail is not evidence; these prove this one can.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes import make_code
from repro.engine.executor import StreamingSchedule, compile_schedule, execute_bits
from repro.engine.kernels import KernelOp, KernelPlan, _validate_kernel, compile_kernel
from repro.engine.ops import Schedule, XorOp
from repro.engine.verify import ScheduleViolation

#: The ISSUE's prime menu.
PRIMES = (5, 7, 11, 13)

#: family -> max k at prime p (RDP and Blaum-Roth cap at p - 1).
P_FAMILIES = {
    "liberation-optimal": lambda p: p,
    "liberation-original": lambda p: p,
    "evenodd": lambda p: p,
    "rdp": lambda p: p - 1,
    "blaum-roth": lambda p: p - 1,
}


def xor_code(name, p, k=None, element_size=8):
    if name == "cauchy-rs":
        return make_code(name, k or 4, element_size=element_size)
    if k is None:
        k = P_FAMILIES[name](p)
    return make_code(name, k, p=p, element_size=element_size)


def filled(code, seed):
    """A stripe with random data columns (parity columns zero)."""
    rng = np.random.default_rng(seed)
    buf = code.alloc_stripe()
    buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
    return buf


def erasure_menu(code):
    """Deterministic single/double erasures: data, parity, and mixed."""
    k = code.k
    singles = {(0,), (k - 1,), (k,), (k + 1,)}
    doubles = {(0, 1), (0, k), (k - 1, k + 1), (k, k + 1), (k // 2, k - 1)}
    return sorted(
        pat
        for pat in singles | doubles
        if len(set(pat)) == len(pat) and all(0 <= c < code.n_cols for c in pat)
    )


def assert_paths_agree(schedule, buf, what):
    """Every execution path of ``schedule`` maps ``buf`` identically.

    Returns the agreed output stripe.  The fused executor is the
    arbitrary candidate baseline; naive streaming, the kernel plan
    (single-stripe and word-packed wide over three stripes), and the
    bit-plane reference must all match it byte for byte.
    """
    fused = compile_schedule(schedule).run(buf.copy())
    streaming = StreamingSchedule(schedule).run(buf.copy())
    np.testing.assert_array_equal(fused, streaming, err_msg=f"{what}: streaming")
    plan = compile_kernel(schedule, validate=True)
    kernel = plan.run(buf.copy())
    np.testing.assert_array_equal(fused, kernel, err_msg=f"{what}: kernel")
    words = buf.shape[2]
    wide = plan.run(np.concatenate([buf, buf, buf], axis=2))
    for i in range(3):
        np.testing.assert_array_equal(
            fused,
            wide[:, :, i * words : (i + 1) * words],
            err_msg=f"{what}: kernel wide path, stripe {i}",
        )
    # GF(2)-linearity: the bit reference on one plane must equal that
    # plane of the word run.
    bits = (buf[:, :, 0] & np.uint64(1)).astype(np.uint8)
    execute_bits(schedule, bits)
    np.testing.assert_array_equal(
        bits,
        (fused[:, :, 0] & np.uint64(1)).astype(np.uint8),
        err_msg=f"{what}: bit-plane reference",
    )
    return fused


class TestDifferentialGrid:
    @pytest.mark.parametrize("p", PRIMES)
    @pytest.mark.parametrize("name", sorted(P_FAMILIES))
    def test_all_paths_agree_for_family_at_prime(self, name, p):
        code = xor_code(name, p)
        buf = filled(code, seed=1000 * p + len(name))
        encoded = assert_paths_agree(code.encode_schedule(), buf, f"{name} encode")
        for pattern in erasure_menu(code):
            probe = encoded.copy()
            for c in pattern:
                probe[c] = 0
            decoded = assert_paths_agree(
                code.build_decode_schedule(pattern), probe, f"{name} decode{pattern}"
            )
            # Round trip: the agreed decode output restores the stripe.
            np.testing.assert_array_equal(
                decoded[: code.n_cols],
                encoded[: code.n_cols],
                err_msg=f"{name} p={p} decode{pattern}: round trip",
            )

    @pytest.mark.parametrize("w", (3, 4, 5))
    def test_cauchy_rs_paths_agree(self, w):
        code = make_code("cauchy-rs", 2**w - 2, w=w, element_size=8)
        buf = filled(code, seed=w)
        encoded = assert_paths_agree(code.encode_schedule(), buf, f"cauchy w={w}")
        for pattern in ((0,), (0, 1), (code.k, code.k + 1)):
            probe = encoded.copy()
            for c in pattern:
                probe[c] = 0
            assert_paths_agree(
                code.build_decode_schedule(pattern), probe, f"cauchy decode{pattern}"
            )


@st.composite
def stripe_cases(draw):
    name = draw(st.sampled_from(sorted(P_FAMILIES)))
    p = draw(st.sampled_from(PRIMES))
    k = draw(st.integers(2, P_FAMILIES[name](p)))
    n_ers = draw(st.integers(0, 2))
    erasures = tuple(
        sorted(
            draw(
                st.lists(
                    st.integers(0, k + 1),
                    min_size=n_ers,
                    max_size=n_ers,
                    unique=True,
                )
            )
        )
    )
    return name, p, k, draw(st.integers(0, 2**31)), erasures


#: Example budget for the Hypothesis sweep.  The default keeps the
#: tier-1 run fast; CI's ``kernels`` job raises it to a ~60 s smoke.
_FUZZ_EXAMPLES = int(os.environ.get("REPRO_KERNEL_FUZZ_EXAMPLES", "30"))


class TestKernelEquivalenceFuzz:
    @settings(max_examples=_FUZZ_EXAMPLES, deadline=None)
    @given(case=stripe_cases())
    def test_random_geometry_data_and_erasures(self, case):
        name, p, k, seed, erasures = case
        code = xor_code(name, p, k=k)
        buf = filled(code, seed)
        encoded = assert_paths_agree(
            code.encode_schedule(), buf, f"{name} p={p} k={k} encode"
        )
        if erasures:
            probe = encoded.copy()
            for c in erasures:
                probe[c] = 0
            assert_paths_agree(
                code.build_decode_schedule(erasures),
                probe,
                f"{name} p={p} k={k} decode{erasures}",
            )


class TestXorWorkConservation:
    """Lowering preserves the paper's complexity accounting exactly."""

    @pytest.mark.parametrize("name", sorted(P_FAMILIES))
    def test_plan_cell_xors_equal_schedule_xors(self, name):
        code = xor_code(name, 11)
        enc = code.encode_schedule()
        assert compile_kernel(enc).n_cell_xors == enc.n_xors
        dec = code.build_decode_schedule((0, 1))
        assert compile_kernel(dec).n_cell_xors == dec.n_xors


class TestMutationCanary:
    """The harness must be able to fail: plant one flipped XOR."""

    def _flip_source_row(self, sched):
        ops = list(sched)
        for i, op in enumerate(ops):
            flipped_row = (op.src_row + 1) % sched.rows
            if not op.copy and (op.src_col, flipped_row) != (op.dst_col, op.dst_row):
                ops[i] = XorOp(
                    op.dst_col, op.dst_row, op.src_col, flipped_row, copy=False
                )
                return Schedule(sched.cols, sched.rows, ops)
        raise AssertionError("no flippable XOR found")

    def test_flipped_xor_in_schedule_diverges(self):
        code = xor_code("liberation-optimal", 11)
        sched = code.encode_schedule()
        mutated = self._flip_source_row(sched)
        buf = filled(code, seed=7)
        ref = compile_schedule(sched).run(buf.copy())
        bad = compile_kernel(mutated).run(buf.copy())
        assert not np.array_equal(ref, bad), (
            "a flipped XOR in the source schedule must change the output"
        )
        # The mutated schedule still *self*-validates: the prover checks
        # lowering-vs-schedule, and the lowering faithfully executes the
        # (wrong) schedule.  Catching this flip is the byte diff's job.
        compile_kernel(mutated, validate=True)

    def _doctor_one_op(self, plan):
        for i, op in enumerate(plan.ops):
            if op.kind != "xor":
                continue
            new_src = (op.src_col + 1) % plan.cols
            if new_src == op.dst_col or new_src == op.src_col:
                continue
            ops = list(plan.ops)
            ops[i] = KernelOp(
                "xor", op.dst_col, op.dst_lo, op.dst_hi,
                new_src, op.src_lo, op.src_hi,
            )
            return KernelPlan(plan.cols, plan.rows, ops, n_levels=plan.n_levels)
        raise AssertionError("no doctorable op found")

    def test_flipped_xor_in_lowered_plan_fails_the_prover(self):
        code = xor_code("liberation-optimal", 5)
        sched = code.encode_schedule()
        doctored = self._doctor_one_op(compile_kernel(sched, validate=True))
        with pytest.raises(ScheduleViolation, match="diverges at cell"):
            _validate_kernel(sched, doctored)

    def test_flipped_xor_in_lowered_plan_diverges_at_runtime(self):
        code = xor_code("liberation-optimal", 5)
        sched = code.encode_schedule()
        plan = compile_kernel(sched)
        doctored = self._doctor_one_op(plan)
        buf = filled(code, seed=3)
        assert not np.array_equal(plan.run(buf.copy()), doctored.run(buf.copy()))

    def test_changed_xor_work_fails_conservation(self):
        # compile-time tripwire: a lowering that loses or invents XOR
        # work is rejected before any data is touched.  Simulated by
        # lying about the schedule's n_xors via an appended no-op-free
        # extra XOR in the schedule copy handed to the checker.
        code = xor_code("liberation-optimal", 5)
        sched = code.encode_schedule()
        plan = compile_kernel(sched)
        extended = Schedule(
            sched.cols,
            sched.rows,
            list(sched) + [XorOp(sched.cols - 1, 0, 0, 0, copy=False)],
        )
        assert plan.n_cell_xors != extended.n_xors
        with pytest.raises(ScheduleViolation, match="diverges|XOR"):
            _validate_kernel(extended, plan)
