"""Edge-case shapes through every executor (satellite of the kernel PR).

The data plane's zero-copy story rests on executors accepting exactly
the buffers callers actually hold: empty word axes (a zero-byte
object's stripe tail), odd word counts (element sizes that are not a
power of two), non-contiguous views (a stripe sliced out of a larger
transport buffer), and the kernel plan's trailing-shape freedom (batch
views).  Each case compares against the fused executor or a contiguous
copy, so these are equivalence tests, not just smoke.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.engine.executor import (
    StreamingSchedule,
    compile_schedule,
    execute_bits,
    execute_words,
)
from repro.engine.kernels import compile_kernel
from repro.engine.ops import Schedule, XorOp


def _code(element_size=8):
    return make_code("liberation-optimal", 5, p=5, element_size=element_size)


def _sched():
    return _code().encode_schedule()


def _random_words(shape, seed=0):
    return np.random.default_rng(seed).integers(0, 2**64, shape, dtype=np.uint64)


class TestZeroLengthWordAxis:
    """words == 0: every path must be a structural no-op, not a crash."""

    def test_all_word_executors_accept_empty_words(self):
        sched = _sched()
        empty = np.zeros((sched.cols, sched.rows, 0), dtype=np.uint64)
        for run in (
            lambda b: execute_words(sched, b),
            compile_schedule(sched).run,
            compile_schedule(sched, batched=True).run,
            StreamingSchedule(sched).run,
            compile_kernel(sched).run,
        ):
            out = run(empty.copy())
            assert out.shape == empty.shape

    def test_empty_schedule_is_identity(self):
        sched = Schedule(4, 3, [])
        buf = _random_words((4, 3, 2))
        for run in (
            lambda b: execute_words(sched, b),
            compile_schedule(sched).run,
            StreamingSchedule(sched).run,
            compile_kernel(sched).run,
        ):
            np.testing.assert_array_equal(run(buf.copy()), buf)
        bits = np.ones((4, 3), dtype=np.uint8)
        np.testing.assert_array_equal(execute_bits(sched, bits.copy()), bits)


class TestOddWordCounts:
    @pytest.mark.parametrize("element_size", (8, 24, 40, 56))
    def test_non_power_of_two_elements_agree(self, element_size):
        code = _code(element_size)
        sched = code.encode_schedule()
        buf = code.alloc_stripe()
        buf[: code.k] = _random_words(buf[: code.k].shape, seed=element_size)
        ref = compile_schedule(sched).run(buf.copy())
        np.testing.assert_array_equal(compile_kernel(sched).run(buf.copy()), ref)
        np.testing.assert_array_equal(StreamingSchedule(sched).run(buf.copy()), ref)

    def test_single_word_stripe(self):
        code = _code(8)
        assert code.alloc_stripe().shape[2] == 1  # the minimal word axis


class TestNonContiguousBuffers:
    def test_kernel_runs_in_place_on_strided_word_view(self):
        # A stripe interleaved with another in one backing buffer: the
        # kernel slices axes 0-1 only, so a word-axis stride is legal
        # and must produce the contiguous answer in place.
        sched = _sched()
        backing = _random_words((sched.cols, sched.rows, 6), seed=2)
        view = backing[:, :, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        ref = compile_kernel(sched).run(view.copy())  # .copy() is contiguous
        compile_kernel(sched).run(view)
        np.testing.assert_array_equal(view, ref)

    def test_kernel_runs_on_transposed_batch_view(self):
        # The BatchCoder wide path's exact shape: a stripe-major batch
        # viewed as (cols, rows, n, words) without copying.
        code = _code()
        sched = code.encode_schedule()
        n, words = 3, 1
        batch = np.zeros((n, code.total_cols, code.rows, words), dtype=np.uint64)
        batch[:, : code.k] = _random_words((n, code.k, code.rows, words), seed=5)
        refs = [compile_schedule(sched).run(batch[i].copy()) for i in range(n)]
        wide = batch.transpose(1, 2, 0, 3)
        assert wide.base is batch
        compile_kernel(sched).run(wide)
        for i in range(n):
            np.testing.assert_array_equal(batch[i], refs[i])

    def test_kernel_word_packed_batch(self):
        # Word-packed layout (cols, rows, n*words): one plan call covers
        # every stripe; each word block must equal the per-stripe run.
        sched = _sched()
        single = _random_words((sched.cols, sched.rows, 2), seed=9)
        packed = np.concatenate([single, single], axis=2)
        ref = compile_kernel(sched).run(single.copy())
        compile_kernel(sched).run(packed)
        np.testing.assert_array_equal(packed[:, :, :2], ref)
        np.testing.assert_array_equal(packed[:, :, 2:], ref)


class TestShapeRejection:
    def test_kernel_rejects_wrong_leading_shape(self):
        sched = _sched()
        plan = compile_kernel(sched)
        with pytest.raises(ValueError, match="does not match kernel plan"):
            plan.run(np.zeros((sched.cols + 1, sched.rows, 1), dtype=np.uint64))
        with pytest.raises(ValueError, match="does not match kernel plan"):
            plan.run(np.zeros((sched.cols, sched.rows), dtype=np.uint64))

    def test_word_executors_reject_wrong_shape(self):
        sched = _sched()
        bad = np.zeros((sched.cols, sched.rows + 1, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            execute_words(sched, bad)
        with pytest.raises(ValueError):
            compile_schedule(sched).run(bad)


class TestBoundProgramCache:
    def test_rebinds_when_buffer_identity_is_reused(self):
        # id() reuse must not serve a stale program: the cache holds a
        # strong reference, so a cached id can never be recycled while
        # the entry lives -- and a fresh buffer always rebinds.
        sched = _sched()
        plan = compile_kernel(sched)
        ref = None
        for seed in range(6):  # > _CACHE_SIZE distinct buffers
            buf = _random_words((sched.cols, sched.rows, 1), seed=0)
            out = plan.run(buf)
            if ref is None:
                ref = out.copy()
            np.testing.assert_array_equal(out, ref)

    def test_cache_is_bounded(self):
        sched = _sched()
        plan = compile_kernel(sched)
        bufs = [_random_words((sched.cols, sched.rows, 1), seed=s) for s in range(8)]
        for b in bufs:
            plan.run(b)
        assert len(plan._bound) <= plan._CACHE_SIZE


class TestBitExecutorEdges:
    def test_execute_bits_copy_then_xor_chain(self):
        sched = Schedule(
            3, 2, [XorOp(2, 0, 0, 0, copy=True), XorOp(2, 0, 1, 1, copy=False)]
        )
        bits = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.uint8)
        execute_bits(sched, bits)
        assert bits[2, 0] == 0  # 1 ^ 1

    def test_execute_bits_rejects_wrong_shape(self):
        sched = _sched()
        with pytest.raises(ValueError):
            execute_bits(sched, np.zeros((1, 1), dtype=np.uint8))
