"""Admission control: slot accounting, shedding, and the overload
contract (typed errors out, bounded p99 for what gets in)."""

import asyncio

import pytest

from repro.gateway import Overloaded, WorkloadConfig, run_sim_bench
from repro.gateway.admission import AdmissionController
from repro.sim import VirtualClock


def run(coro):
    return asyncio.run(coro)


class TestSlots:
    def test_inflight_is_bounded(self):
        async def main():
            ac = AdmissionController(2, 4, clock=VirtualClock())
            await ac.acquire()
            await ac.acquire()
            assert ac.inflight == 2
            waiter = asyncio.ensure_future(ac.acquire())
            await asyncio.sleep(0)
            assert ac.inflight == 2 and ac.queued == 1
            ac.release()
            await waiter
            assert ac.inflight == 2 and ac.queued == 0

        run(main())

    def test_release_wakes_waiters_in_fifo_order(self):
        async def main():
            ac = AdmissionController(1, 4, clock=VirtualClock())
            await ac.acquire()
            order = []

            async def waiter(tag):
                await ac.acquire()
                order.append(tag)

            tasks = [asyncio.ensure_future(waiter(i)) for i in range(3)]
            await asyncio.sleep(0)
            for _ in range(3):
                ac.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]

        run(main())

    def test_queue_full_sheds_with_typed_error(self):
        async def main():
            ac = AdmissionController(1, 1, clock=VirtualClock())
            await ac.acquire()
            asyncio.ensure_future(ac.acquire())  # fills the queue
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await ac.acquire()
            assert ac.metrics.counter("gateway_shed_queue_full").value == 1
            ac.release()

        run(main())

    def test_queue_timeout_sheds_stale_waiters(self):
        async def main():
            clock = VirtualClock()
            ac = AdmissionController(1, 4, queue_timeout=0.1, clock=clock)
            await ac.acquire()  # never released: waiters must age out
            with pytest.raises(Overloaded):
                await ac.acquire()
            assert ac.metrics.counter("gateway_shed_timeout").value == 1
            # The dead waiter must not absorb a later grant.
            ac.release()
            assert ac.inflight == 0
            await ac.acquire()
            assert ac.inflight == 1

        run(main())

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 1)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)

    def test_slot_context_manager_releases_on_error(self):
        async def main():
            ac = AdmissionController(1, 0, clock=VirtualClock())
            with pytest.raises(RuntimeError):
                async with ac.slot():
                    assert ac.inflight == 1
                    raise RuntimeError("op failed")
            assert ac.inflight == 0

        run(main())


class TestOverloadContract:
    """The ISSUE's acceptance criterion, on the virtual clock: induced
    overload sheds with ``Overloaded`` and the p99 latency of *admitted*
    requests stays bounded by queue_timeout + a few service times."""

    def test_overload_sheds_and_admitted_p99_stays_bounded(self):
        service = 0.002
        queue_timeout = 0.05
        report = run_sim_bench(
            WorkloadConfig(
                seed=11, n_objects=8, object_size=512, n_ops=200,
                rate=5000.0,  # far beyond 1/service per slot
            ),
            n_stripes=48,
            service_latency=service,
            max_inflight=2,
            max_queue=8,
            queue_timeout=queue_timeout,
        )
        assert report.shed > 0, "overload must shed, not queue unboundedly"
        assert report.ok > 0, "admitted work must still complete"
        # Every op's latency includes its queue wait; shed requests never
        # reach the histograms, so the admitted tail must stay within
        # the queue budget plus a handful of RMW service rounds.
        bound = queue_timeout + 50 * service
        for kind, stats in report.latency.items():
            assert stats["p99"] <= bound, (kind, stats["p99"], bound)

    def test_retry_after_hint_absent_before_any_observation(self):
        async def main():
            ac = AdmissionController(1, 0, clock=VirtualClock())
            assert ac.retry_after_hint() is None
            await ac.acquire()
            with pytest.raises(Overloaded) as exc:
                await ac.acquire()
            assert exc.value.retry_after is None  # no basis to guess yet

        run(main())

    def test_retry_after_reflects_queue_depth_and_service_time(self):
        async def main():
            clock = VirtualClock()
            ac = AdmissionController(2, 2, clock=clock)
            # Feed the EWMA through the public seam.
            ac.observe_service_time(0.1)
            await ac.acquire()
            await ac.acquire()
            waiters = [asyncio.ensure_future(ac.acquire()) for _ in range(2)]
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as exc:
                await ac.acquire()
            # 2 queued + our slot, across 2 lanes at 0.1s each.
            assert exc.value.retry_after == pytest.approx(3 * 0.1 / 2)
            for w in waiters:
                ac.release()
            await asyncio.gather(*waiters)

        run(main())

    def test_slot_feeds_the_service_time_ewma(self):
        async def main():
            clock = VirtualClock()
            ac = AdmissionController(1, 4, clock=clock)
            async with ac.slot():
                await clock.sleep(0.05)
            assert ac.retry_after_hint() == pytest.approx(0.05)
            # EWMA, not last-sample: a second, slower op moves it a step.
            async with ac.slot():
                await clock.sleep(0.15)
            hint = ac.retry_after_hint()
            assert 0.05 < hint < 0.15

        run(main())

    def test_timeout_shed_carries_the_hint_too(self):
        async def main():
            clock = VirtualClock()
            ac = AdmissionController(1, 4, queue_timeout=0.02, clock=clock)
            ac.observe_service_time(0.5)
            await ac.acquire()
            with pytest.raises(Overloaded) as exc:
                await ac.acquire()  # queued, then aged out
            assert exc.value.retry_after is not None
            assert exc.value.retry_after > 0

        run(main())

    def test_gentle_load_sheds_nothing(self):
        report = run_sim_bench(
            WorkloadConfig(seed=3, n_objects=6, object_size=256, n_ops=60,
                           rate=100.0),
            n_stripes=48,
            service_latency=0.0005,
            max_inflight=8,
            max_queue=32,
            queue_timeout=0.5,
        )
        assert report.shed == 0
        assert report.ok == 60
