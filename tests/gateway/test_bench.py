"""The workload driver: zipfian sampling, open-loop determinism, and
the byte-stable sim digest.  One slow test covers real sockets."""

import random

import pytest

from repro.gateway.bench import (
    WorkloadConfig,
    ZipfKeys,
    _draw_ops,
    run_sim_bench,
    run_socket_bench,
)

CFG = WorkloadConfig(seed=7, n_objects=8, object_size=700, n_ops=80, rate=4000.0)


class TestZipf:
    def test_draws_are_deterministic_for_a_seeded_rng(self):
        z = ZipfKeys(50, 0.99)
        a = [z.draw(random.Random(1)) for _ in range(10)]
        b = [z.draw(random.Random(1)) for _ in range(10)]
        assert a == b

    def test_popularity_is_skewed_toward_low_ranks(self):
        z = ZipfKeys(100, 0.99)
        rng = random.Random(0)
        draws = [z.draw(rng) for _ in range(4000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.4  # top 10% of keys >> uniform share
        assert min(draws) >= 0 and max(draws) < 100

    def test_theta_zero_is_roughly_uniform(self):
        z = ZipfKeys(10, 0.0)
        rng = random.Random(2)
        draws = [z.draw(rng) for _ in range(5000)]
        head = sum(1 for d in draws if d == 0)
        assert 300 < head < 700  # ~500 expected

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfKeys(0, 0.99)


class TestOpStream:
    def test_stream_is_a_pure_function_of_config(self):
        assert _draw_ops(CFG) == _draw_ops(CFG)
        other = WorkloadConfig(**{**CFG.to_dict(), "seed": 8})
        assert _draw_ops(other) != _draw_ops(CFG)

    def test_mix_respects_read_fraction(self):
        ops = _draw_ops(WorkloadConfig(seed=1, n_ops=1000, read_fraction=0.8))
        reads = sum(1 for kind, *_ in ops if kind == "get")
        assert 700 < reads < 900


class TestSimDeterminism:
    def test_same_seed_same_digest_byte_stable(self):
        r1 = run_sim_bench(CFG)
        r2 = run_sim_bench(CFG)
        assert r1.digest == r2.digest
        assert r1.elapsed_s == r2.elapsed_s
        assert r1.latency == r2.latency

    def test_different_seeds_diverge(self):
        other = WorkloadConfig(**{**CFG.to_dict(), "seed": 8})
        assert run_sim_bench(CFG).digest != run_sim_bench(other).digest

    def test_report_shape(self):
        rep = run_sim_bench(CFG)
        assert rep.mode == "sim"
        assert rep.ok == CFG.n_ops and rep.errors == 0
        assert rep.throughput_ops > 0
        for stats in rep.latency.values():
            assert stats["p50"] <= stats["p90"] <= stats["p99"]
        rows = rep.rows()
        assert [r["op"] for r in rows] == sorted(rep.latency)
        d = rep.to_dict()
        assert d["config"]["seed"] == CFG.seed and d["digest"] == rep.digest

    def test_report_carries_shed_accounting(self):
        rep = run_sim_bench(CFG)
        assert rep.retried == 0 and rep.shed_rate == 0.0
        d = rep.to_dict()
        assert d["retried"] == 0 and d["shed_rate"] == 0.0

    def test_overload_honors_retry_after_and_reports_shed_rate(self):
        """Satellite contract: a shed op with a ``retry_after`` hint
        backs off once and retries before counting as shed; the digest
        records the retry and the report carries the shed rate."""
        report = run_sim_bench(
            WorkloadConfig(seed=11, n_objects=8, object_size=512, n_ops=200,
                           rate=5000.0),
            n_stripes=48,
            service_latency=0.002,
            max_inflight=2,
            max_queue=8,
            queue_timeout=0.05,
        )
        assert report.shed > 0
        assert report.retried > 0, "hints were available; ops must retry"
        assert report.shed_rate == pytest.approx(
            report.shed / (report.ok + report.shed + report.errors)
        )
        assert 0.0 < report.shed_rate < 1.0
        assert report.to_dict()["shed_rate"] == round(report.shed_rate, 6)

    def test_virtual_time_costs_no_wall_time(self):
        # 80 ops at 4000/s is 20ms of virtual time; the run must not
        # actually sleep it (smoke: just completes fast under pytest).
        rep = run_sim_bench(CFG)
        assert rep.elapsed_s >= CFG.n_ops / CFG.rate


@pytest.mark.slow
class TestSocketBench:
    def test_real_socket_run_reports_measured_latency(self):
        cfg = WorkloadConfig(seed=3, n_objects=6, object_size=400, n_ops=30,
                             rate=500.0)
        rep = run_socket_bench(cfg, n_stripes=48)
        assert rep.mode == "socket"
        assert rep.ok == cfg.n_ops
        assert rep.throughput_ops > 0
        assert all(s["p50"] > 0 for s in rep.latency.values())

    def test_socket_digest_covers_only_the_op_stream(self):
        # Timing differs between runs; the digest must not.
        cfg = WorkloadConfig(seed=4, n_objects=5, object_size=300, n_ops=20,
                             rate=800.0)
        assert run_socket_bench(cfg).digest == run_socket_bench(cfg).digest
