"""The segment allocator: packing, spanning, and the free-map edge cases."""

import pytest

from repro.gateway.layout import Extent, NoSpaceError, ObjectMeta, StripeAllocator

SB = 960  # stripe payload bytes of the k=3, p=5, 64B-element geometry


class TestAllocate:
    def test_zero_length_allocation_has_no_extents(self):
        alloc = StripeAllocator(4, SB)
        assert alloc.allocate(0) == []
        assert alloc.free_bytes == alloc.capacity

    def test_exact_stripe_fill_is_one_whole_stripe_extent(self):
        alloc = StripeAllocator(4, SB)
        (ext,) = alloc.allocate(SB)
        assert (ext.start, ext.length) == (0, SB)
        assert alloc.stripe_free(ext.stripe) == 0

    def test_large_object_spans_three_stripes(self):
        alloc = StripeAllocator(4, SB)
        extents = alloc.allocate(2 * SB + 100)
        assert len(extents) == 3
        # The bulk takes whole stripes (full-stripe write path)...
        assert [(e.start, e.length) for e in extents[:2]] == [(0, SB), (0, SB)]
        # ...and only the tail is a partial extent.
        assert extents[2].length == 100
        assert len({e.stripe for e in extents}) == 3

    def test_small_objects_pack_into_a_shared_stripe(self):
        alloc = StripeAllocator(4, SB)
        a = alloc.allocate(100)
        b = alloc.allocate(200)
        assert a[0].stripe == b[0].stripe  # packed, not one stripe each
        assert b[0].start == a[0].length  # tightest fit: right after a

    def test_small_allocations_prefer_partial_stripes_over_fresh_ones(self):
        alloc = StripeAllocator(4, SB)
        alloc.allocate(SB - 50)  # stripe 0 nearly full
        ext = alloc.allocate(40)  # fits the 50-byte tail
        assert (ext[0].stripe, ext[0].start) == (0, SB - 50)

    def test_fragmentation_costs_extents_never_capacity(self):
        # Free space exists only as sub-stripe fragments; a larger
        # allocation must still succeed by splitting across them.
        alloc = StripeAllocator(2, SB)
        keep = alloc.allocate(SB - 10)  # stripe 0: 10 free
        alloc.allocate(SB - 20)  # stripe 1: 20 free
        assert alloc.free_bytes == 30
        extents = alloc.allocate(30)
        assert sum(e.length for e in extents) == 30
        assert alloc.free_bytes == 0
        assert keep  # still intact

    def test_no_space_error_leaves_free_map_untouched(self):
        alloc = StripeAllocator(1, SB)
        alloc.allocate(SB - 1)
        before = alloc.free_bytes
        with pytest.raises(NoSpaceError):
            alloc.allocate(2)
        assert alloc.free_bytes == before
        assert alloc.allocate(1)  # the last byte is still allocatable

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StripeAllocator(1, SB).allocate(-1)

    def test_deterministic_across_identical_call_sequences(self):
        def run():
            alloc = StripeAllocator(4, SB)
            out = [alloc.allocate(n) for n in (100, SB, 500, 30, 2 * SB)]
            alloc.release(out[2])
            out.append(alloc.allocate(400))
            return out

        assert run() == run()


class TestReleaseAndReserve:
    def test_release_coalesces_neighbouring_segments(self):
        alloc = StripeAllocator(1, SB)
        a = alloc.allocate(300)
        b = alloc.allocate(300)
        alloc.release(a)
        alloc.release(b)
        # One whole-stripe segment again: an exact-fill must succeed.
        (ext,) = alloc.allocate(SB)
        assert (ext.start, ext.length) == (0, SB)

    def test_reserve_claims_exact_ranges(self):
        alloc = StripeAllocator(2, SB)
        alloc.reserve([Extent(1, 100, 50)])
        assert alloc.stripe_free(1) == SB - 50
        with pytest.raises(ValueError):
            alloc.reserve([Extent(1, 120, 10)])  # overlaps the claim

    def test_failed_reserve_rolls_back_earlier_claims(self):
        alloc = StripeAllocator(2, SB)
        alloc.reserve([Extent(0, 0, 10)])
        before = alloc.free_bytes
        with pytest.raises(ValueError):
            alloc.reserve([Extent(1, 0, 10), Extent(0, 5, 10)])
        assert alloc.free_bytes == before  # the (1, 0, 10) claim undone


class TestMeta:
    def test_extent_round_trips_through_dict(self):
        ext = Extent(3, 128, 77)
        assert Extent.from_dict(ext.to_dict()) == ext

    def test_object_meta_stripes_sorted_and_deduplicated(self):
        meta = ObjectMeta(
            name="x", size=10, crc=0,
            extents=[Extent(2, 0, 4), Extent(0, 0, 4), Extent(2, 8, 2)],
        )
        assert meta.stripes == [0, 2]
