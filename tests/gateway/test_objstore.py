"""The object gateway: round trips, layout edge cases, integrity,
shadow-write replacement, and concurrency over shared stripes."""

import asyncio

import pytest

from repro.gateway import NoSpaceError, ObjectNotFoundError
from repro.gateway.objstore import IntegrityError

from .conftest import STRIPE_BYTES, sim_gateway


def run(coro):
    return asyncio.run(coro)


class TestRoundTrip:
    def test_put_get_stat_list(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                data = bytes(range(256)) * 4
                stat = await gw.put("a", data)
                assert (stat.name, stat.size) == ("a", len(data))
                assert await gw.get("a") == data
                assert (await gw.stat("a")).crc == stat.crc
                await gw.put("b", b"tiny")
                names = [s.name for s in await gw.list_objects()]
                assert names == ["a", "b"]

        run(main())

    def test_zero_length_object(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                stat = await gw.put("empty", b"")
                assert (stat.size, stat.n_extents, stat.stripes) == (0, 0, ())
                assert await gw.get("empty") == b""
                assert gw.free_bytes == gw.allocator.capacity

        run(main())

    def test_exact_stripe_fill_uses_one_extent(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                data = bytes(i % 251 for i in range(STRIPE_BYTES))
                stat = await gw.put("full", data)
                assert stat.n_extents == 1
                assert await gw.get("full") == data

        run(main())

    def test_large_object_spans_three_stripes(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                data = bytes(i % 253 for i in range(2 * STRIPE_BYTES + 100))
                stat = await gw.put("big", data)
                assert len(stat.stripes) == 3
                assert await gw.get("big") == data

        run(main())

    def test_missing_and_deleted_objects_raise(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                with pytest.raises(ObjectNotFoundError):
                    await gw.get("never")
                await gw.put("gone", b"x" * 50)
                await gw.delete("gone")
                with pytest.raises(ObjectNotFoundError):
                    await gw.get("gone")
                with pytest.raises(ObjectNotFoundError):
                    await gw.delete("gone")

        run(main())

    def test_delete_frees_extents_for_reuse(self):
        async def main():
            async with sim_gateway(n_stripes=2) as (gw, _arr, _cluster):
                await gw.put("a", b"a" * (2 * STRIPE_BYTES))
                with pytest.raises(NoSpaceError):
                    await gw.put("b", b"b")
                await gw.delete("a")
                await gw.put("b", b"b" * (2 * STRIPE_BYTES))
                assert (await gw.get("b"))[:1] == b"b"

        run(main())


class TestOverwrite:
    def test_shrinking_overwrite_returns_space(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("x", b"A" * (2 * STRIPE_BYTES + 100))
                free_large = gw.free_bytes
                stat = await gw.put("x", b"B" * 64)
                assert gw.free_bytes == free_large + 2 * STRIPE_BYTES + 100 - 64
                assert stat.size == 64
                assert await gw.get("x") == b"B" * 64

        run(main())

    def test_overwrite_bumps_version(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                v1 = (await gw.put("x", b"one")).version
                v2 = (await gw.put("x", b"two")).version
                assert v2 > v1

        run(main())


class TestUpdate:
    def test_rmw_update_patches_in_place(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                base = bytearray(b"\x00" * 500)
                await gw.put("x", bytes(base))
                before = await gw.stat("x")
                await gw.update("x", 100, b"\xff" * 32)
                base[100:132] = b"\xff" * 32
                assert await gw.get("x") == bytes(base)
                after = await gw.stat("x")
                # Size and layout are stable; contents and CRC moved.
                assert after.size == before.size
                assert after.stripes == before.stripes
                assert after.crc != before.crc

        run(main())

    def test_update_cannot_grow_an_object(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("x", b"12345678")
                with pytest.raises(ValueError):
                    await gw.update("x", 6, b"abc")
                with pytest.raises(ValueError):
                    await gw.update("x", -1, b"a")

        run(main())

    def test_two_objects_packed_in_one_stripe_update_independently(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("left", b"L" * 100)
                await gw.put("right", b"R" * 100)
                sl, sr = await gw.stat("left"), await gw.stat("right")
                assert sl.stripes == sr.stripes  # genuinely share a stripe
                # Interleave concurrent updates of the shared stripe:
                # per-stripe locking must prevent RMW lost-updates.
                await asyncio.gather(
                    gw.update("left", 0, b"l" * 50),
                    gw.update("right", 50, b"r" * 50),
                )
                assert await gw.get("left") == b"l" * 50 + b"L" * 50
                assert await gw.get("right") == b"R" * 50 + b"r" * 50

        run(main())


class TestIntegrity:
    def test_corruption_beneath_the_gateway_raises_integrity_error(self):
        async def main():
            async with sim_gateway() as (gw, arr, _cluster):
                await gw.put("x", b"P" * 200)
                meta = gw.index["x"]
                ext = meta.extents[0]
                off = ext.stripe * gw.stripe_bytes + ext.start
                # A raw write under the gateway: the cluster stores it
                # faithfully (parity and all), so only the gateway's
                # end-to-end CRC can notice the object changed.
                await arr.write(off, b"Q")
                with pytest.raises(IntegrityError):
                    await gw.get("x")
                assert gw.metrics.counter("gateway_integrity_errors").value == 1

        run(main())


class TestDegraded:
    def test_get_survives_two_lost_columns(self):
        async def main():
            async with sim_gateway() as (gw, _arr, cluster):
                data = bytes(i % 249 for i in range(1500))
                await gw.put("x", data)
                await cluster.stop_node(0)
                await cluster.stop_node(3)
                gw.cache.clear()  # force the degraded read path
                assert await gw.get("x") == data

        run(main())


class TestCacheConsistency:
    def test_gateway_writes_invalidate_cached_stripes(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("x", b"old " * 100)
                await gw.get("x")  # populate the cache
                assert gw.metrics.counter("cache_misses").value >= 1
                await gw.put("x", b"new " * 100)
                assert await gw.get("x") == b"new " * 100

        run(main())

    def test_hot_reads_hit_the_cache(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("x", b"h" * 300)
                for _ in range(5):
                    await gw.get("x")
                assert gw.metrics.counter("cache_hits").value >= 4

        run(main())


class TestStats:
    def test_stats_snapshot_tracks_directory_and_space(self):
        async def main():
            async with sim_gateway() as (gw, _arr, _cluster):
                await gw.put("a", b"a" * 100)
                await gw.put("b", b"b" * 200)
                snap = gw.stats()
                assert snap["objects"] == 2
                assert snap["bytes_stored"] == 300
                assert snap["free_bytes"] == snap["capacity"] - 300

        run(main())
