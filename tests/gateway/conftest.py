"""Shared helpers for the gateway test suite.

Everything runs on the simulation seam (memory transport + virtual
clock): deterministic scheduling, zero sockets, zero real sleeps.
Tests drive asyncio directly (``asyncio.run`` per test), like the
cluster suite.
"""

import contextlib
import random

from repro.cluster import LocalCluster, RetryPolicy
from repro.codes import make_code
from repro.gateway import ObjectGateway
from repro.sim import MemoryTransport, VirtualClock

FAST_POLICY = RetryPolicy(attempts=2, timeout=0.5, backoff=0.01, max_backoff=0.02)

#: k=3, p=5, 64-byte elements: 320-byte strips, 960-byte stripe payloads.
STRIPE_BYTES = 3 * 5 * 64


@contextlib.asynccontextmanager
async def sim_gateway(k=3, p=5, element_size=64, n_stripes=6, *,
                      policy=FAST_POLICY, seed=1, **gw_kwargs):
    """A started sim cluster with an :class:`ObjectGateway` on top.

    Yields ``(gateway, array, cluster)`` so tests can reach beneath the
    object API (raw writes, node faults) when they need to.
    """
    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    cluster = LocalCluster(
        code, n_stripes, transport=MemoryTransport(), clock=VirtualClock()
    )
    async with cluster:
        array = cluster.array(policy=policy, rng=random.Random(seed))
        yield ObjectGateway(array, **gw_kwargs), array, cluster
