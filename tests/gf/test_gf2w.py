"""Tests for generic GF(2^w) and the bit-matrix projection."""

import numpy as np
import pytest

from repro.gf.gf2w import GF2w, PRIMITIVE_POLYS, element_bitmatrix


class TestFieldLaws:
    @pytest.mark.parametrize("w", [2, 3, 4, 8])
    def test_inverse_everywhere(self, w):
        gf = GF2w(w)
        for a in range(1, gf.size):
            assert gf.mul(a, gf.inverse(a)) == 1

    @pytest.mark.parametrize("w", [3, 4])
    def test_associativity_exhaustive(self, w):
        gf = GF2w(w)
        for a in range(gf.size):
            for b in range(gf.size):
                for c in (1, 2, gf.size - 1):
                    assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))

    def test_distributivity_sampled(self):
        gf = GF2w(8)
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b, c = rng.integers(0, 256, 3)
            assert gf.mul(int(a), int(b) ^ int(c)) == gf.mul(int(a), int(b)) ^ gf.mul(int(a), int(c))

    def test_gf8_matches_gf256_module(self):
        """Same polynomial (0x11D) as the Reed-Solomon field."""
        from repro.gf.gf256 import GF256

        gf8, gf256 = GF2w(8), GF256()
        for a, b in [(3, 7), (200, 131), (255, 255), (1, 99)]:
            assert gf8.mul(a, b) == int(gf256.mul(a, b))

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            GF2w(17)

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            GF2w(4).inverse(0)

    def test_div_roundtrip(self):
        gf = GF2w(4)
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf.mul(gf.div(a, b), b) == a

    def test_all_polys_primitive(self):
        for w in PRIMITIVE_POLYS:
            GF2w(w)  # constructor asserts primitivity


class TestElementBitmatrix:
    @pytest.mark.parametrize("w", [3, 4, 8])
    def test_projection_is_multiplication(self, w):
        """M_e @ bits(x) == bits(e * x) for every e, sampled x."""
        gf = GF2w(w)
        rng = np.random.default_rng(1)
        for e in range(gf.size):
            m = element_bitmatrix(gf, e)
            for x in rng.integers(0, gf.size, 8):
                x = int(x)
                bits_x = np.array([(x >> r) & 1 for r in range(w)], dtype=np.uint8)
                prod = (m.astype(np.int64) @ bits_x) % 2
                expect = gf.mul(e, x)
                got = sum(int(prod[r]) << r for r in range(w))
                assert got == expect, (w, e, x)

    def test_identity_element(self):
        gf = GF2w(4)
        assert np.array_equal(element_bitmatrix(gf, 1), np.eye(4, dtype=np.uint8))

    def test_zero_element(self):
        gf = GF2w(4)
        assert not element_bitmatrix(gf, 0).any()

    def test_homomorphism(self):
        """M_{a*b} == M_a @ M_b over GF(2)."""
        gf = GF2w(4)
        for a in (3, 7, 9):
            for b in (2, 11, 15):
                ma, mb = element_bitmatrix(gf, a), element_bitmatrix(gf, b)
                mab = element_bitmatrix(gf, gf.mul(a, b))
                assert np.array_equal((ma.astype(np.int64) @ mb) % 2, mab)
