"""Tests for GF(2) matrix algebra."""

import numpy as np
import pytest

from repro.gf.gf2 import (
    as_gf2,
    gf2_identity,
    gf2_inverse,
    gf2_is_invertible,
    gf2_matvec,
    gf2_mul,
    gf2_rank,
    gf2_solve,
)


def random_invertible(n, rng):
    """Random invertible GF(2) matrix via random row operations on I."""
    m = gf2_identity(n)
    for _ in range(4 * n):
        i, j = rng.integers(0, n, 2)
        if i != j:
            m[i] ^= m[j]
    perm = rng.permutation(n)
    return m[perm]


class TestBasics:
    def test_as_gf2_reduces_mod_2(self):
        out = as_gf2(np.array([[2, 3], [4, 5]]))
        assert out.tolist() == [[0, 1], [0, 1]]

    def test_identity(self):
        i3 = gf2_identity(3)
        assert np.array_equal(gf2_mul(i3, i3), i3)

    def test_mul_matches_boolean_definition(self, rng):
        a = rng.integers(0, 2, (5, 7)).astype(np.uint8)
        b = rng.integers(0, 2, (7, 4)).astype(np.uint8)
        expect = np.zeros((5, 4), dtype=np.uint8)
        for i in range(5):
            for j in range(4):
                expect[i, j] = int(np.bitwise_xor.reduce(a[i] & b[:, j]))
        assert np.array_equal(gf2_mul(a, b), expect)

    def test_matvec(self, rng):
        a = rng.integers(0, 2, (6, 6)).astype(np.uint8)
        v = rng.integers(0, 2, 6).astype(np.uint8)
        assert np.array_equal(gf2_matvec(a, v), gf2_mul(a, v[:, None]).ravel())


class TestRank:
    def test_identity_full_rank(self):
        assert gf2_rank(gf2_identity(8)) == 8

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((4, 4), dtype=np.uint8)) == 0

    def test_duplicate_rows(self):
        m = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_empty(self):
        assert gf2_rank(np.zeros((0, 0), dtype=np.uint8)) == 0

    def test_rectangular(self):
        m = np.array([[1, 0, 0, 1], [0, 1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2


class TestInverse:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 64])
    def test_round_trip(self, n, rng):
        m = random_invertible(n, rng)
        inv = gf2_inverse(m)
        assert np.array_equal(gf2_mul(m, inv), gf2_identity(n))
        assert np.array_equal(gf2_mul(inv, m), gf2_identity(n))

    def test_singular_raises(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf2_inverse(m)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_input_not_mutated(self, rng):
        m = random_invertible(6, rng)
        before = m.copy()
        gf2_inverse(m)
        assert np.array_equal(m, before)


class TestSolveAndInvertible:
    def test_solve_vector(self, rng):
        a = random_invertible(8, rng)
        x = rng.integers(0, 2, 8).astype(np.uint8)
        b = gf2_matvec(a, x)
        assert np.array_equal(gf2_solve(a, b), x)

    def test_solve_matrix(self, rng):
        a = random_invertible(6, rng)
        x = rng.integers(0, 2, (6, 3)).astype(np.uint8)
        b = gf2_mul(a, x)
        assert np.array_equal(gf2_solve(a, b), x)

    def test_is_invertible(self, rng):
        assert gf2_is_invertible(random_invertible(7, rng))
        assert not gf2_is_invertible(np.ones((3, 3), dtype=np.uint8))
        assert not gf2_is_invertible(np.ones((2, 3), dtype=np.uint8))
