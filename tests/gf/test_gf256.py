"""Tests for GF(2^8) arithmetic."""

import numpy as np
import pytest

from repro.gf.gf256 import GF256, PRIMITIVE_POLY


@pytest.fixture(scope="module")
def gf():
    return GF256()


class TestConstruction:
    def test_default_poly_is_linux_raid6(self, gf):
        assert gf.poly == PRIMITIVE_POLY == 0x11D

    def test_non_primitive_poly_rejected(self):
        with pytest.raises(ValueError):
            GF256(poly=0x101)  # x^8 + 1 is not primitive

    def test_alternate_primitive_poly(self):
        gf = GF256(poly=0x11B)  # the AES polynomial, generator 3
        # 2 is not a generator of 0x11B's multiplicative group for the
        # exp table we build, but the table construction itself (cycling
        # through 255 states) must still close.
        assert gf.mul(3, gf.inverse(3)) == 1


class TestFieldLaws:
    def test_mul_identity_and_zero(self, gf):
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf.mul(a, 1), a)
        assert not gf.mul(a, 0).any()

    def test_commutative(self, gf):
        a = np.arange(256, dtype=np.uint8)
        b = np.arange(255, -1, -1).astype(np.uint8)
        assert np.array_equal(gf.mul(a, b), gf.mul(b, a))

    def test_associative_sampled(self, gf):
        rng = np.random.default_rng(1)
        a, b, c = (rng.integers(0, 256, 500, dtype=np.uint8) for _ in range(3))
        assert np.array_equal(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)))

    def test_distributive_sampled(self, gf):
        rng = np.random.default_rng(2)
        a, b, c = (rng.integers(0, 256, 500, dtype=np.uint8) for _ in range(3))
        assert np.array_equal(
            gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c))
        )

    def test_every_nonzero_invertible(self, gf):
        a = np.arange(1, 256, dtype=np.uint8)
        assert np.array_equal(gf.mul(a, gf.inverse(a)), np.ones(255, dtype=np.uint8))

    def test_zero_has_no_inverse(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.inverse(0)

    def test_div(self, gf):
        a = np.arange(1, 256, dtype=np.uint8)
        assert np.array_equal(gf.div(gf.mul(a, 7), 7), a)


class TestPow:
    def test_generator_cycle(self, gf):
        assert gf.pow(2, 0) == 1
        assert gf.pow(2, 255) == 1  # multiplicative order divides 255
        seen = {gf.gen_pow(i) for i in range(255)}
        assert len(seen) == 255  # 2 generates the whole group

    def test_pow_matches_repeated_mul(self, gf):
        x = 1
        for n in range(10):
            assert gf.pow(2, n) == x
            x = int(gf.mul(x, 2))

    def test_zero_base(self, gf):
        assert gf.pow(0, 5) == 0
        assert gf.pow(0, 0) == 1


class TestStripOps:
    def test_mul_strip_by_zero_one(self, gf, random_words):
        strip = random_words((4, 8))
        assert not gf.mul_strip(0, strip).any()
        assert np.array_equal(gf.mul_strip(1, strip), strip)

    def test_mul_strip_matches_elementwise(self, gf, random_words):
        strip = random_words((2, 4))
        coeff = 0x53
        out = gf.mul_strip(coeff, strip)
        expect = gf.mul(strip.view(np.uint8), coeff)
        assert np.array_equal(out.view(np.uint8).reshape(-1), expect.reshape(-1))

    def test_mul_strip_preserves_shape_dtype(self, gf, random_words):
        strip = random_words((3, 5))
        out = gf.mul_strip(9, strip)
        assert out.shape == strip.shape and out.dtype == strip.dtype


class TestMatrices:
    def test_vandermonde_shape_entries(self, gf):
        v = gf.vandermonde(3, 5)
        assert v.shape == (3, 5)
        assert v[0].tolist() == [1] * 5
        assert v[1].tolist() == [gf.gen_pow(j) for j in range(5)]

    def test_mat_inverse_round_trip(self, gf):
        m = np.array([[1, 1], [gf.gen_pow(0), gf.gen_pow(1)]], dtype=np.uint8)
        inv = gf.mat_inverse(m)
        prod = np.zeros((2, 2), dtype=np.uint8)
        for i in range(2):
            for j in range(2):
                acc = 0
                for t in range(2):
                    acc ^= int(gf.mul(m[i, t], inv[t, j]))
                prod[i, j] = acc
        assert np.array_equal(prod, np.eye(2, dtype=np.uint8))

    def test_mat_inverse_singular(self, gf):
        with pytest.raises(np.linalg.LinAlgError):
            gf.mat_inverse(np.array([[1, 1], [1, 1]], dtype=np.uint8))

    def test_mat_inverse_non_square(self, gf):
        with pytest.raises(ValueError):
            gf.mat_inverse(np.zeros((2, 3), dtype=np.uint8))
