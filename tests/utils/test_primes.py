"""Tests for repro.utils.primes."""

import pytest

from repro.utils.primes import is_prime, is_odd_prime, next_prime, primes_up_to, prime_for_k


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61]


class TestIsPrime:
    def test_known_primes(self):
        for p in KNOWN_PRIMES:
            assert is_prime(p), p

    def test_known_composites(self):
        for n in [0, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 49, 51, 91, 121]:
            assert not is_prime(n), n

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime_and_composite(self):
        assert is_prime(7919)  # 1000th prime
        assert not is_prime(7917)
        assert not is_prime(7921)  # 89^2

    def test_square_of_prime(self):
        # Exercises the f*f <= n boundary.
        for p in [5, 7, 11, 13]:
            assert not is_prime(p * p)

    def test_agreement_with_sieve(self):
        sieve = set(primes_up_to(500))
        for n in range(500):
            assert is_prime(n) == (n in sieve), n


class TestIsOddPrime:
    def test_two_is_excluded(self):
        assert not is_odd_prime(2)

    def test_odd_primes_pass(self):
        for p in [3, 5, 7, 31]:
            assert is_odd_prime(p)

    def test_composites_fail(self):
        assert not is_odd_prime(9)


class TestNextPrime:
    def test_at_prime_returns_itself(self):
        assert next_prime(11) == 11

    def test_skips_two_by_default(self):
        assert next_prime(2) == 3
        assert next_prime(0) == 3

    def test_allows_two_when_asked(self):
        assert next_prime(2, odd=False) == 2

    def test_between_primes(self):
        assert next_prime(8) == 11
        assert next_prime(24) == 29

    def test_monotone(self):
        values = [next_prime(n) for n in range(2, 100)]
        assert values == sorted(values)
        for n, v in zip(range(2, 100), values):
            assert v >= n


class TestPrimesUpTo:
    def test_empty_below_two(self):
        assert primes_up_to(1) == []
        assert primes_up_to(0) == []

    def test_small(self):
        assert primes_up_to(2) == [2]
        assert primes_up_to(20) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_inclusive_limit(self):
        assert 31 in primes_up_to(31)

    def test_count_below_1000(self):
        assert len(primes_up_to(1000)) == 168


class TestPrimeForK:
    def test_paper_configurations(self):
        # 'p varying with k': smallest odd prime >= k.
        assert prime_for_k(2) == 3
        assert prime_for_k(4) == 5
        assert prime_for_k(6) == 7
        assert prime_for_k(8) == 11
        assert prime_for_k(23) == 23

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            prime_for_k(1)

    def test_result_admits_k(self):
        for k in range(2, 60):
            assert prime_for_k(k) >= k
