"""Tests for repro.utils.modular."""

import pytest

from repro.utils.modular import Mod, mod_inverse


class TestModInverse:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13, 31])
    def test_inverse_property(self, p):
        for a in range(1, p):
            assert (a * mod_inverse(a, p)) % p == 1

    def test_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            mod_inverse(0, 7)
        with pytest.raises(ZeroDivisionError):
            mod_inverse(14, 7)  # congruent to zero

    def test_negative_operand(self):
        assert (-3 * mod_inverse(-3, 7)) % 7 == 1


class TestMod:
    def test_call_matches_python_mod(self):
        m = Mod(7)
        for x in range(-30, 30):
            assert m(x) == x % 7

    def test_half_constants(self):
        m = Mod(5)
        assert m.half_minus == 2
        assert m.half_plus == 3
        m31 = Mod(31)
        assert m31.half_minus == 15
        assert m31.half_plus == 16

    def test_halves_are_two_inverses(self):
        # (p+1)/2 is the inverse of 2; (p-1)/2 is the inverse of -2.
        for p in [3, 5, 7, 11, 13]:
            m = Mod(p)
            assert (2 * m.half_plus) % p == 1
            assert (-2 * m.half_minus) % p == 1

    def test_rejects_even_or_small(self):
        with pytest.raises(ValueError):
            Mod(4)
        with pytest.raises(ValueError):
            Mod(1)
        with pytest.raises(ValueError):
            Mod(2)

    def test_inv_method(self):
        m = Mod(11)
        for a in range(1, 11):
            assert m(a * m.inv(a)) == 1

    def test_frozen(self):
        m = Mod(5)
        with pytest.raises(Exception):
            m.p = 7
