"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_element_size,
    check_erasures,
    check_k,
    check_prime_p,
)


class TestCheckPrimeP:
    def test_accepts_odd_primes(self):
        for p in [3, 5, 7, 31]:
            assert check_prime_p(p) == p

    @pytest.mark.parametrize("bad", [2, 4, 9, 1, 0, -5, 15])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_prime_p(bad)

    def test_coerces_to_int(self):
        assert check_prime_p(7.0) == 7


class TestCheckK:
    def test_in_range(self):
        assert check_k(5, 7) == 5
        assert check_k(7, 7) == 7

    def test_too_small(self):
        with pytest.raises(ValueError, match="at least k=2"):
            check_k(1, 7)

    def test_too_large_names_code(self):
        with pytest.raises(ValueError, match="rdp"):
            check_k(8, 7, code="rdp")


class TestCheckElementSize:
    def test_valid(self):
        assert check_element_size(8) == 8
        assert check_element_size(8192) == 8192

    @pytest.mark.parametrize("bad", [0, 4, -8, 10])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            check_element_size(bad)


class TestCheckErasures:
    def test_canonical_sorted_tuple(self):
        assert check_erasures([4, 1], 6) == (1, 4)
        assert check_erasures((), 6) == ()
        assert check_erasures([3], 6) == (3,)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_erasures([2, 2], 6)

    def test_three_erasures_rejected(self):
        with pytest.raises(ValueError, match="at most 2"):
            check_erasures([0, 1, 2], 6)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_erasures([6], 6)
        with pytest.raises(ValueError, match="out of range"):
            check_erasures([-1], 6)
