"""Tests for repro.utils.words."""

import numpy as np
import pytest

from repro.utils.words import (
    WORD_BYTES,
    WORD_DTYPE,
    alloc_stripe,
    bytes_to_words,
    element_words,
    random_words,
    words_to_bytes,
    words_view,
)


class TestElementWords:
    def test_basic(self):
        assert element_words(8) == 1
        assert element_words(4096) == 512

    @pytest.mark.parametrize("bad", [0, -8, 7, 12, 4097])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            element_words(bad)


class TestByteConversion:
    def test_round_trip(self):
        data = bytes(range(48))
        assert words_to_bytes(bytes_to_words(data)) == data

    def test_little_endian_word_layout(self):
        w = bytes_to_words(b"\x01" + b"\x00" * 7)
        assert w[0] == 1

    def test_rejects_partial_word(self):
        with pytest.raises(ValueError):
            bytes_to_words(b"\x00" * 9)

    def test_copy_semantics(self):
        data = bytearray(16)
        w = bytes_to_words(data)
        data[0] = 0xFF
        assert w[0] == 0  # not a view of the caller's buffer


class TestWordsView:
    def test_is_a_view_not_a_copy(self):
        data = bytearray(16)
        w = words_view(data)
        data[0] = 0xFF
        assert w[0] == 0xFF

    def test_bytes_views_are_read_only(self):
        w = words_view(b"\x00" * 16)
        assert not w.flags.writeable
        with pytest.raises(ValueError):
            w[0] = 1

    def test_rejects_partial_word(self):
        with pytest.raises(ValueError):
            words_view(b"\x00" * 9)

    def test_matches_copying_conversion(self):
        data = bytes(range(WORD_BYTES * 5))
        assert np.array_equal(words_view(data), bytes_to_words(data))
        assert words_view(data).dtype == WORD_DTYPE


class TestRandomWords:
    def test_deterministic(self):
        a = random_words(16, seed=7)
        b = random_words(16, seed=7)
        assert np.array_equal(a, b)

    def test_shape_and_dtype(self):
        a = random_words((3, 4), seed=1)
        assert a.shape == (3, 4) and a.dtype == WORD_DTYPE

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_words(64, seed=1), random_words(64, seed=2))


class TestAllocStripe:
    def test_shape(self):
        s = alloc_stripe(7, 5, 4096)
        assert s.shape == (7, 5, 512)
        assert s.dtype == WORD_DTYPE
        assert not s.any()

    def test_c_contiguous(self):
        assert alloc_stripe(4, 3, 16).flags["C_CONTIGUOUS"]

    def test_word_size_constant(self):
        assert WORD_BYTES == 8
