"""The benchmark-regression gate: delta semantics, the trajectory
file, and the CLI exit codes the acceptance criteria pin down."""

import json

import pytest

from repro.cli import main
from repro.obs.regress import (
    DEFAULT_TOLERANCE,
    FLOORS,
    KERNEL_SPEEDUP_FLOOR,
    Delta,
    PerfFileError,
    check_floors,
    compare,
    load_perf,
    regress,
    run_perf_suite,
    save_perf,
)


class TestDelta:
    def test_higher_is_better_regresses_on_drop(self):
        d = Delta("gbps", baseline=2.0, current=1.6, direction="higher",
                  tolerance=0.15)
        assert d.regressed
        ok = Delta("gbps", baseline=2.0, current=1.8, direction="higher",
                   tolerance=0.15)
        assert not ok.regressed

    def test_lower_is_better_regresses_on_rise(self):
        d = Delta("xors", baseline=70.0, current=90.0, direction="lower",
                  tolerance=0.15)
        assert d.regressed
        ok = Delta("xors", baseline=70.0, current=70.0, direction="lower",
                   tolerance=0.15)
        assert not ok.regressed

    def test_improvements_never_regress(self):
        assert not Delta("gbps", 2.0, 4.0, "higher", 0.15).regressed
        assert not Delta("xors", 70.0, 35.0, "lower", 0.15).regressed

    def test_row_verdict(self):
        d = Delta("m", 2.0, 0.9, "higher", 0.15)
        assert d.row()["verdict"] == "REGRESSED"
        assert d.ratio == pytest.approx(0.45)


class TestCompare:
    def _payload(self, **metrics):
        return {"schema": 1, "metrics": {
            name: {"value": value, "unit": "x", "direction": direction}
            for name, (value, direction) in metrics.items()}}

    def test_only_shared_metrics_compare(self):
        base = self._payload(a=(1.0, "higher"), gone=(2.0, "higher"))
        cur = self._payload(a=(1.0, "higher"), new=(3.0, "higher"))
        deltas = compare(base, cur, tolerance=0.1)
        assert [d.metric for d in deltas] == ["a"]

    def test_direction_comes_from_current(self):
        base = self._payload(m=(10.0, "higher"))
        cur = self._payload(m=(20.0, "lower"))
        (d,) = compare(base, cur, tolerance=0.15)
        assert d.direction == "lower"
        assert d.regressed


class TestPerfSuite:
    def test_quick_suite_shape(self):
        payload = run_perf_suite(quick=True)
        metrics = payload["metrics"]
        assert payload["schema"] == 1
        assert payload["quick"] is True
        assert "encode_xors/liberation-optimal/k6" in metrics
        assert "encode_gbps/liberation-optimal/k6/4KB" in metrics
        # The object gateway reports into the same trajectory (sim-seam
        # workload in quick mode; socket saturation joins in full mode).
        assert "gateway_ops/sim/mixed" in metrics
        assert "gateway_ops/socket/mixed" not in metrics
        # XOR counts are exact schedule properties: k=6 on p=7 obeys
        # the paper's 2w(k-1) encode bound for the optimal code.
        assert metrics["encode_xors/liberation-optimal/k6"]["value"] == 70.0
        for m in metrics.values():
            assert m["direction"] in ("higher", "lower")
            assert m["value"] > 0

    def test_save_load_round_trip(self, tmp_path):
        payload = {"schema": 1, "metrics": {"m": {"value": 1.0}}}
        path = save_perf(payload, tmp_path / "BENCH_perf.json")
        assert load_perf(path) == payload
        assert load_perf(tmp_path / "absent.json") is None


class TestRegressGate:
    def test_first_run_has_no_baseline_and_passes(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        deltas, current, baseline = regress(out_path=out, quick=True)
        assert baseline is None
        assert deltas == []
        assert out.exists()

    def test_second_run_compares_against_the_first(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        regress(out_path=out, quick=True)
        deltas, _current, baseline = regress(out_path=out, quick=True)
        assert baseline is not None
        assert len(deltas) == 7  # 4 xor + 2 throughput + gateway sim ops
        # XOR counts are deterministic, so those deltas are exactly 1.0.
        xor_deltas = [d for d in deltas if "xors" in d.metric]
        assert xor_deltas and all(d.ratio == 1.0 for d in xor_deltas)

    def test_cli_back_to_back_exits_zero(self, tmp_path):
        out = str(tmp_path / "BENCH_perf.json")
        assert main(["bench", "regress", "--quick", "--out", out]) == 0
        assert main(["bench", "regress", "--quick", "--out", out]) == 0

    def test_cli_injected_2x_slowdown_exits_nonzero(self, tmp_path):
        """Acceptance: a doctored baseline claiming 2x the measured
        throughput must trip the gate (a real 2x slowdown looks exactly
        like this to the comparator)."""
        out = tmp_path / "BENCH_perf.json"
        assert main(["bench", "regress", "--quick", "--out", str(out)]) == 0
        doctored = json.loads(out.read_text())
        for name, m in doctored["metrics"].items():
            if m["direction"] == "higher":
                m["value"] *= 2.0  # "we used to be twice as fast"
        baseline = tmp_path / "doctored.json"
        baseline.write_text(json.dumps(doctored))
        rc = main(["bench", "regress", "--quick", "--out", str(out),
                   "--baseline", str(baseline)])
        assert rc == 1

    def test_quick_mode_measures_no_kernel_metrics(self, tmp_path):
        # The floor metrics need long timing windows; quick mode (the
        # PR soft gate / test suite path) must not pretend to measure
        # them, or the floor would gate on noise.
        _deltas, current, _ = regress(out_path=tmp_path / "p.json", quick=True)
        assert not any(n.startswith("kernel_") for n in current["metrics"])

    def test_xor_count_increase_trips_the_gate(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        regress(out_path=out, quick=True)
        doctored = json.loads(out.read_text())
        # Pretend the optimal encode schedule used to be 20% leaner:
        # today's exact count then reads as a complexity regression.
        key = "encode_xors/liberation-optimal/k6"
        doctored["metrics"][key]["value"] /= 1.2
        baseline = tmp_path / "doctored.json"
        baseline.write_text(json.dumps(doctored))
        deltas, _, _ = regress(out_path=out, baseline_path=baseline,
                               tolerance=DEFAULT_TOLERANCE, quick=True)
        assert any(d.metric == key and d.regressed for d in deltas)


class TestKernelFloors:
    """The >= 5x kernel-speedup floor: absolute, first-run inclusive."""

    @staticmethod
    def _payload(**values):
        return {"schema": 1, "metrics": {
            name: {"value": value, "unit": "x", "direction": "higher"}
            for name, value in values.items()}}

    def test_floor_names_cover_encode_and_decode(self):
        assert FLOORS == {
            "kernel_speedup/encode/p11/4KB": KERNEL_SPEEDUP_FLOOR,
            "kernel_speedup/decode/p11/4KB": KERNEL_SPEEDUP_FLOOR,
        }
        assert KERNEL_SPEEDUP_FLOOR == 5.0

    def test_above_floor_passes(self):
        payload = self._payload(**{name: 5.3 for name in FLOORS})
        deltas = check_floors(payload)
        assert len(deltas) == len(FLOORS)
        assert not any(d.regressed for d in deltas)
        assert all(d.metric.endswith("[floor]") for d in deltas)

    def test_below_floor_minus_tolerance_regresses(self):
        bad = KERNEL_SPEEDUP_FLOOR * (1 - DEFAULT_TOLERANCE) - 0.01
        payload = self._payload(**{name: bad for name in FLOORS})
        assert all(d.regressed for d in check_floors(payload))

    def test_within_tolerance_of_floor_passes(self):
        # The floor shares the ratchet's noise semantics: a contended
        # machine measuring 4.4x against a 5.0 floor is within the 15%
        # band, not a regression.
        near = KERNEL_SPEEDUP_FLOOR * (1 - DEFAULT_TOLERANCE) + 0.01
        payload = self._payload(**{name: near for name in FLOORS})
        assert not any(d.regressed for d in check_floors(payload))

    def test_unmeasured_metrics_are_skipped(self):
        assert check_floors({"schema": 1, "metrics": {}}) == []


class TestPerfFileErrors:
    """Satellite: missing/empty baseline files get their own exit path."""

    def test_explicit_missing_baseline_is_exit_2(self, tmp_path, capsys):
        rc = main(["bench", "regress", "--quick",
                   "--out", str(tmp_path / "out.json"),
                   "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "bench gate ERROR" in capsys.readouterr().out
        # Fails fast: nothing was measured, so nothing was written.
        assert not (tmp_path / "out.json").exists()

    def test_empty_baseline_is_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        rc = main(["bench", "regress", "--quick",
                   "--out", str(tmp_path / "out.json"),
                   "--baseline", str(empty)])
        assert rc == 2
        assert "empty" in capsys.readouterr().out

    def test_invalid_json_baseline_is_exit_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["bench", "regress", "--quick",
                   "--out", str(tmp_path / "out.json"), "--baseline", str(bad)])
        assert rc == 2

    def test_metricsless_baseline_is_exit_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1}))
        rc = main(["bench", "regress", "--quick",
                   "--out", str(tmp_path / "out.json"), "--baseline", str(bad)])
        assert rc == 2

    def test_load_perf_raises_on_corrupt_default_path(self, tmp_path):
        # Even the non-required path refuses to ratchet past a corrupt
        # trajectory file (absent stays a clean first run).
        path = tmp_path / "BENCH_perf.json"
        path.write_text("  ")
        with pytest.raises(PerfFileError):
            load_perf(path)
        assert load_perf(tmp_path / "absent.json") is None
        with pytest.raises(PerfFileError):
            load_perf(tmp_path / "absent.json", required=True)
