"""Spans, parenting, exporters, digests, and the zero-overhead guard."""

import json
import tracemalloc

import pytest

from repro.codes import make_code
from repro.obs.tracing import (
    Span,
    Tracer,
    active_tracer,
    set_tracer,
    spans_to_chrome,
    spans_to_jsonl,
    trace_digest,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import VirtualClock


class TestTracer:
    def test_span_records_name_attrs_and_ids(self):
        t = Tracer()
        with t.span("work", k=6, code="liberation-optimal") as s:
            s.set("extra", True)
        assert [sp.name for sp in t.spans] == ["work"]
        assert s.attrs == {"k": 6, "code": "liberation-optimal", "extra": True}
        assert s.span_id == 0 and s.parent_id is None
        assert s.duration is not None

    def test_parenting_is_lexical(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("sibling"):
                pass
        outer, inner, sibling = t.spans
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_logical_clock_fallback_is_deterministic(self):
        def run():
            t = Tracer()
            with t.span("a"):
                with t.span("b"):
                    pass
            return t.digest()

        assert run() == run()

    def test_injected_virtual_clock(self):
        clock = VirtualClock()
        t = Tracer(now=clock.time)
        with t.span("frozen"):
            pass  # virtual time does not advance by itself
        assert t.spans[0].start == 0.0
        assert t.spans[0].duration == 0.0

    def test_find_and_clear(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert [s.name for s in t.find("a")] == ["a"]
        t.clear()
        assert t.spans == []
        with t.span("c") as s:
            pass
        assert s.span_id == 0  # ids restart after clear


class TestActiveTracer:
    def test_default_off(self):
        assert active_tracer() is None

    def test_use_tracer_scopes_and_restores(self):
        t = Tracer()
        with use_tracer(t) as got:
            assert got is t
            assert active_tracer() is t
        assert active_tracer() is None

    def test_set_tracer_returns_previous(self):
        t1, t2 = Tracer(), Tracer()
        assert set_tracer(t1) is None
        assert set_tracer(t2) is t1
        assert set_tracer(None) is t2


class TestExporters:
    def _trace(self):
        t = Tracer()
        with t.span("encode", xors=220, code="liberation-optimal"):
            with t.span("compile", ops=230):
                pass
        return t

    def test_jsonl_one_canonical_object_per_line(self):
        t = self._trace()
        lines = spans_to_jsonl(t.spans).strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "encode"
        assert first["attrs"]["xors"] == 220
        # Canonical: key-sorted, no whitespace.
        assert lines[0] == json.dumps(json.loads(lines[0]), sort_keys=True,
                                      separators=(",", ":"))

    def test_chrome_trace_shape(self):
        t = self._trace()
        doc = spans_to_chrome(t.spans, process_name="test")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        enc = xs[0]
        assert enc["name"] == "encode"
        assert enc["args"]["xors"] == 220
        assert enc["args"]["span_id"] == 0
        assert {"pid", "tid", "ts", "dur"} <= set(enc)

    def test_writers_round_trip(self, tmp_path):
        t = self._trace()
        jl = write_jsonl(tmp_path / "t.jsonl", t.spans)
        ch = write_chrome_trace(tmp_path / "t.json", t.spans)
        assert len(jl.read_text().strip().split("\n")) == 2
        loaded = json.loads(ch.read_text())
        assert "traceEvents" in loaded

    def test_digest_is_canonical(self):
        t = self._trace()
        assert t.digest() == trace_digest(t.spans)
        assert t.digest() != trace_digest(t.spans[:1])

    def test_open_span_exports_with_null_duration(self):
        s = Span(name="open", span_id=0, parent_id=None, start=1.0)
        assert json.loads(spans_to_jsonl([s]))["duration"] is None
        assert spans_to_chrome([s])["traceEvents"][1]["dur"] == 0.0


class TestDisabledOverhead:
    def test_disabled_tracing_allocates_nothing_in_obs(self):
        """The hot-path contract: with no active tracer, encode touches
        the obs layer only through one ``active_tracer()`` global read
        -- no span objects, no dicts, no allocations in obs files."""
        import repro.obs.profile as profile_mod
        import repro.obs.tracing as tracing_mod

        assert active_tracer() is None
        code = make_code("liberation-optimal", 4, p=5, element_size=64)
        buf = code.alloc_stripe()
        code.encode(buf)  # warm the plan cache outside the snapshot

        obs_filter = tracemalloc.Filter(
            True, tracing_mod.__file__
        ), tracemalloc.Filter(True, profile_mod.__file__)
        tracemalloc.start()
        try:
            for _ in range(50):
                code.encode(buf)
            snap = tracemalloc.take_snapshot().filter_traces(obs_filter)
        finally:
            tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("filename")) == 0

    def test_enabled_tracing_records_the_same_encodes(self):
        code = make_code("liberation-optimal", 4, p=5, element_size=64)
        buf = code.alloc_stripe()
        t = Tracer()
        with use_tracer(t):
            for _ in range(3):
                code.encode(buf)
        assert len(t.find("code.encode")) == 3


def test_span_start_order_is_record_order():
    t = Tracer()
    with t.span("first"):
        with t.span("second"):
            pass
    with t.span("third"):
        pass
    assert [s.span_id for s in t.spans] == [0, 1, 2]
    starts = [s.start for s in t.spans]
    assert starts == sorted(starts)


def test_virtual_clock_spans_carry_virtual_durations():
    import asyncio

    clock = VirtualClock()
    t = Tracer(now=clock.time)

    async def work():
        with t.span("sleepy"):
            await clock.sleep(1.5)

    asyncio.run(work())
    assert t.spans[0].duration == pytest.approx(1.5)


def test_contextvar_parenting_survives_task_switches():
    """Two concurrent tasks each see their own current span, so the
    interleaved children parent correctly (the asyncio-safety claim)."""
    import asyncio

    clock = VirtualClock()
    t = Tracer(now=clock.time)

    async def worker(name, delay):
        with t.span(f"outer.{name}"):
            await clock.sleep(delay)
            with t.span(f"inner.{name}"):
                await clock.sleep(delay)

    async def main():
        await asyncio.gather(worker("a", 1.0), worker("b", 1.5))

    asyncio.run(main())
    by_name = {s.name: s for s in t.spans}
    assert by_name["inner.a"].parent_id == by_name["outer.a"].span_id
    assert by_name["inner.b"].parent_id == by_name["outer.b"].span_id
