"""Gauges, histogram merging, the default registry, and Prometheus
text exposition -- the parts grown beyond ``repro.cluster.metrics``."""

import pytest

from repro.obs.metrics import (
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    quantiles_from_buckets,
    set_default_registry,
    to_prometheus,
)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_registry_accessor_is_stable(self):
        reg = MetricsRegistry()
        reg.gauge("q").set(3)
        assert reg.gauge("q").value == 3.0

    def test_snapshot_omits_gauges_when_empty(self):
        # Wire compat: pre-obs nodes never sent a "gauges" key.
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert "gauges" not in reg.snapshot()
        reg.gauge("g").set(1)
        assert reg.snapshot()["gauges"] == {"g": 1.0}

    def test_rows_include_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("live_nodes").set(5)
        rows = MetricsRegistry.rows(reg.snapshot())
        assert {"metric": "live_nodes", "value": 5.0} in rows


class TestHistogramMerge:
    def test_merged_buckets_equal_combined_stream(self):
        """The mergeability contract: merging snapshots equals observing
        the union stream into one histogram, exactly."""
        values_a = [0.0001, 0.003, 0.02, 1.0]
        values_b = [0.0005, 0.003, 5.0]
        a, b, union = MetricsRegistry(), MetricsRegistry(), Histogram("lat")
        for v in values_a:
            a.histogram("lat").observe(v)
        for v in values_b:
            b.histogram("lat").observe(v)
        for v in values_a + values_b:
            union.observe(v)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        lat = merged["histograms"]["lat"]
        want = union.snapshot()
        assert lat["buckets"] == want["buckets"]
        assert lat["count"] == want["count"]
        assert lat["sum"] == pytest.approx(want["sum"])
        assert lat["p50"] == want["p50"]
        assert lat["p99"] == want["p99"]

    def test_merge_carries_cross_node_caveat(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(0.1)
        merged = MetricsRegistry.merge([reg.snapshot()])
        assert "per-node tails" in merged["histograms"]["lat"]["caveat"]

    def test_merge_skips_legacy_snapshots_without_buckets(self):
        legacy = {"counters": {}, "histograms": {
            "lat": {"count": 3, "sum": 0.3, "mean": 0.1,
                    "p50": 0.1, "p95": 0.1, "p99": 0.1}}}
        merged = MetricsRegistry.merge([legacy])
        assert merged["histograms"] == {}

    def test_merge_rejects_mixed_grids(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", base=1e-4).observe(0.1)
        b.histogram("lat", base=1e-3).observe(0.1)
        with pytest.raises(ValueError, match="grids"):
            MetricsRegistry.merge([a.snapshot(), b.snapshot()])

    def test_merge_sums_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("strips").set(4)
        b.gauge("strips").set(6)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["gauges"] == {"strips": 10.0}


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        old = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
            default_registry().counter("hits").inc()
            assert fresh.get("hits") == 1
        finally:
            set_default_registry(old)
        assert default_registry() is old


class TestPrometheus:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("requests_get").inc(7)
        reg.gauge("disk_failed").set(0)
        h = reg.histogram("request_seconds", base=1e-3)
        for v in (0.0005, 0.002, 0.002, 0.1):
            h.observe(v)
        return reg.snapshot()

    def test_counter_rendering(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_requests_get_total counter" in text
        assert "repro_requests_get_total 7" in text

    def test_gauge_rendering(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_disk_failed gauge" in text
        assert "repro_disk_failed 0" in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_request_seconds histogram" in text
        # base=1e-3: 0.0005 lands in bucket 0 (le=0.001); the two 0.002s
        # land in bucket 2 (le=0.004 -- exact powers of the grid go one
        # bucket up); buckets are cumulative.
        assert 'repro_request_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_request_seconds_bucket{le="0.004"} 3' in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_request_seconds_count 4" in text
        assert "repro_request_seconds_sum 0.1045" in text

    def test_labels_attach_to_every_sample(self):
        text = to_prometheus(self._snapshot(), labels={"column": "3"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'column="3"' in line

    def test_metric_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with/stuff").inc()
        text = to_prometheus(reg.snapshot())
        assert "repro_weird_name_with_stuff_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestQuantilesFromBuckets:
    """The interpolated estimator behind the workload driver's
    p50/p90/p99 report, checked against exact percentiles."""

    @staticmethod
    def exact_percentile(values, q):
        """Nearest-rank percentile: value at rank ceil(q * n)."""
        import math

        ordered = sorted(values)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def test_estimates_track_exact_percentiles_within_bucket_width(self):
        import random

        rng = random.Random(42)
        values = [rng.uniform(0.0001, 0.5) for _ in range(2000)]
        h = Histogram("lat", base=1e-4)
        for v in values:
            h.observe(v)
        for q in (0.5, 0.9, 0.99):
            (est,) = h.quantiles([q])
            exact = self.exact_percentile(values, q)
            # The estimate lives inside the exact value's log2 bucket:
            # off by at most one bucket width (a factor of two).
            assert exact / 2 <= est <= exact * 2, (q, est, exact)

    def test_interpolation_beats_upper_edge_inside_a_bucket(self):
        # 100 observations spread uniformly across one bucket
        # (0.8, 1.6]: the upper-edge quantile answers 1.6 for every q,
        # the interpolated estimate moves through the bucket.
        h = Histogram("lat", base=0.1)
        for i in range(100):
            h.observe(0.8 + (i + 0.5) * 0.008)
        assert h.quantile(0.5) == pytest.approx(1.6)
        p25, p50, p75 = h.quantiles([0.25, 0.5, 0.75])
        assert 0.9 < p25 < 1.1
        assert 1.15 < p50 < 1.25
        assert 1.35 < p75 < 1.45

    def test_monotone_in_q(self):
        h = Histogram("lat", base=1e-4)
        for v in (0.0001, 0.002, 0.002, 0.03, 0.4, 0.4, 5.0):
            h.observe(v)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        est = h.quantiles(qs)
        assert est == sorted(est)

    def test_empty_histogram_estimates_zero(self):
        assert Histogram("lat").quantiles([0.5, 0.99]) == [0.0, 0.0]
        assert quantiles_from_buckets(1e-4, [], [0.5]) == [0.0]

    def test_all_mass_in_bucket_zero_interpolates_from_zero(self):
        # Bucket 0 spans [0, base]: with 4 observations there, the
        # median interpolates to base / 2, not the upper edge.
        p50, p100 = quantiles_from_buckets(0.001, [4], [0.5, 1.0])
        assert p50 == pytest.approx(0.0005)
        assert p100 == pytest.approx(0.001)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            quantiles_from_buckets(1e-4, [1], [1.5])
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantiles([-0.1])

    def test_matches_histogram_delegation(self):
        h = Histogram("lat", base=1e-3)
        for v in (0.0005, 0.002, 0.002, 0.1):
            h.observe(v)
        assert h.quantiles([0.5, 0.9]) == quantiles_from_buckets(
            1e-3, h.counts, [0.5, 0.9]
        )
