"""Engine profiling spans: XOR accounting, cache outcomes, rates --
and the acceptance check that traced XOR counts equal audited ones."""

import pytest

from repro.analysis.static.audit import analyze_geometry
from repro.codes import make_code
from repro.obs.profile import finalize_rates, schedule_span
from repro.obs.tracing import Span, Tracer, use_tracer


class TestFinalizeRates:
    def _span(self, duration, **attrs):
        s = Span(name="x", span_id=0, parent_id=None, start=0.0,
                 duration=duration, attrs=attrs)
        finalize_rates(s)
        return s

    def test_rates_from_duration(self):
        s = self._span(0.5, xors=1_000_000, bytes=10**9)
        assert s.attrs["mxors_per_s"] == pytest.approx(2.0)
        assert s.attrs["gbps"] == pytest.approx(2.0)

    def test_no_rates_without_elapsed_time(self):
        # Logical clocks / frozen virtual time: duration 0 or None.
        for d in (0.0, None):
            s = self._span(d, xors=100, bytes=100)
            assert "mxors_per_s" not in s.attrs
            assert "gbps" not in s.attrs

    def test_no_rates_without_work_attrs(self):
        s = self._span(0.5)
        assert set(s.attrs) == set()


class TestScheduleSpan:
    def test_span_attrs_and_cache(self):
        t = Tracer()
        with schedule_span(t, "code.encode", code="lib", xors=220, ops=242,
                           nbytes=4096, cache="miss", k=11):
            pass
        (s,) = t.spans
        assert s.name == "code.encode"
        assert s.attrs["xors"] == 220
        assert s.attrs["ops"] == 242
        assert s.attrs["bytes"] == 4096
        assert s.attrs["cache"] == "miss"
        assert s.attrs["k"] == 11

    def test_cache_omitted_when_none(self):
        t = Tracer()
        with schedule_span(t, "engine.compile", code="lib", xors=1, ops=1,
                           nbytes=8):
            pass
        assert "cache" not in t.spans[0].attrs


class TestEngineIntegration:
    def test_encode_cache_miss_then_hits(self):
        code = make_code("liberation-optimal", 4, p=5, element_size=64)
        buf = code.alloc_stripe()
        t = Tracer()
        with use_tracer(t):
            for _ in range(3):
                code.encode(buf)
        encodes = t.find("code.encode")
        assert [s.attrs["cache"] for s in encodes] == ["miss", "hit", "hit"]
        # The miss's compile shows up as a child span with the same op
        # accounting the analyzer audits.
        (compile_span,) = t.find("engine.compile")
        assert compile_span.parent_id == encodes[0].span_id
        assert compile_span.attrs["xors"] == encodes[0].attrs["xors"]

    def test_decode_plan_cache_policy_is_visible(self):
        # The optimal code caches decode plans; the Jerasure-like
        # baseline rebuilds per call *by design* -- the spans show it.
        t = Tracer()
        with use_tracer(t):
            for name, want in (("liberation-optimal", ["miss", "hit"]),
                               ("liberation-original", ["miss", "miss"])):
                code = make_code(name, 4, p=5, element_size=64)
                buf = code.alloc_stripe()
                code.encode(buf)
                for _ in range(2):
                    work = buf.copy()
                    work[0] = 0
                    work[1] = 0
                    code.decode(work, (0, 1))
                got = [s.attrs["cache"] for s in t.find("code.decode")
                       if s.attrs["code"] == name]
                assert got == want, name

    def test_traced_encode_xors_match_the_audited_count(self):
        """Acceptance: the liberation-optimal encode span at p=11
        reports exactly the XOR count `repro analyze` proves optimal."""
        p = 11
        audited = analyze_geometry("liberation-optimal", p, p, patterns=[])
        code = make_code("liberation-optimal", p, p=p, element_size=64)
        buf = code.alloc_stripe()
        t = Tracer()
        with use_tracer(t):
            code.encode(buf)
        (span,) = t.find("code.encode")
        assert span.attrs["xors"] == audited["encode"]["n_xors"]
        # And the audited count meets the paper's bound: 2w(k-1) XORs.
        assert span.attrs["xors"] == 2 * p * (p - 1)

    def test_kernel_span_xor_work_matches_the_audited_count(self):
        """Satellite acceptance: the kernel data plane's traced XOR
        work at p=11 equals the optimality auditor's count -- on the
        encode span *and* on a decode span, for both the schedule-level
        ``xors`` attribute and the lowering's ``kernel_cell_xors``
        (conservation made observable end to end)."""
        p = 11
        pattern = (0, p // 2)
        audited = analyze_geometry(
            "liberation-optimal", p, p, patterns=[pattern]
        )
        code = make_code("liberation-optimal", p, p=p, element_size=64)
        assert code.execution == "kernel"  # the default data plane
        buf = code.alloc_stripe()
        t = Tracer()
        with use_tracer(t):
            code.encode(buf)
            work = buf.copy()
            for c in pattern:
                work[c] = 0
            code.decode(work, pattern)
        (enc,) = t.find("code.encode")
        assert enc.attrs["xors"] == audited["encode"]["n_xors"]
        assert enc.attrs["kernel_cell_xors"] == audited["encode"]["n_xors"]
        (dec,) = t.find("code.decode")
        audited_dec = audited["decode"][0]["n_xors"]
        assert dec.attrs["xors"] == audited_dec
        assert dec.attrs["kernel_cell_xors"] == audited_dec

    def test_kernel_spans_carry_the_lowering_shape(self):
        code = make_code("liberation-optimal", 4, p=5, element_size=64)
        buf = code.alloc_stripe()
        t = Tracer()
        with use_tracer(t):
            code.encode(buf)
        (span,) = t.find("code.encode")
        plan = code._encode_plan
        assert span.attrs["kernel_levels"] == plan.n_levels
        assert span.attrs["kernel_bulk_calls"] == plan.n_calls
        assert span.attrs["kernel_ops"] == len(plan.ops)
        assert span.attrs["kernel_max_width"] == plan.max_width
        # Streaming execution has no kernel plan, hence no kernel attrs.
        scode = make_code("liberation-optimal", 4, p=5, element_size=64,
                          execution="streaming")
        t2 = Tracer()
        with use_tracer(t2):
            scode.encode(scode.alloc_stripe())
        assert not any(a.startswith("kernel_")
                       for a in t2.find("code.encode")[0].attrs)

    def test_decode_hit_spans_report_stats_without_rebuild(self):
        code = make_code("liberation-optimal", 4, p=5, element_size=64)
        buf = code.alloc_stripe()
        code.encode(buf)
        # Warm the plan cache with tracing disabled, then trace a hit.
        work = buf.copy()
        work[2] = 0
        code.decode(work, (2,))
        t = Tracer()
        with use_tracer(t):
            work = buf.copy()
            work[2] = 0
            code.decode(work, (2,))
        (span,) = t.find("code.decode")
        assert span.attrs["cache"] == "hit"
        assert span.attrs["xors"] == code.decoding_xors((2,))
