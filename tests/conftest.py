"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

#: (p, k) pairs that are small enough for exhaustive pattern testing.
SMALL_PK = [
    (3, 2),
    (3, 3),
    (5, 2),
    (5, 3),
    (5, 4),
    (5, 5),
    (7, 4),
    (7, 7),
    (11, 6),
    (11, 11),
    (13, 9),
]

#: Every erasure pattern of size 0..2 for a (k+2)-column stripe.
def erasure_patterns(k: int) -> list[tuple[int, ...]]:
    cols = range(k + 2)
    return (
        [()]
        + [(c,) for c in cols]
        + list(itertools.combinations(cols, 2))
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0DE)


@pytest.fixture
def random_bits(rng):
    """Factory: random 0/1 arrays."""

    def make(*shape: int) -> np.ndarray:
        return rng.integers(0, 2, shape).astype(np.uint8)

    return make


@pytest.fixture
def random_words(rng):
    """Factory: random uint64 arrays."""

    def make(shape) -> np.ndarray:
        return rng.integers(0, 2**64, shape, dtype=np.uint64)

    return make
