"""Tests for the file-level CLI tool."""

import json
import pathlib

import pytest

from repro.cli import main, MANIFEST_SUFFIX


@pytest.fixture
def payload_file(tmp_path):
    path = tmp_path / "data.bin"
    # Deliberately NOT a multiple of the stripe size (exercises padding).
    path.write_bytes(bytes(range(256)) * 700 + b"tail")
    return path


def encode(payload_file, tmp_path, **over):
    argv = ["encode", str(payload_file), "--k", "4", "--element-size", "64",
            "--out-dir", str(tmp_path / "shards")]
    for key, val in over.items():
        argv += [f"--{key}", str(val)]
    assert main(argv) == 0
    return tmp_path / "shards" / (payload_file.name + MANIFEST_SUFFIX)


class TestEncode:
    def test_produces_pieces_and_manifest(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        meta = json.loads(manifest.read_text())
        assert meta["k"] == 4 and meta["code"] == "liberation-optimal"
        shards = manifest.parent
        for j in range(4):
            assert (shards / f"data.bin.d{j}").exists()
        assert (shards / "data.bin.p").exists()
        assert (shards / "data.bin.q").exists()

    def test_piece_sizes_uniform(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        meta = json.loads(manifest.read_text())
        sizes = {
            (manifest.parent / name).stat().st_size for name in meta["pieces"]
        }
        assert len(sizes) == 1  # all strips equal length


class TestDecode:
    def test_round_trip_no_loss(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        out = tmp_path / "restored.bin"
        assert main(["decode", str(manifest), "-o", str(out)]) == 0
        assert out.read_bytes() == payload_file.read_bytes()

    @pytest.mark.parametrize("victims", [("d1",), ("d0", "d3"), ("d2", "q"), ("p", "q")])
    def test_recover_with_losses(self, payload_file, tmp_path, victims):
        manifest = encode(payload_file, tmp_path)
        for v in victims:
            (manifest.parent / f"data.bin.{v}").unlink()
        out = tmp_path / "restored.bin"
        assert main(["decode", str(manifest), "-o", str(out)]) == 0
        assert out.read_bytes() == payload_file.read_bytes()

    def test_three_losses_rejected(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        for v in ("d0", "d1", "p"):
            (manifest.parent / f"data.bin.{v}").unlink()
        assert main(["decode", str(manifest), "-o", str(tmp_path / "x")]) == 1

    def test_corrupt_piece_treated_as_erasure(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        victim = manifest.parent / "data.bin.d2"
        blob = bytearray(victim.read_bytes())
        blob[5] ^= 0xFF
        victim.write_bytes(bytes(blob))
        out = tmp_path / "restored.bin"
        assert main(["decode", str(manifest), "-o", str(out)]) == 0
        assert out.read_bytes() == payload_file.read_bytes()

    def test_repair_rewrites_pieces(self, payload_file, tmp_path):
        manifest = encode(payload_file, tmp_path)
        victim = manifest.parent / "data.bin.d1"
        original = victim.read_bytes()
        victim.unlink()
        out = tmp_path / "restored.bin"
        assert main(["decode", str(manifest), "-o", str(out), "--repair"]) == 0
        assert victim.read_bytes() == original

    def test_other_codes(self, payload_file, tmp_path):
        for code in ("evenodd", "rdp", "reed-solomon"):
            manifest = encode(payload_file, tmp_path / code, code=code)
            (manifest.parent / "data.bin.d0").unlink()
            out = tmp_path / f"restored-{code}.bin"
            assert main(["decode", str(manifest), "-o", str(out)]) == 0
            assert out.read_bytes() == payload_file.read_bytes()


class TestVerify:
    def test_clean(self, payload_file, tmp_path, capsys):
        manifest = encode(payload_file, tmp_path)
        assert main(["verify", str(manifest)]) == 0
        assert "all pieces present" in capsys.readouterr().out

    def test_recoverable_damage(self, payload_file, tmp_path, capsys):
        manifest = encode(payload_file, tmp_path)
        (manifest.parent / "data.bin.d0").unlink()
        assert main(["verify", str(manifest)]) == 0
        assert "recoverable" in capsys.readouterr().out

    def test_unrecoverable_damage(self, payload_file, tmp_path, capsys):
        manifest = encode(payload_file, tmp_path)
        for v in ("d0", "d1", "d2"):
            (manifest.parent / f"data.bin.{v}").unlink()
        assert main(["verify", str(manifest)]) == 1
        assert "NOT recoverable" in capsys.readouterr().out


class TestInfo:
    def test_prints_table(self, capsys):
        assert main(["info", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "liberation-optimal" in out and "lower-bound" in out


class TestAnalyze:
    def test_clean_run_exits_zero(self, capsys):
        rc = main(["analyze", "--families", "liberation-optimal",
                   "--p", "5", "--k", "2,4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "analysis clean" in out and "liberation-optimal" in out

    def test_json_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main(["analyze", "--families", "evenodd", "--p", "5", "--k", "3",
                   "--json", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["ok"] and payload["n_geometries"] == 1
        assert payload["ast_lint"] == []
        enc = payload["results"][0]["encode"]
        assert enc["proof"]["ok"] and not enc["optimal"]

    def test_bad_prime_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--p", "five"])

    def test_concurrency_only_mode(self, capsys):
        rc = main(["analyze", "--concurrency"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "concurrency passes:" in out
        assert "static analysis" not in out  # proofs skipped

    def test_json_to_stdout(self, capsys):
        rc = main(["analyze", "--concurrency", "--json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        start = out.index("{")
        end = out.rindex("}") + 1
        payload = json.loads(out[start:end])
        assert payload["ok"] is True
        assert payload["exit_code"] == 0
        assert set(payload["concurrency"]["per_pass"]) == {
            "async", "locks", "views", "protocol"
        }

    def test_full_run_includes_concurrency(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main(["analyze", "--families", "evenodd", "--p", "5", "--k", "3",
                   "--json", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["ok"] and payload["concurrency"]["ok"]
        assert payload["n_geometries"] == 1  # prover fields still present

    def test_findings_exit_one(self, monkeypatch, capsys):
        # Seed one finding through the baseline checker: a stale entry
        # is itself a finding, so point the analyzer at a ghost baseline.
        import repro.analysis.concurrency as conc

        real = conc.run_concurrency_analysis

        def with_ghost_baseline(root=None, **kw):
            from repro.analysis.concurrency.findings import Finding
            report = real(root, **kw)
            report.findings.append(
                Finding("BASE001", "ghost.py", 0, "x", "stale entry")
            )
            return report

        monkeypatch.setattr(
            "repro.analysis.concurrency.run_concurrency_analysis",
            with_ghost_baseline,
        )
        rc = main(["analyze", "--concurrency"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "analysis FAILED" in out and "BASE001" in out

    def test_tool_error_exit_two(self, monkeypatch, capsys):
        def broken(root=None, **kw):
            raise ValueError("malformed baseline entry")

        monkeypatch.setattr(
            "repro.analysis.concurrency.run_concurrency_analysis", broken
        )
        rc = main(["analyze", "--concurrency"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "analyze ERROR" in err


@pytest.mark.slow
class TestServeAndStats:
    """Real sockets + a background thread: slow-marked like test_node."""

    def serve_in_thread(self, tmp_path, *extra):
        """Start `serve` on an ephemeral port; returns (thread, port)."""
        import threading
        import time

        port_file = tmp_path / "port"
        argv = ["serve", "--column", "1", "--stripes", "4", "--k", "3", "--p", "5",
                "--element-size", "64", "--port", "0", "--port-file", str(port_file),
                *extra]
        thread = threading.Thread(target=main, args=(argv,), daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not port_file.exists():
            assert time.time() < deadline, "serve never bound its port"
            assert thread.is_alive(), "serve exited before binding"
            time.sleep(0.01)
        return thread, int(port_file.read_text())

    def test_serve_then_stats_then_shutdown(self, tmp_path, capsys):
        thread, port = self.serve_in_thread(tmp_path)
        assert main(["stats", f"127.0.0.1:{port}"]) == 0
        out = capsys.readouterr().out
        assert f"node 127.0.0.1:{port}" in out
        assert "requests_stats" in out and "disk_n_strips" in out
        # Second call with --shutdown terminates the server cleanly.
        assert main(["stats", f"127.0.0.1:{port}", "--shutdown"]) == 0
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert "shutdown acknowledged" in capsys.readouterr().out

    def test_stats_counts_real_traffic(self, tmp_path, capsys):
        import asyncio

        import numpy as np

        from repro.cluster import NodeClient, RetryPolicy

        thread, port = self.serve_in_thread(tmp_path)
        strip = np.zeros(40, dtype=np.uint64).tobytes()  # 5 rows x 8 words

        async def traffic():
            client = NodeClient(("127.0.0.1", port),
                                policy=RetryPolicy(attempts=2, timeout=1.0))
            await client.request("put", {"stripe": 2}, strip)
            _, payload = await client.request("get", {"stripe": 2})
            return payload

        assert asyncio.run(traffic()) == strip
        assert main(["stats", f"127.0.0.1:{port}", "--shutdown"]) == 0
        thread.join(timeout=5)
        out = capsys.readouterr().out
        assert "requests_put" in out and "requests_get" in out

    def test_stats_unreachable_node_fails(self, capsys):
        # A port from the ephemeral range with (almost surely) no listener;
        # connection refused is immediate on loopback.
        assert main(["stats", "127.0.0.1:1", "--timeout", "1"]) == 1
        assert "unreachable" in capsys.readouterr().out


@pytest.mark.slow
class TestClusterMembershipCli:
    """``repro cluster status/join/drain`` against a live node: the
    node is just a durable table store, so one server exercises the
    whole verb surface including the bad-request path."""

    def serve_in_thread(self, tmp_path):
        import threading
        import time

        port_file = tmp_path / "port"
        argv = ["serve", "--column", "0", "--stripes", "4", "--k", "3",
                "--p", "5", "--element-size", "64", "--port", "0",
                "--port-file", str(port_file)]
        thread = threading.Thread(target=main, args=(argv,), daemon=True)
        thread.start()
        deadline = time.time() + 10
        while not port_file.exists():
            assert time.time() < deadline, "serve never bound its port"
            assert thread.is_alive(), "serve exited before binding"
            time.sleep(0.01)
        return thread, int(port_file.read_text())

    def test_status_join_drain_round_trip(self, tmp_path, capsys):
        thread, port = self.serve_in_thread(tmp_path)
        addr = f"127.0.0.1:{port}"

        assert main(["cluster", "status", addr]) == 0
        assert "epoch 0: no nodes recorded" in capsys.readouterr().out

        assert main(["cluster", "join", addr, "n7", "127.0.0.1:9999",
                     "--live"]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out and "n7" in out and "live" in out

        assert main(["cluster", "drain", addr, "n7"]) == 0
        out = capsys.readouterr().out
        assert "epoch 2" in out and "draining" in out

        # Illegal mutation: validated table, typed error, exit 1.
        assert main(["cluster", "drain", addr, "ghost"]) == 1
        assert "unknown node" in capsys.readouterr().out

        # The table survived the failed mutation.
        assert main(["cluster", "status", addr]) == 0
        assert "epoch 2" in capsys.readouterr().out

        assert main(["stats", addr, "--shutdown"]) == 0
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestRoundTripProperty:
    def test_random_sizes_and_losses(self, tmp_path):
        """Fuzz: arbitrary file sizes (incl. empty-ish and unaligned),
        arbitrary recoverable loss patterns."""
        import itertools
        import random

        rnd = random.Random(0xBEEF)
        for trial in range(6):
            size = rnd.choice([1, 63, 64, 4096, 10_001, 99_999])
            k = rnd.choice([2, 3, 5, 8])
            src = tmp_path / f"t{trial}.bin"
            src.write_bytes(rnd.randbytes(size))
            shard_dir = tmp_path / f"s{trial}"
            assert main([
                "encode", str(src), "--k", str(k),
                "--element-size", "64", "--out-dir", str(shard_dir),
            ]) == 0
            manifest = shard_dir / (src.name + MANIFEST_SUFFIX)
            pieces = [f"d{j}" for j in range(k)] + ["p", "q"]
            victims = rnd.sample(pieces, rnd.randint(0, 2))
            for v in victims:
                (shard_dir / f"{src.name}.{v}").unlink()
            out = tmp_path / f"o{trial}.bin"
            assert main(["decode", str(manifest), "-o", str(out)]) == 0
            assert out.read_bytes() == src.read_bytes(), (trial, size, k, victims)


class TestTrace:
    """`repro trace`: Chrome trace_event JSON with audited XOR counts."""

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["trace", "--k", "11", "--p", "11", "--element-size", "64",
                   "--erasures", "0,1", "--out", str(out),
                   "--jsonl", str(jsonl)])
        assert rc == 0
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events, "trace must contain complete events"
        # Acceptance: the liberation-optimal encode span reports exactly
        # the audited XOR count (2w(k-1) = 220 at p = k = 11).
        encodes = [e for e in events
                   if e["name"] == "code.encode"
                   and e["args"].get("code") == "liberation-optimal"]
        assert encodes and all(e["args"]["xors"] == 220 for e in encodes)
        # Both families appear, so the comparison is in one timeline.
        assert {e["args"].get("code") for e in events if "code" in e["args"]} \
            == {"liberation-optimal", "liberation-original"}
        assert len(jsonl.read_text().strip().split("\n")) == len(events)
        assert "trace digest:" in capsys.readouterr().out

    def test_trace_leaves_no_tracer_behind(self, tmp_path):
        from repro.obs.tracing import active_tracer

        assert main(["trace", "--k", "4", "--p", "5", "--element-size", "64",
                     "--out", str(tmp_path / "t.json")]) == 0
        assert active_tracer() is None


class TestGatewayBench:
    def test_sim_mode_prints_table_and_digest(self, capsys):
        assert main(["gateway", "bench", "--mode", "sim",
                     "--seed", "5", "--ops", "60"]) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "60 ok" in out

    def test_sim_json_digest_is_stable_across_invocations(self, capsys):
        argv = ["gateway", "bench", "--mode", "sim", "--seed", "9",
                "--ops", "50", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["digest"] == second["digest"]
        assert first["ok"] == 50 and first["mode"] == "sim"

    def test_perf_flag_merges_into_bench_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["gateway", "bench", "--mode", "sim", "--ops", "40",
                     "--perf"]) == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "BENCH_perf.json").read_text())
        assert "gateway_ops/sim/cli" in data["metrics"]

    def test_fuzz_objects_flag_is_wired(self, capsys):
        assert main(["sim", "fuzz", "--cases", "2", "--objects"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fuzz_membership_flag_is_wired(self, capsys):
        assert main(["sim", "fuzz", "--cases", "8", "--membership"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sim_run_membership_reports_node_count(self, capsys):
        assert main(["sim", "run", "--seed", "5", "--membership"]) == 0
        out = capsys.readouterr().out
        assert "nodes=" in out and "digest" in out
