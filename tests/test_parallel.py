"""Tests for batch / multi-threaded stripe coding."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.parallel import BatchCoder, alloc_batch, alloc_word_batch, iter_batches


class TestIterBatches:
    def test_covers_range_without_overlap(self):
        bounds = list(iter_batches(10, 3))
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_window(self):
        assert list(iter_batches(4, 100)) == [(0, 4)]

    def test_empty(self):
        assert list(iter_batches(0, 8)) == []

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            list(iter_batches(5, 0))


@pytest.fixture
def code():
    return make_code("liberation-optimal", 4, p=5, element_size=64)


def filled_batch(code, n, rng):
    batch = alloc_batch(code, n)
    batch[:, : code.k] = rng.integers(
        0, 2**64, batch[:, : code.k].shape, dtype=np.uint64
    )
    return batch


class TestAllocBatch:
    def test_shape(self, code):
        batch = alloc_batch(code, 5)
        assert batch.shape == (5, code.total_cols, 5, 8)

    def test_positive_count(self, code):
        with pytest.raises(ValueError):
            alloc_batch(code, 0)


class TestEncode:
    def test_matches_per_stripe_encode(self, code, rng):
        batch = filled_batch(code, 7, rng)
        expect = batch.copy()
        for i in range(7):
            code.encode(expect[i])
        BatchCoder(code).encode(batch)
        assert np.array_equal(batch, expect)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_threaded_identical_to_serial(self, code, rng, workers):
        batch = filled_batch(code, 23, rng)
        serial = batch.copy()
        BatchCoder(code, workers=1).encode(serial)
        BatchCoder(code, workers=workers).encode(batch)
        assert np.array_equal(batch, serial)

    def test_single_stripe_batch(self, code, rng):
        batch = filled_batch(code, 1, rng)
        BatchCoder(code, workers=4).encode(batch)
        assert code.verify(batch[0])

    def test_bad_shape_rejected(self, code, rng):
        with pytest.raises(ValueError):
            BatchCoder(code).encode(np.zeros((2, 3, 4), dtype=np.uint64))

    def test_workers_validated(self, code):
        with pytest.raises(ValueError):
            BatchCoder(code, workers=0)


class TestDecode:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_bulk_reconstruction(self, code, rng, workers):
        batch = filled_batch(code, 11, rng)
        BatchCoder(code).encode(batch)
        ref = batch.copy()
        batch[:, 1] = rng.integers(0, 2**64, batch[:, 1].shape, dtype=np.uint64)
        batch[:, 3] = rng.integers(0, 2**64, batch[:, 3].shape, dtype=np.uint64)
        BatchCoder(code, workers=workers).decode(batch, [1, 3])
        assert np.array_equal(batch, ref)

    def test_other_code_families(self, rng):
        for name in ("evenodd", "rdp", "reed-solomon", "cauchy-rs"):
            kw = {"rows": 4} if name == "reed-solomon" else {}
            c = make_code(name, 4, element_size=64, **kw)
            batch = alloc_batch(c, 6)
            batch[:, :4] = rng.integers(0, 2**64, batch[:, :4].shape, dtype=np.uint64)
            coder = BatchCoder(c, workers=2)
            coder.encode(batch)
            ref = batch.copy()
            batch[:, 0] = 0
            batch[:, 5] = 0
            coder.decode(batch, [0, 5])
            assert np.array_equal(batch[:, :6], ref[:, :6]), name

    def test_worker_exception_propagates(self, code, rng):
        batch = filled_batch(code, 4, rng)
        BatchCoder(code).encode(batch)
        with pytest.raises(ValueError):
            BatchCoder(code, workers=2).decode(batch, [0, 1, 2])  # 3 erasures

    def test_empty_erasure_list_is_a_no_op(self, code, rng):
        batch = filled_batch(code, 3, rng)
        BatchCoder(code).encode(batch)
        ref = batch.copy()
        BatchCoder(code).decode(batch, [])
        assert np.array_equal(batch, ref)


class TestKernelWidePath:
    """The zero-copy wide path: one bound plan over the whole batch."""

    def test_wide_path_matches_fused_per_stripe(self, rng):
        kcode = make_code("liberation-optimal", 4, p=5, element_size=64)
        fcode = make_code(
            "liberation-optimal", 4, p=5, element_size=64, execution="fused"
        )
        assert kcode.execution == "kernel"
        batch = filled_batch(kcode, 9, rng)
        expect = batch.copy()
        for i in range(9):
            fcode.encode(expect[i])
        BatchCoder(kcode).encode(batch)
        assert np.array_equal(batch, expect)
        ref = batch.copy()
        batch[:, 0] = 0
        batch[:, 2] = 0
        BatchCoder(kcode, workers=3).decode(batch, [0, 2])
        assert np.array_equal(batch, ref)

    def test_wide_path_only_engages_for_kernel_execution(self, rng):
        kcode = make_code("liberation-optimal", 4, p=5, element_size=64)
        scode = make_code(
            "liberation-optimal", 4, p=5, element_size=64, execution="streaming"
        )
        assert BatchCoder(kcode)._wide_plan(None) is not None
        assert BatchCoder(scode)._wide_plan(None) is None
        # Streaming still encodes correctly through the per-stripe loop.
        batch = filled_batch(scode, 3, rng)
        BatchCoder(scode).encode(batch)
        assert all(scode.verify(batch[i]) for i in range(3))

    def test_view_cache_reuses_the_bound_view(self, code, rng):
        coder = BatchCoder(code)
        batch = filled_batch(code, 5, rng)
        v1 = coder._wide_view(batch, 0, 5)
        v2 = coder._wide_view(batch, 0, 5)
        assert v1 is v2  # same object => the plan's bound program hits
        assert v1.base is batch  # and it is a view, not a copy

    def test_view_cache_is_bounded_and_identity_checked(self, code, rng):
        coder = BatchCoder(code)
        for _ in range(7):
            coder._wide_view(filled_batch(code, 2, rng), 0, 2)
        assert len(coder._views) <= 4
        # A new batch recycled onto a cached id must not serve the old
        # view: the cache stores (batch, view) and checks identity.
        batch = filled_batch(code, 2, rng)
        view = coder._wide_view(batch, 0, 2)
        assert coder._wide_view(batch, 0, 2) is view


class TestWordPackedBatch:
    def test_alloc_word_batch_shape(self, code):
        buf = alloc_word_batch(code, 3)
        assert buf.shape == (code.total_cols, code.rows, 3 * 8)
        with pytest.raises(ValueError):
            alloc_word_batch(code, 0)

    def test_one_plan_call_codes_every_packed_stripe(self, code, rng):
        buf = alloc_word_batch(code, 4)
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code._encode_plan = code._compile(code.encode_schedule())
        code._encode_plan.run(buf)
        for i in range(4):
            assert code.verify(np.ascontiguousarray(buf[:, :, i * 8 : (i + 1) * 8]))
