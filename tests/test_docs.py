"""Documentation consistency checks.

Docs drift is a bug like any other: these tests pin the human-facing
files to the code they describe.
"""

import pathlib

import pytest

from repro.codes import available_codes

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_exists_with_key_sections(self):
        text = read("README.md")
        for needle in ("Install", "Quickstart", "Architecture", "IPDPS 2020"):
            assert needle in text

    def test_mentions_every_example(self):
        text = read("README.md")
        # At least the headline examples are listed by path.
        for example in ("quickstart", "raid6_array_recovery", "scrub_silent_corruption"):
            assert example in text

    def test_quickstart_snippet_is_valid(self):
        """The README's core snippet must actually run."""
        import numpy as np

        from repro import LiberationOptimal

        code = LiberationOptimal(k=6)
        stripe = code.alloc_stripe()
        stripe[:6] = np.random.default_rng(0).integers(
            0, 2**64, stripe[:6].shape, dtype=np.uint64
        )
        code.encode(stripe)
        ref = stripe.copy()
        stripe[1] = 0
        stripe[4] = 0
        code.decode(stripe, erasures=[1, 4])
        assert np.array_equal(stripe[: code.n_cols], ref[: code.n_cols])
        assert code.encoding_xors() == 2 * code.p * (code.k - 1)


class TestUsageGuide:
    def test_lists_every_registered_code(self):
        text = read("docs/usage.md")
        for name in available_codes():
            assert name in text, name

    def test_interface_table_matches_api(self):
        from repro.codes.base import RAID6Code

        text = read("docs/usage.md")
        for method in ("alloc_stripe", "encode", "decode", "update", "verify", "with_k"):
            assert method in text
            assert hasattr(RAID6Code, method)


class TestDesignAndExperiments:
    def test_design_inventory_modules_exist(self):
        """Every `repro.x.y` module named in DESIGN.md must import."""
        import importlib
        import re

        text = read("DESIGN.md")
        for ref in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", text))):
            try:
                importlib.import_module(ref)
            except ModuleNotFoundError:
                # A dotted class reference: the parent must import and
                # expose the final attribute.
                mod, _, attr = ref.rpartition(".")
                assert hasattr(importlib.import_module(mod), attr), ref

    def test_experiments_covers_every_figure(self):
        text = read("EXPERIMENTS.md")
        for fig in range(5, 14):
            assert f"Fig. {fig}" in text or f"Figs. {fig}" in text or f"–{fig}" in text

    def test_every_benchmark_file_referenced(self):
        design = read("DESIGN.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_fig*.py")):
            assert bench.name in design, bench.name

    def test_erratum_documented(self):
        assert "Erratum" in read("EXPERIMENTS.md")
        assert "erratum" in read("DESIGN.md").lower()


class TestAlgorithmsDoc:
    def test_key_claims_present(self):
        text = read("docs/algorithms.md")
        assert "2p(k-1)" in text.replace(" ", "") or "2p(k-1)" in text
        assert "common expression" in text.lower()
        assert "starting point" in text.lower()
