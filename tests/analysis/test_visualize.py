"""Tests for the constraint-grid renderer and schedule statistics."""

import pytest

from repro.analysis.visualize import (
    ScheduleStats,
    constraint_grid,
    erasure_grid,
    schedule_stats,
)
from repro.core import LiberationGeometry, decode_schedule, encode_schedule
from repro.engine.ops import Schedule


class TestConstraintGrid:
    def test_reproduces_paper_figure2(self):
        """Cell-for-cell against the paper's Fig. 2 (p = 5)."""
        grid = constraint_grid(LiberationGeometry(5, 5))
        rows = [line.split() for line in grid.strip().splitlines()[1:]]
        cells = [r[1:6] for r in rows]  # drop row index, P, Q columns
        assert cells == [
            ["1A", "1E", "1DE", "1C", "1B"],
            ["2B", "2A", "2E", "2D", "2CD"],
            ["3C", "3BC", "3A", "3E", "3D"],
            ["4D", "4C", "4B", "4AB", "4E"],
            ["5E", "5D", "5C", "5B", "5A"],
        ]

    def test_parity_columns_rendered(self):
        grid = constraint_grid(LiberationGeometry(5, 5))
        last_line = grid.strip().splitlines()[-1].split()
        assert last_line[-2:] == ["5", "E"]

    def test_k_less_than_p(self):
        grid = constraint_grid(LiberationGeometry(7, 3))
        rows = grid.strip().splitlines()[1:]
        assert len(rows) == 7
        assert all(len(r.split()) == 1 + 3 + 2 for r in rows)

    def test_large_p_rejected(self):
        with pytest.raises(ValueError):
            constraint_grid(LiberationGeometry(29, 4))


class TestErasureGrid:
    def test_erased_data_columns_crossed(self):
        grid = erasure_grid(LiberationGeometry(5, 5), [1, 3])
        for line in grid.strip().splitlines()[1:]:
            parts = line.split()
            assert set(parts[2]) == {"x"}
            assert set(parts[4]) == {"x"}
            assert "x" not in parts[1]

    def test_erased_parity_crossed(self):
        geo = LiberationGeometry(5, 5)
        grid = erasure_grid(geo, [geo.p_col, geo.q_col])
        for line in grid.strip().splitlines()[1:]:
            parts = line.split()
            assert parts[-1] == "x" and parts[-2] == "x"


class TestScheduleStats:
    def test_counts_match_schedule(self):
        sched = encode_schedule(5, 5)
        stats = schedule_stats(sched)
        assert stats.ops == len(sched)
        assert stats.xors == sched.n_xors == 40
        assert stats.copies == sched.n_copies
        assert stats.destinations == 10

    def test_encode_is_shallow_decode_is_deep(self):
        """Encoding is embarrassingly parallel; the decode chain's
        sequential retrieval makes it much deeper."""
        enc = schedule_stats(encode_schedule(11, 11))
        dec = schedule_stats(decode_schedule(11, 11, [2, 7]))
        assert dec.depth > 2 * enc.depth
        assert enc.parallelism > dec.parallelism

    def test_depth_of_pure_chain(self):
        s = Schedule(2, 4)
        s.copy_cell((1, 0), (0, 0))
        s.accumulate((1, 0), (0, 1))
        s.accumulate((1, 0), (0, 2))
        stats = schedule_stats(s)
        assert stats.depth == 3 and stats.width == 1

    def test_width_of_independent_ops(self):
        s = Schedule(2, 4)
        for i in range(4):
            s.copy_cell((1, i), (0, i))
        stats = schedule_stats(s)
        assert stats.depth == 1 and stats.width == 4

    def test_empty_schedule(self):
        stats = schedule_stats(Schedule(2, 2))
        assert stats == ScheduleStats(0, 0, 0, 0, 0, 0)
        assert stats.parallelism == 0.0
