"""Shared findings plumbing: suppressions, baseline, seam iteration."""

from pathlib import Path

import pytest

from repro.analysis.concurrency.findings import (
    Finding,
    apply_baseline,
    apply_suppressions,
    load_baseline,
    parse_suppressions,
    seam_match,
)


def F(code="ASY101", path="m.py", line=3, symbol="time.sleep", message="msg"):
    return Finding(code, path, line, symbol, message)


class TestSuppressions:
    def test_bare_marker_suppresses_all_codes(self):
        src = "x = 1\ny = 2  # conc: ok\nz = 3\n"
        marks = parse_suppressions(src)
        assert marks == {2: None}
        kept, dropped = apply_suppressions(
            [F(line=2), F(code="MVE301", line=2), F(line=3)], src
        )
        assert dropped == 2
        assert [f.line for f in kept] == [3]

    def test_coded_marker_suppresses_only_that_code(self):
        src = "a\nb  # conc: ok[ASY101] startup write\n"
        kept, dropped = apply_suppressions(
            [F(line=2), F(code="MVE301", line=2)], src
        )
        assert dropped == 1
        assert [f.code for f in kept] == ["MVE301"]

    def test_multi_code_marker(self):
        src = "a  # conc: ok[ASY101, MVE301] both intentional\n"
        kept, dropped = apply_suppressions(
            [F(line=1), F(code="MVE301", line=1), F(code="LCK200", line=1)], src
        )
        assert dropped == 2
        assert [f.code for f in kept] == ["LCK200"]

    def test_marker_on_other_line_does_not_leak(self):
        src = "a  # conc: ok\nb\n"
        kept, dropped = apply_suppressions([F(line=2)], src)
        assert dropped == 0 and len(kept) == 1


class TestBaseline:
    def test_roundtrip_and_stale_detection(self, tmp_path: Path):
        base = tmp_path / "baseline.txt"
        base.write_text(
            "# comment\n"
            "ASY101 m.py time.sleep  # legacy sleep, tracked in #42\n"
            "MVE301 gone.py view  # was fixed long ago\n"
        )
        entries = load_baseline(base)
        assert entries[("ASY101", "m.py", "time.sleep")].startswith("legacy")

        new, old = apply_baseline([F()], entries)
        assert [f.code for f in old] == ["ASY101"]
        # the unmatched entry surfaces as a BASE001 in the NEW list
        assert [f.code for f in new] == ["BASE001"]
        assert new[0].path == "gone.py"

    def test_baseline_is_line_number_independent(self, tmp_path: Path):
        base = tmp_path / "baseline.txt"
        base.write_text("ASY101 m.py time.sleep  # why\n")
        entries = load_baseline(base)
        new, old = apply_baseline([F(line=999)], entries)
        assert new == [] and len(old) == 1

    def test_malformed_baseline_raises(self, tmp_path: Path):
        base = tmp_path / "baseline.txt"
        base.write_text("ASY101 m.py  # missing the symbol column\n")
        with pytest.raises(ValueError, match="malformed baseline"):
            load_baseline(base)

    def test_entry_without_justification_raises(self, tmp_path: Path):
        base = tmp_path / "baseline.txt"
        base.write_text("ASY101 m.py time.sleep\n")
        with pytest.raises(ValueError, match="malformed baseline"):
            load_baseline(base)

    def test_missing_file_is_empty(self, tmp_path: Path):
        assert load_baseline(tmp_path / "nope.txt") == {}

    def test_checked_in_baseline_parses(self):
        # The real baseline must always be loadable -- a malformed line
        # would otherwise fail every analyze run at once.
        load_baseline()


class TestSeamMatch:
    def test_exact_boundary_only(self):
        assert seam_match("sim/clock.py", "sim")
        assert seam_match("sim.py", "sim")
        assert seam_match("sim", "sim")
        assert not seam_match("simulators/fake.py", "sim")
        assert not seam_match("sim_extras.py", "sim")

    def test_trailing_slash_normalised(self):
        assert seam_match("sim/clock.py", "sim/")
        assert not seam_match("simulators/x.py", "sim/")
