"""Protocol exhaustiveness: verb surface and crash-point sweep."""

from pathlib import Path

from repro.analysis.concurrency.protocol_model import (
    check_protocol,
    extract_caller_verbs,
    extract_crash_points,
    extract_handled_verbs,
)


NODE_SRC = (
    "class CrashPlan:\n"
    "    POINTS = ('a-before-x', 'a-before-y')\n"
    "class Node:\n"
    "    def _serve(self, verb, header, payload):\n"
    "        if verb == 'ping':\n"
    "            return {}\n"
    "        if verb == 'put':\n"
    "            return {}\n"
    "        state = 'committed'\n"
    "        if state == 'committed':\n"  # local compare: NOT a verb
    "            pass\n"
    "        return {'error': 'bad-verb'}\n"
)


class TestExtraction:
    def test_handled_verbs_from_dispatch(self):
        verbs = extract_handled_verbs(NODE_SRC)
        assert set(verbs) == {"ping", "put"}

    def test_local_compares_are_not_verbs(self):
        assert "committed" not in extract_handled_verbs(NODE_SRC)

    def test_membership_tests_count(self):
        src = (
            "def _dispatch(self, verb):\n"
            "    if verb in ('ping', 'stats'):\n"
            "        pass\n"
        )
        assert set(extract_handled_verbs(src)) == {"ping", "stats"}

    def test_caller_verbs_all_four_shapes(self):
        src = (
            "async def f(c, arr, w):\n"
            "    await c.request('get', {})\n"
            "    await send_verb(('h', 1), 'stats')\n"
            "    await arr._column_request(0, 'put', {})\n"
            "    await w._rpc(0, 'prepare', {})\n"
        )
        sent = extract_caller_verbs([("m.py", src)])
        assert set(sent) == {"get", "stats", "put", "prepare"}

    def test_multiline_call_still_extracts(self):
        # the grep-proof case: verb literal on a continuation line
        src = (
            "async def f(arr):\n"
            "    await arr._column_request(\n"
            "        0, 'scrub-read',\n"
            "        {'stripe': 1},\n"
            "    )\n"
        )
        assert set(extract_caller_verbs([("m.py", src)])) == {"scrub-read"}

    def test_crash_points(self):
        assert extract_crash_points(NODE_SRC) == ["a-before-x", "a-before-y"]


class TestChecks:
    def _tree(self, tmp_path: Path, *, node_src=NODE_SRC, client_src="",
              tests_src=""):
        (tmp_path / "cluster").mkdir(parents=True)
        (tmp_path / "cluster" / "node.py").write_text(node_src)
        (tmp_path / "cluster" / "client.py").write_text(client_src)
        tests = tmp_path.parent / "tests"
        tests.mkdir(exist_ok=True)
        (tests / "test_x.py").write_text(tests_src)
        return tmp_path, tests

    def test_caller_without_handler_is_pro401(self, tmp_path: Path):
        root, tests = self._tree(
            tmp_path / "src" / "repro",
            client_src="async def f(c):\n    await c.request('pingg', {})\n",
            tests_src="X = ['a-before-x', 'a-before-y', 'ping', 'put']\n",
        )
        fs = check_protocol(root, tests)
        assert [f.code for f in fs if f.symbol == "pingg"] == ["PRO401"]

    def test_handler_without_caller_is_pro402(self, tmp_path: Path):
        root, tests = self._tree(
            tmp_path / "src" / "repro",
            client_src="async def f(c):\n    await c.request('ping', {})\n",
            tests_src="X = ['a-before-x', 'a-before-y']\n",
        )
        fs = check_protocol(root, tests)
        assert [f.symbol for f in fs if f.code == "PRO402"] == ["put"]

    def test_test_only_caller_keeps_handler_alive(self, tmp_path: Path):
        # `fault`-style verbs exist for the harness: a tests/-side
        # caller is enough to keep PRO402 quiet ...
        root, tests = self._tree(
            tmp_path / "src" / "repro",
            client_src="async def f(c):\n    await c.request('ping', {})\n",
            tests_src=(
                "async def g(c):\n    await c.request('put', {})\n"
                "X = ['a-before-x', 'a-before-y']\n"
            ),
        )
        assert not [f for f in check_protocol(root, tests) if f.code == "PRO402"]

    def test_test_only_caller_does_not_satisfy_pro401(self, tmp_path: Path):
        # ... but a tests/-side caller of an unhandled verb is still a
        # bug in the test, not a production path -- PRO401 only looks
        # at src callers, so no finding and no false comfort either.
        root, tests = self._tree(
            tmp_path / "src" / "repro",
            client_src="async def f(c):\n    await c.request('ping', {})\n"
                       "async def g(c):\n    await c.request('put', {})\n",
            tests_src=(
                "async def h(c):\n    await c.request('nope', {})\n"
                "X = ['a-before-x', 'a-before-y']\n"
            ),
        )
        assert not [f for f in check_protocol(root, tests) if f.code == "PRO401"]

    def test_unswept_crash_point_is_pro403(self, tmp_path: Path):
        root, tests = self._tree(
            tmp_path / "src" / "repro",
            client_src=(
                "async def f(c):\n"
                "    await c.request('ping', {})\n"
                "    await c.request('put', {})\n"
            ),
            tests_src="X = ['a-before-x']\n",  # a-before-y never armed
        )
        fs = check_protocol(root, tests)
        assert [f.symbol for f in fs if f.code == "PRO403"] == ["a-before-y"]


class TestLiveTree:
    def test_protocol_surface_is_closed(self):
        assert check_protocol() == []

    def test_every_crash_point_is_declared_and_swept(self):
        from repro.cluster.node import NodeCrashPlan

        src = Path(
            __import__("repro.cluster.node", fromlist=["__file__"]).__file__
        ).read_text()
        assert tuple(extract_crash_points(src)) == NodeCrashPlan.POINTS
        # 6 2PC-write points + 4 migration points (migrate-in/release)
        assert len(NodeCrashPlan.POINTS) == 10
