"""Async-safety lint: mutation canaries and acquittals.

Each canary seeds a violation into a synthetic module and asserts the
pass catches it -- the analyzer equivalent of the engine's flipped-XOR
tests.  The final class pins the live tree clean, which is the
acceptance gate that keeps real regressions from landing silently.
"""

from repro.analysis.concurrency.asynclint import (
    lint_async_project,
    lint_async_source,
)


def codes(findings):
    return [f.code for f in findings]


class TestBlockingSleep:
    def test_time_sleep_in_coroutine_is_flagged(self):
        src = "import time\nasync def f():\n    time.sleep(1)\n"
        assert codes(lint_async_source(src, "m.py")) == ["ASY101"]

    def test_aliased_import_is_still_caught(self):
        src = "import time as t\nasync def f():\n    t.sleep(1)\n"
        assert codes(lint_async_source(src, "m.py")) == ["ASY101"]

    def test_sync_function_is_not_flagged(self):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert lint_async_source(src, "m.py") == []

    def test_sync_def_nested_in_async_is_its_own_world(self):
        src = (
            "import time\n"
            "async def f():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"  # runs only when called, sync context
            "    return helper\n"
        )
        assert lint_async_source(src, "m.py") == []


class TestBlockingIO:
    def test_open_in_coroutine(self):
        src = "async def f(p):\n    return open(p).read()\n"
        assert "ASY102" in codes(lint_async_source(src, "m.py"))

    def test_pathlib_write_text(self):
        src = (
            "import pathlib\n"
            "async def f(p):\n"
            "    pathlib.Path(p).write_text('x')\n"
        )
        assert codes(lint_async_source(src, "m.py")) == ["ASY102"]

    def test_suppression_acquits_with_justification(self):
        src = (
            "import pathlib\n"
            "async def f(p):\n"
            "    pathlib.Path(p).write_text('x')  # conc: ok[ASY102] startup\n"
        )
        assert lint_async_source(src, "m.py") == []


class TestResultCall:
    def test_bare_result_is_flagged(self):
        src = "async def f(fut):\n    return fut.result()\n"
        assert codes(lint_async_source(src, "m.py")) == ["ASY103"]

    def test_done_guard_acquits_same_receiver(self):
        # the hedged-request idiom: .result() only after .done()
        src = (
            "async def f(task):\n"
            "    if task.done():\n"
            "        return task.result()\n"
            "    return None\n"
        )
        assert lint_async_source(src, "m.py") == []

    def test_done_guard_does_not_acquit_other_receiver(self):
        src = (
            "async def f(a, b):\n"
            "    if a.done():\n"
            "        return b.result()\n"
        )
        assert codes(lint_async_source(src, "m.py")) == ["ASY103"]

    def test_result_with_timeout_arg_is_not_flagged(self):
        # concurrent.futures result(timeout=0) is a deliberate poll
        src = "async def f(fut):\n    return fut.result(0)\n"
        assert lint_async_source(src, "m.py") == []


class TestUnawaitedCoroutine:
    def test_bare_local_coroutine_call_is_flagged(self):
        src = (
            "async def work():\n"
            "    pass\n"
            "async def f():\n"
            "    work()\n"
        )
        assert codes(lint_async_source(src, "m.py")) == ["ASY104"]

    def test_awaited_call_is_fine(self):
        src = (
            "async def work():\n"
            "    pass\n"
            "async def f():\n"
            "    await work()\n"
        )
        assert lint_async_source(src, "m.py") == []

    def test_self_method_call_is_flagged(self):
        src = (
            "class C:\n"
            "    async def work(self):\n"
            "        pass\n"
            "    async def f(self):\n"
            "        self.work()\n"
        )
        assert codes(lint_async_source(src, "m.py")) == ["ASY104"]

    def test_assigned_coroutine_is_not_flagged(self):
        # assigning (e.g. to gather later) is not a dropped coroutine
        src = (
            "async def work():\n"
            "    pass\n"
            "async def f():\n"
            "    cs = [work() for _ in range(3)]\n"
            "    return cs\n"
        )
        assert lint_async_source(src, "m.py") == []


class TestAwaitUnderSyncLock:
    def test_threading_lock_spanning_await_is_flagged(self):
        src = (
            "import threading\n"
            "async def f(lk, coro):\n"
            "    with threading.Lock():\n"
            "        await coro\n"
        )
        assert codes(lint_async_source(src, "m.py")) == ["ASY105"]

    def test_lock_without_await_inside_is_fine(self):
        src = (
            "import threading\n"
            "async def f():\n"
            "    with threading.Lock():\n"
            "        x = 1\n"
            "    return x\n"
        )
        assert lint_async_source(src, "m.py") == []

    def test_async_lock_is_fine(self):
        src = (
            "import asyncio\n"
            "async def f(lk):\n"
            "    async with lk:\n"
            "        await asyncio.sleep(0)\n"
        )
        assert lint_async_source(src, "m.py") == []


class TestLiveTree:
    def test_project_is_clean(self):
        assert lint_async_project() == []
