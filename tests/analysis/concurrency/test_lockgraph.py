"""Lock-discipline analysis: cycle and re-entry canaries.

The seeded violations mirror the two real deadlock shapes in an
asyncio lock web: two coroutines taking the same pair of locks in
opposite orders (LCK200) and one coroutine calling back into a path
that re-acquires a lock it already holds (LCK201, asyncio locks being
non-reentrant).  The live-tree check pins the gateway's real hierarchy
(admission -> name -> stripe) acyclic.
"""

from repro.analysis.concurrency.lockgraph import (
    analyze_lock_order,
    analyze_lock_order_sources,
)


def codes(findings):
    return [f.code for f in findings]


class TestCycleDetection:
    CYCLE = (
        "class G:\n"
        "    async def a(self):\n"
        "        async with self._name_lock:\n"
        "            async with self._stripe_lock:\n"
        "                pass\n"
        "    async def b(self):\n"
        "        async with self._stripe_lock:\n"
        "            async with self._name_lock:\n"
        "                pass\n"
    )

    def test_opposite_order_is_a_cycle(self):
        fs = analyze_lock_order_sources([("m.py", self.CYCLE)])
        assert codes(fs) == ["LCK200"]
        assert "_name_lock" in fs[0].symbol and "_stripe_lock" in fs[0].symbol

    def test_consistent_order_is_clean(self):
        src = (
            "class G:\n"
            "    async def a(self):\n"
            "        async with self._name_lock:\n"
            "            async with self._stripe_lock:\n"
            "                pass\n"
            "    async def b(self):\n"
            "        async with self._name_lock:\n"
            "            async with self._stripe_lock:\n"
            "                pass\n"
        )
        assert analyze_lock_order_sources([("m.py", src)]) == []

    def test_multi_item_with_orders_left_to_right(self):
        src = (
            "class G:\n"
            "    async def a(self):\n"
            "        async with self._admitted(1), self._name_lock(2):\n"
            "            pass\n"
            "    async def b(self):\n"
            "        async with self._name_lock(2), self._admitted(1):\n"
            "            pass\n"
        )
        assert codes(analyze_lock_order_sources([("m.py", src)])) == ["LCK200"]

    def test_cross_function_cycle_through_calls(self):
        # f holds A and calls g which takes B; h does B then A directly.
        src = (
            "class G:\n"
            "    async def f(self):\n"
            "        async with self._cache_lock:\n"
            "            await self.g()\n"
            "    async def g(self):\n"
            "        async with self._stripe_lock:\n"
            "            pass\n"
            "    async def h(self):\n"
            "        async with self._stripe_lock:\n"
            "            async with self._cache_lock:\n"
            "                pass\n"
        )
        assert codes(analyze_lock_order_sources([("m.py", src)])) == ["LCK200"]

    def test_ambiguous_callee_adds_no_edges(self):
        # `self.cache.put(...)` must not resolve to another class's
        # `put` that takes locks -- a static pass must not invent
        # deadlocks from name collisions.
        src = (
            "class Cache:\n"
            "    async def put(self, k, v):\n"
            "        async with self._cache_lock:\n"
            "            pass\n"
            "class Gateway:\n"
            "    async def put(self, k, v):\n"
            "        async with self._stripe_lock:\n"
            "            await self.cache.put(k, v)\n"
            "class Other:\n"
            "    async def run(self):\n"
            "        async with self._cache_lock:\n"
            "            async with self._stripe_lock:\n"
            "                pass\n"
        )
        # `put` is defined twice -> unresolvable -> no stripe->cache
        # edge -> no cycle against Other.run's cache->stripe order.
        assert analyze_lock_order_sources([("m.py", src)]) == []


class TestReentry:
    def test_self_reacquisition_through_call(self):
        src = (
            "class G:\n"
            "    async def outer(self):\n"
            "        async with self._stripe_lock:\n"
            "            await self.inner()\n"
            "    async def inner(self):\n"
            "        async with self._stripe_lock:\n"
            "            pass\n"
        )
        fs = analyze_lock_order_sources([("m.py", src)])
        assert codes(fs) == ["LCK201"]
        assert fs[0].symbol == "_stripe_lock"

    def test_suppression_acquits(self):
        src = (
            "class G:\n"
            "    async def outer(self):\n"
            "        async with self._stripe_lock:\n"
            "            await self.inner()  # conc: ok[LCK201] same-task proof\n"
            "    async def inner(self):\n"
            "        async with self._stripe_lock:\n"
            "            pass\n"
        )
        assert analyze_lock_order_sources([("m.py", src)]) == []


class TestLiveTree:
    def test_project_lock_order_is_clean(self):
        assert analyze_lock_order() == []

    def test_gateway_hierarchy_is_seen(self):
        """The pass must actually *see* the gateway's lock web -- an
        analyzer that reports clean because it parsed nothing would be
        worse than none at all."""
        from pathlib import Path

        import repro.gateway.objstore as objstore

        from repro.analysis.concurrency.lockgraph import _ModuleScanner
        import ast

        src = Path(objstore.__file__).read_text()
        scanner = _ModuleScanner("gateway/objstore.py", src)
        scanner.visit(ast.parse(src))
        acquired = {
            lbl for s in scanner.summaries for lbl, _ in s.acquires
        }
        assert {"_admitted", "_name_lock", "_stripe_lock"} <= acquired
