"""Memoryview escape analysis: canaries for the three loan hazards."""

from repro.analysis.concurrency.viewescape import (
    scan_views_project,
    scan_views_source,
)


def codes(findings):
    return [f.code for f in findings]


class TestEscapeToState:
    def test_view_stored_on_self_is_flagged(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        self.view = memoryview(buf)\n"
        )
        assert codes(scan_views_source(src, "m.py")) == ["MVE301"]

    def test_words_view_stored_on_self(self):
        src = (
            "from repro.utils.words import words_view\n"
            "class C:\n"
            "    def keep(self, payload):\n"
            "        self.words = words_view(payload)\n"
        )
        assert codes(scan_views_source(src, "m.py")) == ["MVE301"]

    def test_view_stored_into_attr_container(self):
        src = (
            "class C:\n"
            "    def keep(self, k, buf):\n"
            "        self.cache[k] = memoryview(buf)\n"
        )
        assert codes(scan_views_source(src, "m.py")) == ["MVE301"]

    def test_view_via_local_name_is_tracked(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        v = memoryview(buf)\n"
            "        self.view = v\n"
        )
        assert codes(scan_views_source(src, "m.py")) == ["MVE301"]

    def test_cast_of_view_is_still_a_view(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        self.view = memoryview(buf).cast('B')\n"
        )
        assert codes(scan_views_source(src, "m.py")) == ["MVE301"]

    def test_copy_launders_the_loan(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        self.snapshot = bytes(memoryview(buf))\n"
        )
        assert scan_views_source(src, "m.py") == []

    def test_tobytes_launders(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        v = memoryview(buf)\n"
            "        self.snapshot = v.tobytes()\n"
        )
        assert scan_views_source(src, "m.py") == []

    def test_returning_a_view_is_the_api_contract(self):
        src = (
            "def words_view(data):\n"
            "    return memoryview(data)\n"
        )
        assert scan_views_source(src, "m.py") == []

    def test_suppression_acquits(self):
        src = (
            "class C:\n"
            "    def keep(self, buf):\n"
            "        self.view = memoryview(buf)  # conc: ok[MVE301] pinned\n"
        )
        assert scan_views_source(src, "m.py") == []


class TestClosureCapture:
    def test_lambda_capturing_view_is_flagged(self):
        src = (
            "def f(buf, schedule):\n"
            "    v = memoryview(buf)\n"
            "    schedule(lambda: v[0])\n"
        )
        fs = scan_views_source(src, "m.py")
        assert codes(fs) == ["MVE302"]
        assert fs[0].symbol == "v"

    def test_lambda_over_copies_is_fine(self):
        src = (
            "def f(buf, schedule):\n"
            "    b = bytes(memoryview(buf))\n"
            "    schedule(lambda: b[0])\n"
        )
        assert scan_views_source(src, "m.py") == []


class TestWriteAfterHandoff:
    def test_write_after_awaited_handoff_is_flagged(self):
        src = (
            "async def f(writer, buf):\n"
            "    v = memoryview(buf)\n"
            "    await writer.send(v)\n"
            "    buf[0] = 1\n"
        )
        fs = scan_views_source(src, "m.py")
        assert codes(fs) == ["MVE303"]
        assert fs[0].symbol == "buf"

    def test_write_before_handoff_is_fine(self):
        src = (
            "async def f(writer, buf):\n"
            "    buf[0] = 1\n"
            "    v = memoryview(buf)\n"
            "    await writer.send(v)\n"
        )
        assert scan_views_source(src, "m.py") == []

    def test_unrelated_buffer_write_is_fine(self):
        src = (
            "async def f(writer, buf, other):\n"
            "    await writer.send(memoryview(buf))\n"
            "    other[0] = 1\n"
        )
        assert scan_views_source(src, "m.py") == []


class TestLiveTree:
    def test_project_views_are_clean(self):
        assert scan_views_project() == []
