"""Runtime alias sanitizer: unit and integration canaries.

The integration canary is the pass/fail proof the ISSUE asks for: a
writer whose ``drain()`` mutates the payload mid-flight -- exactly the
write-after-handoff race the static passes cannot see -- must surface
as an :class:`AliasEvent` through the real ``write_frame`` hook.
"""

import asyncio

import numpy as np
import pytest

from repro.analysis.concurrency import sanitizer
from repro.analysis.concurrency.sanitizer import (
    AliasViolationError,
)
from repro.cluster.protocol import write_frame
from repro.utils.words import words_view


@pytest.fixture(autouse=True)
def _sanitizer_on():
    sanitizer.enable(True)
    sanitizer.clear_events()
    yield
    sanitizer.enable(None)
    sanitizer.clear_events()


class TestGuardCheck:
    def test_clean_handoff_records_nothing(self):
        buf = bytearray(b"payload!")
        tok = sanitizer.guard(buf, "t")
        assert sanitizer.check(tok) is None
        assert sanitizer.events() == ()

    def test_mutation_is_recorded(self):
        buf = bytearray(b"payload!")
        tok = sanitizer.guard(buf, "t")
        buf[3] ^= 0xFF
        event = sanitizer.check(tok)
        assert event is not None and event.site == "t"
        assert sanitizer.events() == (event,)

    def test_numpy_data_views_are_guarded(self):
        arr = np.arange(4, dtype=np.uint64)
        tok = sanitizer.guard(arr.data, "t")
        arr[0] = 99
        assert sanitizer.check(tok) is not None

    def test_bytes_are_skipped(self):
        assert sanitizer.guard(b"immutable", "t") is None

    def test_readonly_views_are_skipped(self):
        assert sanitizer.guard(memoryview(b"x"), "t") is None

    def test_disabled_is_a_noop(self):
        sanitizer.enable(False)
        assert sanitizer.guard(bytearray(4), "t") is None

    def test_assert_clean_raises_and_consumes(self):
        buf = bytearray(8)
        tok = sanitizer.guard(buf, "site-x")
        buf[0] = 1
        sanitizer.check(tok)
        with pytest.raises(AliasViolationError, match="site-x"):
            sanitizer.assert_clean("case 7")
        # consumed: a second call is clean
        sanitizer.assert_clean()


class TestReadonlyWords:
    def test_words_view_is_readonly_under_sanitizer(self):
        v = words_view(bytearray(16))
        assert not v.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            v[0] = 1

    def test_words_view_writable_when_disabled(self):
        sanitizer.enable(False)
        v = words_view(bytearray(16))
        assert v.flags.writeable


class _MutatingWriter:
    """StreamWriter stand-in whose drain() races the payload."""

    def __init__(self, victim: bytearray) -> None:
        self.victim = victim
        self.sent = bytearray()

    def write(self, data) -> None:
        self.sent += bytes(data)

    async def drain(self) -> None:
        # the concurrent writer the static dataflow can't see
        self.victim[0] ^= 0xFF


class _QuietWriter:
    def write(self, data) -> None:
        pass

    async def drain(self) -> None:
        pass


class TestWriteFrameIntegration:
    def test_mutating_drain_is_caught(self):
        """The canary: a mid-drain write surfaces as an AliasEvent."""
        buf = bytearray(b"stripe-payload-data!")
        writer = _MutatingWriter(buf)
        asyncio.run(write_frame(writer, {"verb": "put"}, memoryview(buf)))
        events = sanitizer.events()
        assert len(events) == 1
        assert events[0].site == "protocol.write_frame"
        with pytest.raises(AliasViolationError):
            sanitizer.assert_clean()

    def test_clean_drain_records_nothing(self):
        buf = bytearray(b"stripe-payload-data!")
        asyncio.run(write_frame(_QuietWriter(), {"verb": "put"}, memoryview(buf)))
        assert sanitizer.events() == ()

    def test_disabled_pays_no_check(self):
        sanitizer.enable(False)
        buf = bytearray(b"stripe-payload-data!")
        writer = _MutatingWriter(buf)
        asyncio.run(write_frame(writer, {"verb": "put"}, memoryview(buf)))
        assert sanitizer.events() == ()


class TestFuzzCrossCheck:
    def test_fuzzer_fails_on_alias_event(self, monkeypatch):
        """A runtime event the static passes missed fails the build:
        the fuzz loop converts it into a FuzzFailure with the case
        attached."""
        from repro.sim import differential

        real_run = differential.run_case_dict

        def poisoned(case, **kw):
            real_run(case, **kw)
            buf = bytearray(8)
            tok = sanitizer.guard(buf, "seeded-by-test")
            buf[0] = 1
            sanitizer.check(tok)

        monkeypatch.setattr(differential, "run_case_dict", poisoned)
        failure = differential.fuzz(seed=0, max_cases=1, shrink=False)
        assert failure is not None
        assert failure.context == {"kind": "alias-sanitizer"}
        assert "seeded-by-test" in failure.error

    def test_fuzz_smoke_is_clean_under_sanitizer(self):
        from repro.sim.differential import fuzz

        assert fuzz(seed=0, max_cases=8, shrink=False) is None
        assert sanitizer.events() == ()
