"""The four-pass runner: clean-tree gate and baseline integration."""

from pathlib import Path

from repro.analysis.concurrency import run_concurrency_analysis


class TestCleanTree:
    def test_all_passes_run_clean_on_the_tree(self):
        """The acceptance gate: the live tree carries zero unbaselined
        concurrency findings.  A failure here names the exact finding --
        fix it, suppress it inline with a justification, or (last
        resort) baseline it."""
        report = run_concurrency_analysis()
        assert report.ok, "\n".join(str(f) for f in report.findings)

    def test_every_pass_actually_ran(self):
        report = run_concurrency_analysis()
        assert set(report.per_pass) == {"async", "locks", "views", "protocol"}

    def test_report_serialises(self):
        d = run_concurrency_analysis().to_dict()
        assert d["ok"] is True
        assert set(d) == {"ok", "findings", "baselined", "per_pass"}


class TestBaselineIntegration:
    def test_stale_baseline_entry_fails_the_run(self, tmp_path: Path):
        base = tmp_path / "baseline.txt"
        base.write_text("ASY101 never/was.py time.sleep  # ghost entry\n")
        report = run_concurrency_analysis(baseline_path=base)
        assert not report.ok
        assert [f.code for f in report.findings] == ["BASE001"]
        assert "never/was.py" in str(report.findings[0])

    def test_matching_baseline_entry_grandfathers(self, tmp_path: Path):
        # Seed a violation in a synthetic tree, then baseline it away.
        root = tmp_path / "pkg"
        (root / "cluster").mkdir(parents=True)
        (root / "cluster" / "node.py").write_text(
            "class Plan:\n    POINTS = ()\n"
            "def _serve(self, verb):\n"
            "    if verb == 'ping':\n        pass\n"
        )
        (root / "busy.py").write_text(
            "import time\nasync def f():\n    time.sleep(1)\n"
        )
        bad = run_concurrency_analysis(root, tests_root=tmp_path / "no-tests")
        assert [f.code for f in bad.findings] == ["ASY101", "PRO402"]

        base = tmp_path / "baseline.txt"
        base.write_text(
            "ASY101 busy.py time.sleep  # legacy, tracked\n"
            "PRO402 cluster/node.py ping  # synthetic tree\n"
        )
        ok = run_concurrency_analysis(
            root, tests_root=tmp_path / "no-tests", baseline_path=base
        )
        assert ok.ok
        assert len(ok.baselined) == 2
