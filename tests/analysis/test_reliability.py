"""Tests for the MTTDL / URE reliability models."""

import math

import pytest

from repro.analysis.reliability import (
    DiskModel,
    mttdl_raid5,
    mttdl_raid6,
    rebuild_read_failure_probability,
)


NEARLINE = DiskModel(
    mtbf_hours=1.2e6, capacity_bytes=16e12, ure_per_bit=1e-15, rebuild_hours=30
)


class TestDiskModel:
    def test_rates(self):
        assert NEARLINE.failure_rate == pytest.approx(1 / 1.2e6)
        assert NEARLINE.repair_rate == pytest.approx(1 / 30)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(mtbf_hours=0)
        with pytest.raises(ValueError):
            DiskModel(ure_per_bit=1.5)


class TestUREProbability:
    def test_zero_disks(self):
        assert rebuild_read_failure_probability(NEARLINE, 0) == 0.0

    def test_monotone_in_disks(self):
        values = [rebuild_read_failure_probability(NEARLINE, n) for n in (1, 4, 9, 20)]
        assert values == sorted(values)
        assert all(0 < v < 1 for v in values)

    def test_matches_small_exponent_approximation(self):
        """For tiny p*bits, P ~= p * bits."""
        d = DiskModel(capacity_bytes=1e9, ure_per_bit=1e-18)
        p = rebuild_read_failure_probability(d, 1)
        assert p == pytest.approx(1e9 * 8 * 1e-18, rel=1e-6)

    def test_large_capacity_saturates(self):
        d = DiskModel(capacity_bytes=1e15, ure_per_bit=1e-14)
        assert rebuild_read_failure_probability(d, 10) > 0.999

    def test_negative_disks_rejected(self):
        with pytest.raises(ValueError):
            rebuild_read_failure_probability(NEARLINE, -1)


class TestMTTDL:
    def test_raid6_dominates_raid5(self):
        for n in (4, 8, 12, 24):
            assert mttdl_raid6(NEARLINE, n) > 50 * mttdl_raid5(NEARLINE, n)

    def test_decreases_with_group_size(self):
        v5 = [mttdl_raid5(NEARLINE, n) for n in (4, 8, 16)]
        v6 = [mttdl_raid6(NEARLINE, n) for n in (4, 8, 16)]
        assert v5 == sorted(v5, reverse=True)
        assert v6 == sorted(v6, reverse=True)

    def test_raid5_classic_formula_when_no_ure(self):
        """Without UREs the model must collapse to the PGK textbook
        result MTTDL ~= mu / (n (n-1) lam^2) for mu >> lam."""
        d = DiskModel(mtbf_hours=1e6, capacity_bytes=1e12, ure_per_bit=0.0,
                      rebuild_hours=10)
        n = 8
        classic = d.repair_rate / (n * (n - 1) * d.failure_rate**2)
        assert mttdl_raid5(d, n) == pytest.approx(classic, rel=0.01)

    def test_raid6_classic_formula_when_no_ure(self):
        """mu^2 / (n (n-1) (n-2) lam^3) in the same limit."""
        d = DiskModel(mtbf_hours=1e6, capacity_bytes=1e12, ure_per_bit=0.0,
                      rebuild_hours=10)
        n = 8
        classic = d.repair_rate**2 / (n * (n - 1) * (n - 2) * d.failure_rate**3)
        assert mttdl_raid6(d, n) == pytest.approx(classic, rel=0.01)

    def test_ure_collapses_raid5(self):
        """The §I story: at modern capacity/UER, RAID-5's MTTDL is
        bounded by rebuild failures, not double-disk failures."""
        big = DiskModel(mtbf_hours=1.2e6, capacity_bytes=20e12,
                        ure_per_bit=1e-14, rebuild_hours=40)
        p_ure = rebuild_read_failure_probability(big, 9)
        assert p_ure > 0.9  # rebuild almost certainly hits a URE
        # ... so MTTDL ~= time to first failure = mtbf / n.
        assert mttdl_raid5(big, 10) < 2 * big.mtbf_hours / 10

    def test_raid6_survives_the_same_disks(self):
        big = DiskModel(mtbf_hours=1.2e6, capacity_bytes=20e12,
                        ure_per_bit=1e-14, rebuild_hours=40)
        years = mttdl_raid6(big, 10) / 8760
        assert years > 100

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            mttdl_raid5(NEARLINE, 2)
        with pytest.raises(ValueError):
            mttdl_raid6(NEARLINE, 3)
