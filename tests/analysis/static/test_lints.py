"""Tests for the IR data-flow lints."""

import itertools

import pytest

from repro.analysis.static.lints import lint_schedule
from repro.codes import make_code
from repro.engine.ops import Schedule, XorOp


def codes_of(findings):
    return [f.code for f in findings]


class TestAlias:
    def test_self_copy_flagged(self):
        s = Schedule(2, 1, [XorOp(1, 0, 1, 0, copy=True)])
        assert codes_of(lint_schedule(s)) == ["alias"]

    def test_self_accumulate_flagged(self):
        s = Schedule(2, 1, [XorOp(1, 0, 1, 0, copy=False)])
        findings = lint_schedule(s)
        assert codes_of(findings) == ["alias"]
        assert "zeroes" in findings[0].message


class TestDeadWrite:
    def test_copy_over_unread_copy(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.copy_cell((2, 0), (1, 0))  # kills the first copy unread
        findings = lint_schedule(s)
        assert codes_of(findings) == ["dead-write"]
        assert findings[0].op_index == 1

    def test_read_between_writes_is_live(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (0, 0))
        s.copy_cell((2, 1), (2, 0))  # reads the first write
        s.copy_cell((2, 0), (1, 0))
        assert lint_schedule(s) == []

    def test_final_unread_non_output_flagged(self):
        s = Schedule(3, 1)
        s.copy_cell((1, 0), (0, 0))  # the output
        s.copy_cell((2, 0), (0, 0))  # scratch value nobody reads
        findings = lint_schedule(s, outputs=[(1, 0)])
        assert codes_of(findings) == ["dead-write"]

    def test_final_unread_output_is_fine(self):
        s = Schedule(3, 1)
        s.copy_cell((1, 0), (0, 0))
        assert lint_schedule(s, outputs=[(1, 0)]) == []


class TestCopyClobber:
    def test_copy_after_accumulate_chain(self):
        # The classic generator bug: the initial copy emitted after the
        # accumulates it should have preceded.
        s = Schedule(4, 1)
        s.copy_cell((3, 0), (0, 0))
        s.accumulate((3, 0), (1, 0))
        s.copy_cell((3, 0), (2, 0))  # clobbers the built-up parity
        findings = lint_schedule(s)
        assert codes_of(findings) == ["copy-clobber"]
        assert findings[0].op_index == 2

    def test_consumed_accumulation_not_flagged(self):
        s = Schedule(4, 2)
        s.copy_cell((3, 0), (0, 0))
        s.accumulate((3, 0), (1, 0))
        s.copy_cell((3, 1), (3, 0))  # accumulation is read here
        s.copy_cell((3, 0), (2, 0))  # then overwriting it is fine
        assert lint_schedule(s) == []


class TestSelfCancel:
    def test_repeat_accumulate_flagged(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        s.accumulate((2, 0), (1, 0))  # cancels the previous op
        findings = lint_schedule(s)
        assert codes_of(findings) == ["self-cancel"]

    def test_source_rewritten_between_is_legit(self):
        # In-place syndrome updates accumulate the same (dst, src) pair
        # twice with src changed in between -- not redundant.
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        s.copy_cell((1, 0), (0, 0))  # src changes
        s.accumulate((2, 0), (1, 0))
        assert lint_schedule(s) == []

    def test_observed_intermediate_is_legit(self):
        s = Schedule(4, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        s.copy_cell((3, 0), (2, 0))  # intermediate value observed
        s.accumulate((2, 0), (1, 0))
        assert lint_schedule(s) == []


class TestRealSchedulesAreClean:
    @pytest.mark.parametrize("name,k,p", [
        ("liberation-optimal", 4, 5),
        ("liberation-original", 4, 5),
        ("evenodd", 6, 7),
        ("rdp", 5, 7),
        ("blaum-roth", 4, 5),
    ])
    def test_no_findings_on_any_schedule(self, name, k, p):
        code = make_code(name, k, p=p)
        outputs = {
            (c, r) for c in (code.p_col, code.q_col) for r in range(code.rows)
        }
        assert lint_schedule(code.build_encode_schedule(), outputs=outputs) == []
        for pat in itertools.combinations(range(code.n_cols), 2):
            outs = {(c, r) for c in pat for r in range(code.rows)}
            sched = code.build_decode_schedule(pat)
            assert lint_schedule(sched, outputs=outs) == [], (name, pat)
