"""Tests for the sim-seam AST lint."""

from pathlib import Path

from repro.analysis.static.astlint import lint_project, lint_source


def symbols(findings):
    return [f.symbol for f in findings]


class TestClockCalls:
    def test_direct_call(self):
        fs = lint_source("import time\ntime.sleep(1)\n", "m.py")
        assert symbols(fs) == ["time.sleep"]

    def test_module_alias(self):
        fs = lint_source("import time as t\nt.monotonic()\n", "m.py")
        assert symbols(fs) == ["time.monotonic"]

    def test_function_alias(self):
        fs = lint_source(
            "from time import perf_counter as pc\npc()\n", "m.py"
        )
        assert symbols(fs) == ["time.perf_counter"]

    def test_ns_variants(self):
        fs = lint_source("import time\ntime.time_ns()\n", "m.py")
        assert symbols(fs) == ["time.time_ns"]

    def test_unrelated_time_attr_ok(self):
        assert lint_source("import time\nx = time.struct_time\n", "m.py") == []


class TestRandomCalls:
    def test_global_generator_flagged(self):
        fs = lint_source("import random\nrandom.randint(0, 9)\n", "m.py")
        assert symbols(fs) == ["random.randint"]

    def test_from_import_flagged(self):
        fs = lint_source("from random import shuffle\nshuffle(x)\n", "m.py")
        assert symbols(fs) == ["random.shuffle"]

    def test_seeded_instance_ok(self):
        assert lint_source(
            "import random\nrng = random.Random(42)\n", "m.py"
        ) == []

    def test_unseeded_instance_flagged(self):
        fs = lint_source("import random\nrng = random.Random()\n", "m.py")
        assert symbols(fs) == ["random.Random"]


class TestNumpyRandom:
    def test_seeded_default_rng_ok(self):
        assert lint_source(
            "import numpy as np\nrng = np.random.default_rng(0)\n", "m.py"
        ) == []

    def test_unseeded_default_rng_flagged(self):
        fs = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n", "m.py"
        )
        assert len(fs) == 1 and "unseeded" in fs[0].message

    def test_legacy_global_flagged(self):
        fs = lint_source("import numpy as np\nnp.random.rand(3)\n", "m.py")
        assert len(fs) == 1 and "legacy" in fs[0].message


class TestProjectWalk:
    def test_repro_package_is_clean(self):
        assert lint_project() == []

    def test_seams_are_skipped(self, tmp_path: Path):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "clock.py").write_text("import time\ntime.time()\n")
        (tmp_path / "core.py").write_text("import time\ntime.time()\n")
        fs = lint_project(tmp_path)
        assert [f.path for f in fs] == ["core.py"]

    def test_syntax_error_is_a_finding(self, tmp_path: Path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        fs = lint_project(tmp_path)
        assert len(fs) == 1 and fs[0].symbol == "syntax"

    def test_finding_str_is_location_first(self):
        fs = lint_source("import time\ntime.sleep(1)\n", "pkg/mod.py")
        assert str(fs[0]).startswith("pkg/mod.py:2:")


class TestObsIsNotASeam:
    """``repro.obs`` is deliberately linted like any other library code:
    a tracer only reads the clock it is handed, so the whole package
    must survive the lint without a seam exemption."""

    def test_obs_is_walked_not_skipped(self):
        import repro.obs

        root = Path(repro.obs.__file__).parent.parent  # the repro package
        obs_files = {p.relative_to(root).as_posix()
                     for p in (root / "obs").glob("*.py")}
        assert "obs/tracing.py" in obs_files  # sanity: package present
        from repro.analysis.static.astlint import DEFAULT_SEAMS

        assert not any(f.startswith(seam)
                       for f in obs_files for seam in DEFAULT_SEAMS)

    def test_obs_package_lints_clean(self):
        import repro.obs

        fs = lint_project(Path(repro.obs.__file__).parent, seams=())
        assert fs == []

    def test_wallclock_lives_in_the_bench_seam(self):
        # The one legitimate wall-clock import site for CLI/gate code.
        import repro.bench.wallclock as wc

        assert "bench" in Path(wc.__file__).parts


class TestGatewayIsNotASeam:
    """The object gateway -- workload driver included -- takes its clock
    by injection and seeds every generator explicitly, so it is linted
    like ordinary library code.  That, not an exemption, is what makes
    the sim-mode benchmark digest byte-stable."""

    def test_gateway_is_walked_not_skipped(self):
        import repro.gateway

        root = Path(repro.gateway.__file__).parent.parent  # the repro package
        gw_files = {p.relative_to(root).as_posix()
                    for p in (root / "gateway").glob("*.py")}
        assert "gateway/bench.py" in gw_files  # sanity: package present
        from repro.analysis.static.astlint import DEFAULT_SEAMS

        assert not any(f.startswith(seam)
                       for f in gw_files for seam in DEFAULT_SEAMS)

    def test_gateway_package_lints_clean(self):
        import repro.gateway

        fs = lint_project(Path(repro.gateway.__file__).parent, seams=())
        assert fs == []

    def test_planted_wall_clock_in_gateway_code_is_flagged(self, tmp_path: Path):
        # A regression canary: if someone reaches for time.monotonic()
        # inside gateway code, the lint must catch it -- there is no
        # seam carve-out to hide behind.
        pkg = tmp_path / "gateway"
        pkg.mkdir()
        (pkg / "objstore.py").write_text(
            "import time\n\ndef stamp():\n    return time.monotonic()\n"
        )
        fs = lint_project(tmp_path)
        assert symbols(fs) == ["time.monotonic"]
        assert fs[0].path == "gateway/objstore.py"


class TestSeamBoundary:
    """Regression: seam matching is exact-boundary, never prefix.

    The old ``rel.startswith(seam)`` exempted same-prefix *siblings* --
    a seam ``"sim"`` silently skipped ``simulators/`` and
    ``sim_extras.py`` too, carving an unreviewed lint hole one rename
    wide.  ``seam_match`` requires ``rel == seam``, ``rel == seam.py``
    or ``rel.startswith(seam + "/")``.
    """

    VIOLATION = "import time\ntime.sleep(1)\n"

    def _tree(self, tmp_path: Path) -> Path:
        for rel in ("sim/clock.py", "sim_extras.py", "simulators/fake.py"):
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(self.VIOLATION)
        return tmp_path

    def test_sibling_directories_are_not_exempted(self, tmp_path: Path):
        fs = lint_project(self._tree(tmp_path), seams=("sim",))
        assert sorted(f.path for f in fs) == [
            "sim_extras.py", "simulators/fake.py"
        ]

    def test_trailing_slash_spelling_is_equivalent(self, tmp_path: Path):
        bare = lint_project(self._tree(tmp_path), seams=("sim",))
        slashed = lint_project(tmp_path, seams=("sim/",))
        # "sim/" exempts the subtree but not sim.py; "sim" exempts both.
        assert {f.path for f in bare} <= {f.path for f in slashed}
        assert "sim/clock.py" not in {f.path for f in slashed}

    def test_seam_py_file_is_exempt(self, tmp_path: Path):
        (tmp_path / "sim.py").write_text(self.VIOLATION)
        fs = lint_project(tmp_path, seams=("sim",))
        assert fs == []


class TestTestsTreeSweep:
    """The sim-seam invariant holds over ``tests/`` as well.

    Library code earns determinism through injected clocks and seeded
    generators; a test that sleeps or polls the wall clock undoes that
    work from the outside.  The allowlist (``TESTS_SEAMS``) names the
    files whose wall-clock use is the point -- bench tests, the
    RealClock half of the clock seam, fuzz time budgets, and subprocess
    CLI orchestration -- and nothing else.
    """

    def _tests_root(self) -> Path:
        # tests/analysis/static/test_astlint.py -> tests/
        return Path(__file__).resolve().parents[2]

    def test_tests_tree_is_clean_under_allowlist(self):
        from repro.analysis.static.astlint import TESTS_SEAMS

        fs = lint_project(self._tests_root(), seams=TESTS_SEAMS)
        assert fs == [], "\n".join(str(f) for f in fs)

    def test_allowlist_entries_all_exist(self):
        """A stale allowlist entry is a lint hole; fail on it."""
        from repro.analysis.concurrency.findings import seam_match
        from repro.analysis.static.astlint import TESTS_SEAMS

        root = self._tests_root()
        rels = {p.relative_to(root).as_posix() for p in root.rglob("*.py")}
        for seam in TESTS_SEAMS:
            assert any(seam_match(rel, seam) for rel in rels), (
                f"allowlist entry {seam!r} matches no file under tests/"
            )

    def test_allowlist_is_load_bearing(self):
        """Sanity: the allowlisted files do contain wall-clock calls --
        if they all went clean, the allowlist should shrink."""
        fs = lint_project(self._tests_root(), seams=())
        assert fs, "tests/ lints clean with no allowlist: drop TESTS_SEAMS"
