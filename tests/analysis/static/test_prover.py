"""Tests for the symbolic correctness prover."""

import itertools

import pytest

from repro.analysis.static.prover import (
    erasure_patterns,
    prove_code,
    prove_decode,
    prove_encode,
)
from repro.codes import make_code
from repro.engine.ops import Schedule, XorOp


def _mutate(sched: Schedule, drop=None, insert=None) -> Schedule:
    ops = list(sched)
    if drop is not None:
        ops.pop(drop)
    if insert is not None:
        idx, op = insert
        ops.insert(idx, op)
    return Schedule(sched.cols, sched.rows, ops)


class TestProveEncode:
    @pytest.mark.parametrize("name,k,p", [
        ("liberation-optimal", 4, 5),
        ("liberation-original", 4, 5),
        ("evenodd", 4, 5),
        ("rdp", 4, 5),
        ("blaum-roth", 4, 5),
        ("cauchy-rs", 4, None),
    ])
    def test_real_encodes_prove(self, name, k, p):
        code = make_code(name, k, **({} if p is None else {"p": p}))
        proof = prove_encode(code)
        assert proof.ok, proof.failures
        assert proof.kind == "encode" and proof.n_xors == code.encoding_xors()

    def test_every_drop_is_caught(self):
        # Dropping *any* single op from a correct encode schedule must
        # break the proof: copies are load-bearing (later accumulates
        # consume garbage) and every accumulate contributes a term.
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_encode_schedule()
        for i in range(len(sched)):
            proof = prove_encode(code, _mutate(sched, drop=i))
            assert not proof.ok, f"dropping op {i} went undetected"

    def test_write_to_data_column_is_caught(self):
        code = make_code("liberation-optimal", 4, p=5)
        sched = _mutate(
            code.build_encode_schedule(),
            insert=(0, XorOp(0, 0, 1, 0, copy=False)),
        )
        proof = prove_encode(code, sched)
        assert any("writes data cell" in f for f in proof.failures)

    def test_spurious_term_is_caught(self):
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_encode_schedule()
        bad = _mutate(
            sched, insert=(len(sched), XorOp(code.p_col, 0, 0, 1, copy=False))
        )
        proof = prove_encode(code, bad)
        assert any("spurious" in f for f in proof.failures)


class TestProveDecode:
    @pytest.mark.parametrize("name,k,p", [
        ("liberation-optimal", 4, 5),
        ("evenodd", 4, 5),
        ("rdp", 4, 5),
        ("blaum-roth", 4, 5),
    ])
    def test_all_patterns_prove(self, name, k, p):
        code = make_code(name, k, p=p)
        for pat in erasure_patterns(code.n_cols):
            proof = prove_decode(code, pat)
            assert proof.ok, (pat, proof.failures)

    def test_two_data_drop_is_caught(self):
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_decode_schedule((0, 2))
        for i in range(len(sched)):
            proof = prove_decode(code, (0, 2), _mutate(sched, drop=i))
            assert not proof.ok, f"dropping op {i} went undetected"

    def test_wrong_pattern_schedule_fails(self):
        # Proving a (0,1) schedule against the (0,2) obligation fails.
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_decode_schedule((0, 1))
        proof = prove_decode(code, (0, 2), sched)
        assert not proof.ok

    def test_write_to_survivor_is_caught(self):
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_decode_schedule((0, 1))
        bad = _mutate(sched, insert=(len(sched), XorOp(3, 0, 2, 0, copy=False)))
        proof = prove_decode(code, (0, 1), bad)
        assert any("surviving column" in f for f in proof.failures)


class TestProveCode:
    def test_prove_code_covers_encode_and_all_patterns(self):
        code = make_code("evenodd", 3, p=5)
        proofs = prove_code(code)
        n_pats = len(erasure_patterns(code.n_cols))
        assert len(proofs) == 1 + n_pats
        assert all(pr.ok for pr in proofs)
        assert proofs[0].kind == "encode"

    def test_proof_to_dict_round_trip(self):
        import json

        code = make_code("rdp", 3, p=5)
        proof = prove_decode(code, (0, 1))
        blob = json.dumps(proof.to_dict())
        back = json.loads(blob)
        assert back["ok"] and back["erasures"] == [0, 1]
        assert "decode" in str(proof)


class TestErasurePatterns:
    def test_counts(self):
        pats = erasure_patterns(6)
        assert len(pats) == 6 + 15
        assert all(len(pat) in (1, 2) for pat in pats)
        assert len(set(pats)) == len(pats)

    def test_all_pairs_present(self):
        pats = set(erasure_patterns(4))
        assert set(itertools.combinations(range(4), 2)) <= pats
