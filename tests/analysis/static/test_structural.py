"""Tests for the structural (ordering) checker's own API.

End-to-end behaviour against real codes, the scratch-garbage
regression, and the ``verify_schedule`` compatibility wrapper live in
``tests/engine/test_verify.py``; this file covers the analyzer-native
surface (``collect`` mode, per-cell garbage, diagnostics wording).
"""

import pytest

from repro.analysis.static.structural import ScheduleViolation, check_structure
from repro.engine.ops import Schedule


def test_collect_gathers_all_violations():
    s = Schedule(3, 2)
    s.copy_cell((2, 0), (1, 0))  # read of unwritten garbage
    s.copy_cell((2, 1), (1, 1))  # and another
    problems = check_structure(s, unreadable_cols=[1], collect=True)
    assert len(problems) == 2
    assert all("reads unwritten" in msg for msg in problems)


def test_raises_on_first_without_collect():
    s = Schedule(3, 2)
    s.copy_cell((2, 0), (1, 0))
    with pytest.raises(ScheduleViolation):
        check_structure(s, unreadable_cols=[1])


def test_garbage_cells_are_cell_granular():
    s = Schedule(3, 2)
    s.copy_cell((2, 0), (1, 0))  # (1,0) is garbage: violation
    s.copy_cell((2, 1), (1, 1))  # (1,1) is fine
    problems = check_structure(s, garbage_cells=[(1, 0)], collect=True)
    assert len(problems) == 1 and "(1, 0)" in problems[0]


def test_diagnostics_name_the_garbage_kind():
    s = Schedule(4, 1)
    s.copy_cell((2, 0), (1, 0))
    s.copy_cell((1, 0), (3, 0))
    unread = check_structure(s, unreadable_cols=[1], collect=True)
    scratch = check_structure(s, garbage_cols=[1], collect=True)
    assert "unreadable column 1" in unread[0]
    assert "scratch" in scratch[0]


def test_write_legalises_later_reads_only():
    s = Schedule(3, 1)
    s.copy_cell((1, 0), (0, 0))
    s.copy_cell((2, 0), (1, 0))  # read strictly after the write: fine
    assert check_structure(s, unreadable_cols=[1], collect=True) == []


def test_empty_schedule_is_clean():
    assert check_structure(Schedule(2, 2), unreadable_cols=[0], collect=True) == []


def test_required_dsts_reported_with_examples():
    s = Schedule(3, 2)
    problems = check_structure(
        s, required_dsts=[(1, 0), (1, 1)], collect=True
    )
    assert len(problems) == 1 and "never writes 2 required" in problems[0]
