"""Tests for the parity specifications.

The decisive check: a spec is correct iff setting exactly one data bit
and encoding (with the family's own, independently-tested encoder)
raises exactly the parity bits whose spec contains that data atom.
This compares the spec's *defining-equation* derivation against the
schedule path end to end.
"""

import numpy as np
import pytest

from repro.analysis.static.spec import parity_spec, spec_xor_lower_bound
from repro.analysis.static.symbolic import data_atom
from repro.codes import make_code

FAMILIES = [
    ("liberation-optimal", 4, 5),
    ("liberation-original", 4, 5),
    ("liberation-optimal", 6, 7),
    ("evenodd", 4, 5),
    ("evenodd", 6, 7),
    ("rdp", 4, 5),
    ("rdp", 5, 7),
    ("blaum-roth", 4, 5),
    ("cauchy-rs", 4, None),
]


def _build(name, k, p):
    kw = {} if p is None else {"p": p}
    return make_code(name, k, **kw)


@pytest.mark.parametrize("name,k,p", FAMILIES)
def test_spec_matches_unit_vector_encodes(name, k, p):
    code = _build(name, k, p)
    spec = parity_spec(code)

    # Every parity cell must have a spec, and nothing else.
    assert set(spec) == {
        (c, r) for c in (code.p_col, code.q_col) for r in range(code.rows)
    }

    for col in range(code.k):
        for row in range(code.rows):
            bits = np.zeros((code.total_cols, code.rows), dtype=np.uint8)
            bits[col, row] = 1
            code.encode_bits(bits)
            atom = data_atom(col, row)
            for cell, members in spec.items():
                assert bool(bits[cell]) == (atom in members), (
                    f"{name}: data bit (c{col},r{row}) vs parity cell {cell}"
                )


@pytest.mark.parametrize("name,k,p", FAMILIES)
def test_spec_is_mds_shaped(name, k, p):
    # Every parity bit must depend on at least one bit of every data
    # column (otherwise losing that column plus the other parity column
    # could be unrecoverable) -- true for all the families here.
    code = _build(name, k, p)
    for cell, members in parity_spec(code).items():
        cols = {c for _tag, c, _r in members}
        assert cols == set(range(code.k)), f"{name}: {cell} misses columns"


class TestLowerBound:
    def test_bound_value(self):
        code = make_code("liberation-optimal", 4, p=5)
        assert spec_xor_lower_bound(code) == 2 * 5 * 3

    def test_liberation_optimal_meets_bound(self):
        for p in (5, 7):
            for k in range(2, p + 1):
                code = make_code("liberation-optimal", k, p=p)
                assert code.encoding_xors() == spec_xor_lower_bound(code)

    def test_original_exceeds_bound(self):
        code = make_code("liberation-original", 4, p=5)
        assert code.encoding_xors() > spec_xor_lower_bound(code)

    def test_unsupported_code_raises(self):
        code = make_code("reed-solomon", 4)
        with pytest.raises(TypeError, match="no parity specification"):
            parity_spec(code)
