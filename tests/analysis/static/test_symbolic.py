"""Tests for the symbolic GF(2) interpreter."""

import numpy as np
import pytest

from repro.analysis.static.symbolic import (
    ZERO,
    data_atom,
    format_expr,
    garbage_atom,
    is_garbage,
    pristine_state,
    symbolic_execute,
    symbolic_execute_groups,
)
from repro.engine.executor import compile_schedule, execute_bits
from repro.engine.ops import Schedule


def expr(*cells):
    return frozenset(data_atom(c, r) for c, r in cells)


class TestInterpreter:
    def test_copy_replaces(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        final = symbolic_execute(s)
        assert final[(2, 0)] == expr((0, 0))

    def test_accumulate_is_symmetric_difference(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (0, 0))
        s.accumulate((2, 0), (1, 0))
        s.accumulate((2, 0), (0, 0))  # cancels the copy's contribution
        final = symbolic_execute(s)
        assert final[(2, 0)] == expr((1, 0))

    def test_double_accumulate_cancels_to_zero(self):
        s = Schedule(2, 1)
        s.mark_touched((1, 0))
        s.accumulate((1, 0), (0, 0))
        s.accumulate((1, 0), (0, 0))
        final = symbolic_execute(s)
        assert final[(1, 0)] == expr((1, 0))  # back to its initial value

    def test_untouched_cells_keep_their_atom(self):
        s = Schedule(3, 2)
        s.copy_cell((2, 0), (0, 0))
        final = symbolic_execute(s)
        assert final[(1, 1)] == expr((1, 1))

    def test_input_state_not_mutated(self):
        s = Schedule(2, 1)
        s.copy_cell((1, 0), (0, 0))
        state = pristine_state(2, 1)
        before = dict(state)
        symbolic_execute(s, state)
        assert state == before

    def test_garbage_flows_through(self):
        s = Schedule(3, 1)
        s.copy_cell((2, 0), (1, 0))
        state = pristine_state(3, 1, garbage_cells=[(1, 0)])
        final = symbolic_execute(s, state)
        assert final[(2, 0)] == frozenset((garbage_atom(1, 0),))
        assert all(is_garbage(a) for a in final[(2, 0)])

    def test_overrides(self):
        state = pristine_state(2, 1, overrides={(1, 0): expr((0, 0))})
        assert state[(1, 0)] == expr((0, 0))


class TestAgainstBitExecution:
    """The interpreter must agree with the bit-level reference on every
    input: evaluate the symbolic result over random bit assignments."""

    @pytest.mark.parametrize("name,k,p", [
        ("liberation-optimal", 4, 5),
        ("evenodd", 4, 5),
        ("rdp", 4, 5),
    ])
    def test_symbolic_matches_dynamic(self, name, k, p):
        from repro.codes import make_code

        code = make_code(name, k, p=p)
        sched = code.build_encode_schedule()
        final = symbolic_execute(sched)

        rng = np.random.default_rng(7)
        for _ in range(4):
            bits = rng.integers(0, 2, (sched.cols, sched.rows)).astype(np.uint8)
            ref = bits.copy()
            execute_bits(sched, ref)
            for col in range(sched.cols):
                for row in range(sched.rows):
                    want = 0
                    for _tag, c, r in final[(col, row)]:
                        want ^= int(bits[c, r])
                    assert ref[col, row] == want


class TestGroups:
    def test_groups_match_schedule(self):
        from repro.codes import make_code

        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_encode_schedule()
        compiled = compile_schedule(sched)
        want = symbolic_execute(sched)
        got = symbolic_execute_groups(sched.cols, sched.rows, compiled._groups)
        assert got == want

    def test_init_copy_discards_prior_value(self):
        # dst <- xor(srcs) must not include dst's old value.
        got = symbolic_execute_groups(2, 1, [(1, [0], True)])
        assert got[(1, 0)] == expr((0, 0))

    def test_accumulating_group_keeps_prior_value(self):
        got = symbolic_execute_groups(2, 1, [(1, [0], False)])
        assert got[(1, 0)] == expr((0, 0), (1, 0))


class TestFormatting:
    def test_zero(self):
        assert format_expr(ZERO) == "0"

    def test_terms_and_garbage(self):
        e = frozenset((data_atom(1, 2), garbage_atom(3, 4)))
        out = format_expr(e)
        assert "b[c1,r2]" in out and "garbage[c3,r4]" in out

    def test_truncation(self):
        e = frozenset(data_atom(c, 0) for c in range(12))
        out = format_expr(e, limit=3)
        assert "9 more" in out
