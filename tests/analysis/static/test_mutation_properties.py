"""Property-based mutation testing of the symbolic prover.

The prover is only worth trusting if it *catches* broken schedules, so
this module attacks it with random single-op mutations -- drop,
duplicate, adjacent swap -- of correct Liberation encode schedules for
p in {5, 7, 11} and holds its verdict to a dynamic oracle: the prover
may say "correct" only when the mutant's observable behaviour (parity
outputs over random inputs, including random initial parity garbage)
is indistinguishable from the original schedule's, and it must flag
every mutant whose behaviour differs.

This is the analyzer analogue of the differential fuzzer: the fuzzer
cross-checks executors against each other; this cross-checks the
static prover against execution itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.static.prover import prove_decode, prove_encode
from repro.codes import make_code
from repro.engine.executor import execute_bits
from repro.engine.ops import Schedule

PRIMES = (5, 7, 11)

mutation_strategy = st.sampled_from(PRIMES).flatmap(
    lambda p: st.tuples(
        st.just(p),
        st.integers(2, p),                      # k
        st.sampled_from(["drop", "dup", "swap"]),
        st.integers(0, 10_000),                 # op position (mod len)
        st.integers(0, 2**32 - 1),              # oracle input seed
    )
)


def mutate(sched: Schedule, kind: str, pos: int) -> Schedule:
    ops = list(sched)
    i = pos % len(ops)
    if kind == "drop":
        ops.pop(i)
    elif kind == "dup":
        ops.insert(i, ops[i])
    else:  # swap adjacent
        j = (i + 1) % len(ops)
        ops[i], ops[j] = ops[j], ops[i]
    return Schedule(sched.cols, sched.rows, ops)


def behaves_identically(
    original: Schedule,
    mutant: Schedule,
    out_cols,
    seed: int,
    n_inputs: int = 6,
) -> bool:
    """Dynamic oracle: equal outputs on ``out_cols`` over random
    stripes.  The whole stripe (including the output/scratch area) is
    randomised, so dependence on stale or garbage contents is
    observable."""
    rng = np.random.default_rng(seed)
    out = list(out_cols)
    for _ in range(n_inputs):
        bits = rng.integers(0, 2, (original.cols, original.rows)).astype(np.uint8)
        a, b = bits.copy(), bits.copy()
        execute_bits(original, a)
        execute_bits(mutant, b)
        if not np.array_equal(a[out], b[out]):
            return False
    return True


class TestEncodeMutations:
    @settings(max_examples=60, deadline=None)
    @given(mutation_strategy)
    def test_verdict_matches_dynamic_oracle(self, case):
        p, k, kind, pos, seed = case
        code = make_code("liberation-optimal", k, p=p)
        sched = code.build_encode_schedule()
        mutant = mutate(sched, kind, pos)

        proof = prove_encode(code, mutant)
        same = behaves_identically(sched, mutant, (code.p_col, code.q_col), seed)

        if not same:
            # A behavioural difference the prover missed would be a
            # soundness bug -- the fatal kind.
            assert not proof.ok, (
                f"prover accepted a behaviourally different mutant "
                f"({kind} at {pos % len(sched)}, p={p}, k={k})"
            )
        if proof.ok:
            assert same, "prover accepted a mutant the oracle distinguishes"

    def test_every_drop_and_dup_is_caught_exhaustively(self):
        # Completeness on the strongest mutation classes: for p=5 every
        # dropped and every duplicated op must fail the proof.  (Swaps
        # can be harmless -- adjacent independent ops commute -- which
        # is why the property above uses the dynamic oracle instead.)
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_encode_schedule()
        for i in range(len(sched)):
            assert not prove_encode(code, mutate(sched, "drop", i)).ok
            dup = mutate(sched, "dup", i)
            if not sched[i].copy:  # duplicated copies are idempotent
                assert not prove_encode(code, dup).ok


class TestDecodeMutations:
    @staticmethod
    def reconstructs_truth(code, mutant, ers, seed, n_inputs=6):
        """Decode oracle: over random *consistent* stripes with the
        erased and scratch cells randomised, the mutant must rebuild
        the erased columns' true contents.  This matches the prover's
        obligation exactly (surviving parity is trusted consistent)."""
        rng = np.random.default_rng(seed)
        for _ in range(n_inputs):
            bits = np.zeros((code.total_cols, code.rows), dtype=np.uint8)
            bits[: code.k] = rng.integers(0, 2, (code.k, code.rows))
            code.encode_bits(bits)
            truth = bits.copy()
            for col in (*ers, *range(code.n_cols, code.total_cols)):
                bits[col] = rng.integers(0, 2, code.rows)
            execute_bits(mutant, bits)
            if not np.array_equal(bits[list(ers)], truth[list(ers)]):
                return False
        return True

    @settings(max_examples=30, deadline=None)
    @given(mutation_strategy)
    def test_two_data_erasure_verdict_matches_oracle(self, case):
        p, k, kind, pos, seed = case
        code = make_code("liberation-optimal", k, p=p)
        ers = (0, 1)
        sched = code.build_decode_schedule(ers)
        mutant = mutate(sched, kind, pos)

        proof = prove_decode(code, ers, mutant)
        correct = self.reconstructs_truth(code, mutant, ers, seed)

        if not correct:
            assert not proof.ok, (
                f"prover accepted a decode mutant that fails to reconstruct "
                f"({kind} at {pos % len(sched)}, p={p}, k={k})"
            )
        if proof.ok:
            assert correct, "prover accepted a decode mutant the oracle rejects"

    def test_every_decode_drop_is_caught_exhaustively(self):
        code = make_code("liberation-optimal", 4, p=5)
        sched = code.build_decode_schedule((0, 2))
        for i in range(len(sched)):
            assert not prove_decode(code, (0, 2), mutate(sched, "drop", i)).ok


@pytest.mark.parametrize("family", ["evenodd", "rdp", "blaum-roth"])
def test_drops_caught_across_families(family):
    code = make_code(family, 3, p=5)
    sched = code.build_encode_schedule()
    for i in range(0, len(sched), 3):
        assert not prove_encode(code, mutate(sched, "drop", i)).ok
