"""Tests for the optimality auditor and analysis report."""

import json

import pytest

from repro.analysis.static import audit
from repro.analysis.static.audit import (
    AnalysisReport,
    analyze_geometry,
    default_families,
    family_ks,
    make_family_code,
    run_analysis,
)


class TestGeometry:
    def test_liberation_optimal_meets_bound(self):
        r = analyze_geometry("liberation-optimal", 5, 4)
        assert r["ok"], r["failures"]
        assert r["encode"]["optimal"] and r["encode"]["gap"] == 0
        assert r["encode"]["per_bit"] == pytest.approx(3.0)  # k-1
        assert len(r["decode"]) == 6 + 15  # singles + pairs over k+2=6

    def test_evenodd_has_gap_but_proves(self):
        r = analyze_geometry("evenodd", 5, 4)
        assert r["ok"]
        assert not r["encode"]["optimal"] and r["encode"]["gap"] > 0

    def test_json_serialisable(self):
        r = analyze_geometry("rdp", 5, 3)
        json.dumps(r)  # must not raise

    def test_optimality_gate(self, monkeypatch):
        # If a family claimed optimal misses the bound, the geometry
        # fails even though every proof passes.
        monkeypatch.setattr(
            audit, "OPTIMAL_FAMILIES", frozenset({"evenodd"})
        )
        r = analyze_geometry("evenodd", 5, 4)
        assert not r["ok"]
        assert any("exceeds the k-1 bound" in f for f in r["failures"])


class TestFamilies:
    def test_default_families_are_constructible(self):
        for fam in default_families():
            code = make_family_code(fam, 3, 5)
            assert code.k == 3

    def test_family_ks_respects_geometry(self):
        assert list(family_ks("liberation-optimal", 5)) == [2, 3, 4, 5]
        assert list(family_ks("rdp", 5)) == [2, 3, 4]
        assert list(family_ks("blaum-roth", 5)) == [2, 3, 4]

    def test_non_schedule_family_rejected(self):
        with pytest.raises(TypeError, match="not schedule-based"):
            make_family_code("reed-solomon", 4, 5)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self) -> AnalysisReport:
        return run_analysis(
            ["liberation-optimal", "evenodd"], primes=(5,), ks=(2, 4)
        )

    def test_gate_passes(self, report):
        assert report.ok and report.failures() == []

    def test_geometry_count(self, report):
        # two families x p=5 x k in {2, 4}
        assert len(report.results) == 4
        assert report.n_proofs == sum(1 + len(r["decode"]) for r in report.results)

    def test_summary_rows_aggregate(self, report):
        rows = report.summary_rows()
        assert len(rows) == 2
        lib = next(r for r in rows if r["family"] == "liberation-optimal")
        assert lib["geometries"] == 2 and lib["encode_optimal"]
        eo = next(r for r in rows if r["family"] == "evenodd")
        assert not eo["encode_optimal"] and eo["encode_gap_max"] > 0

    def test_to_dict_shape(self, report):
        d = report.to_dict()
        json.dumps(d)
        assert d["ok"] and d["n_geometries"] == 4
        assert d["primes"] == [5]

    def test_ks_filter_skips_invalid(self):
        # k=6 is invalid everywhere at p=5 and must be skipped silently.
        rep = run_analysis(["rdp"], primes=(5,), ks=(3, 6))
        assert [r["k"] for r in rep.results] == [3]
