"""The paper's worked examples as executable oracles (p = 5).

These tests pin the implementation to the concrete traces in §III-B and
§III-C, including the erratum we found while reproducing: the printed
syndrome list for the decode example omits two surviving cells and
therefore under-counts the example by 2 XORs.
"""

import numpy as np
import pytest

from repro.core.decoder import decode_schedule
from repro.core.encoder import encode_schedule
from repro.engine.executor import execute_bits


@pytest.fixture
def codeword(random_bits):
    bits = random_bits(7, 5)
    execute_bits(encode_schedule(5, 5), bits)
    return bits


def b(bits, i, j):
    """The paper's b_{i,j}: row i, column j."""
    return int(bits[j, i])


class TestEncodingExample:
    """§III-B: the 14-step, 40-XOR optimal encoding for p = 5."""

    def test_step_values(self, random_bits):
        bits = random_bits(7, 5)
        d = lambda i, j: int(bits[j, i])
        out = bits.copy()
        execute_bits(encode_schedule(5, 5), out)
        # Steps 1-4 + 5-9: row parities with reused common expressions.
        assert b(out, 0, 5) == d(0, 1) ^ d(0, 2) ^ d(0, 0) ^ d(0, 3) ^ d(0, 4)
        assert b(out, 1, 5) == d(1, 3) ^ d(1, 4) ^ d(1, 0) ^ d(1, 1) ^ d(1, 2)
        assert b(out, 2, 5) == d(2, 0) ^ d(2, 1) ^ d(2, 2) ^ d(2, 3) ^ d(2, 4)
        assert b(out, 3, 5) == d(3, 2) ^ d(3, 3) ^ d(3, 0) ^ d(3, 1) ^ d(3, 4)
        assert b(out, 4, 5) == d(4, 0) ^ d(4, 1) ^ d(4, 2) ^ d(4, 3) ^ d(4, 4)
        # Steps 10-14: anti-diagonal parities.
        assert b(out, 0, 6) == d(0, 0) ^ d(1, 1) ^ d(2, 2) ^ d(3, 3) ^ d(4, 4)
        assert b(out, 1, 6) == d(3, 2) ^ d(3, 3) ^ d(0, 4) ^ d(1, 0) ^ d(2, 1) ^ d(4, 3)
        assert b(out, 2, 6) == d(2, 0) ^ d(2, 1) ^ d(3, 1) ^ d(4, 2) ^ d(0, 3) ^ d(1, 4)
        assert b(out, 3, 6) == d(1, 3) ^ d(1, 4) ^ d(3, 0) ^ d(4, 1) ^ d(0, 2) ^ d(2, 4)
        assert b(out, 4, 6) == d(0, 1) ^ d(0, 2) ^ d(4, 0) ^ d(1, 2) ^ d(2, 3) ^ d(3, 4)

    def test_exactly_40_xors(self):
        assert encode_schedule(5, 5).n_xors == 40


class TestDecodingExample:
    """§III-C: columns 1 and 3 erased, recovered via the 11-step trace."""

    def test_full_recovery(self, codeword, rng):
        dmg = codeword.copy()
        dmg[1, :] = rng.integers(0, 2, 5)
        dmg[3, :] = rng.integers(0, 2, 5)
        execute_bits(decode_schedule(5, 5, [1, 3]), dmg)
        assert np.array_equal(dmg, codeword)

    def test_erratum_trace_consistency(self, codeword):
        """Re-runs the paper's 11-step hand trace with the two corrected
        syndromes; every intermediate value must match the codeword.

        As printed, S3Q = b30^b02^b36 and S4Q = b40^b34^b46; equations
        (1)-(2) require the extra surviving terms b24 and b12.  With
        them the trace is exact (and costs 41 XORs, not 39).
        """
        w = codeword
        S_P = [
            b(w, 0, 0) ^ b(w, 0, 4) ^ b(w, 0, 5),
            b(w, 1, 0) ^ b(w, 1, 2) ^ b(w, 1, 5),
            b(w, 2, 2) ^ b(w, 2, 4) ^ b(w, 2, 5),
            b(w, 3, 0) ^ b(w, 3, 4) ^ b(w, 3, 5),
            b(w, 4, 0) ^ b(w, 4, 2) ^ b(w, 4, 4) ^ b(w, 4, 5),
        ]
        S_Q = [
            b(w, 0, 0) ^ b(w, 2, 2) ^ b(w, 4, 4) ^ b(w, 0, 6),
            b(w, 1, 0) ^ b(w, 0, 4) ^ b(w, 1, 6),
            b(w, 4, 2) ^ b(w, 1, 4) ^ b(w, 2, 6),
            b(w, 3, 0) ^ b(w, 0, 2) ^ b(w, 2, 4) ^ b(w, 3, 6),  # + b24
            b(w, 4, 0) ^ b(w, 3, 4) ^ b(w, 1, 2) ^ b(w, 4, 6),  # + b12
        ]
        # Starting point: b31 = S0P ^ S4Q ^ S2P ^ S2Q.
        b31 = S_P[0] ^ S_Q[4] ^ S_P[2] ^ S_Q[2]
        assert b31 == b(w, 3, 1)
        # Steps 1-11.
        e3 = b31 ^ S_P[3]
        S_Q[1] ^= e3
        b33 = b(w, 3, 2) ^ e3
        assert b33 == b(w, 3, 3)
        b11 = b33 ^ S_Q[0]
        assert b11 == b(w, 1, 1)
        e1 = b11 ^ S_P[1]
        b13 = e1 ^ b(w, 1, 4)
        b41 = e1 ^ S_Q[3]
        assert b13 == b(w, 1, 3) and b41 == b(w, 4, 1)
        b43 = b41 ^ S_P[4]
        assert b43 == b(w, 4, 3)
        b21 = b43 ^ S_Q[1]
        assert b21 == b(w, 2, 1)
        e2 = b(w, 2, 0) ^ b21
        b23 = e2 ^ S_P[2]
        assert b23 == b(w, 2, 3)
        e0 = b23 ^ S_Q[4]
        b01 = e0 ^ b(w, 0, 2)
        b03 = e0 ^ S_P[0]
        assert b01 == b(w, 0, 1) and b03 == b(w, 0, 3)

    def test_printed_syndromes_are_inconsistent(self, codeword):
        """Negative control: with the syndromes exactly as printed the
        starting point does not reproduce b31 in general."""
        mismatches = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            bits = rng.integers(0, 2, (7, 5)).astype(np.uint8)
            execute_bits(encode_schedule(5, 5), bits)
            w = bits
            s0p = b(w, 0, 0) ^ b(w, 0, 4) ^ b(w, 0, 5)
            s2p = b(w, 2, 2) ^ b(w, 2, 4) ^ b(w, 2, 5)
            s2q = b(w, 4, 2) ^ b(w, 1, 4) ^ b(w, 2, 6)
            s4q_printed = b(w, 4, 0) ^ b(w, 3, 4) ^ b(w, 4, 6)  # missing b12
            if (s0p ^ s4q_printed ^ s2p ^ s2q) != b(w, 3, 1):
                mismatches += 1
        assert mismatches > 0

    def test_corrected_xor_count(self):
        assert decode_schedule(5, 5, [1, 3]).n_xors == 41
