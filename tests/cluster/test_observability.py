"""Cluster observability on the sim seam: the ``metrics`` verb's
Prometheus exposition and tracer spans through client + node."""

import asyncio

import numpy as np

from repro.cluster import LocalCluster, send_verb
from repro.codes import make_code
from repro.obs.tracing import Tracer
from repro.sim import MemoryTransport, VirtualClock

from .conftest import FAST_POLICY


def traced_sim_cluster(k=3, p=5, element_size=64, n_stripes=4, tracer=None):
    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    cluster = LocalCluster(
        code, n_stripes, transport=MemoryTransport(), clock=VirtualClock(),
        tracer=tracer,
    )
    return code, cluster


class TestMetricsVerb:
    def test_prometheus_exposition(self):
        async def go():
            code, cluster = traced_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = np.arange(arr.capacity, dtype=np.uint8).tobytes()
                await arr.write(0, data)
                await arr.read(0, 64)
                reply, payload = await send_verb(
                    cluster.addresses[0], "metrics",
                    transport=cluster.transport,
                )
                return reply, payload.decode()

        reply, text = asyncio.run(go())
        assert reply["status"] == "ok"
        assert reply["content_type"].startswith("text/plain")
        assert "# TYPE repro_requests_put_total counter" in text
        assert "# TYPE repro_disk_n_strips gauge" in text
        # Every sample carries the node's column label.
        samples = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert samples and all('column="0"' in ln for ln in samples)

    def test_counts_agree_with_the_stats_verb(self):
        async def go():
            code, cluster = traced_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, bytes(arr.capacity))
                stats_reply, _ = await send_verb(
                    cluster.addresses[1], "stats", transport=cluster.transport
                )
                _, prom = await send_verb(
                    cluster.addresses[1], "metrics", transport=cluster.transport
                )
                return stats_reply, prom.decode()

        stats_reply, prom = asyncio.run(go())
        puts = stats_reply["stats"]["counters"]["requests_put"]
        assert f'repro_requests_put_total{{column="1"}} {puts}' in prom


class TestClusterTracing:
    def test_spans_cover_rpcs_and_dispatches(self):
        tracer = Tracer()

        async def go():
            code, cluster = traced_sim_cluster(tracer=tracer)
            tracer.now = cluster.clock.time
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, bytes(arr.capacity))
                await arr.read(0, 64)

        asyncio.run(go())
        names = {s.name for s in tracer.spans}
        assert "rpc.put" in names and "node.put" in names
        assert "rpc.get" in names and "node.get" in names
        # Client-side spans record the request outcome and sizes.
        rpc = tracer.find("rpc.put")[0]
        assert rpc.attrs["outcome"] == "ok"
        assert rpc.attrs["bytes_out"] > 0
        # Virtual timestamps: deterministic, non-negative durations.
        assert all(s.duration is not None and s.duration >= 0
                   for s in tracer.spans)

    def test_untraced_cluster_records_nothing(self):
        async def go():
            code, cluster = traced_sim_cluster(tracer=None)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, bytes(arr.capacity))

        asyncio.run(go())  # no tracer anywhere: must simply not crash
