"""Client-robustness regressions: timeouts, degraded writes, hedging.

The satellite guarantees of the self-healing work: ``send_verb`` can
never hang a control-plane caller (its timeout runs on the injectable
clock, so the regression test costs virtual seconds only),
``write_stripe`` reports exactly which columns it skipped and queues
them for the scrubber, and hedged reads cut tail latency without
losing determinism.
"""

import asyncio

import pytest

from repro.array.faults import NetworkFaultPlan
from repro.cluster import ClusterDegradedError, RetryPolicy, send_verb
from tests.cluster.conftest import FAST_POLICY, payload_for, sim_cluster


class TestSendVerbTimeout:
    def test_hung_node_times_out_in_virtual_seconds(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                # Service latency far beyond the timeout: without the
                # bound, this call would stall for 60 virtual seconds.
                cluster.nodes[0].faults = NetworkFaultPlan(latency=60.0)
                clock = cluster.clock
                t0 = clock.time()
                with pytest.raises((asyncio.TimeoutError, TimeoutError)):
                    await send_verb(
                        cluster.addresses[0], "ping",
                        transport=cluster.transport, clock=clock, timeout=0.5,
                    )
                elapsed = clock.time() - t0
                assert 0.5 <= elapsed < 1.0

        asyncio.run(run())

    def test_timeout_none_waits_out_the_latency(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                cluster.nodes[0].faults = NetworkFaultPlan(latency=2.0)
                reply, _ = await send_verb(
                    cluster.addresses[0], "ping",
                    transport=cluster.transport, clock=cluster.clock,
                    timeout=None,
                )
                assert reply["status"] == "ok"

        asyncio.run(run())

    def test_default_timeout_is_bounded(self):
        """The default must be a finite number -- a bare send_verb call
        against a dead address cannot hang forever."""
        import inspect

        sig = inspect.signature(send_verb)
        default = sig.parameters["timeout"].default
        assert isinstance(default, (int, float))
        assert 0 < default <= 60


class TestDegradedWriteReporting:
    def test_clean_write_reports_nothing(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                buf = code.alloc_stripe()
                buf[: code.k] = 5
                code.encode(buf)
                assert await arr.write_stripe(0, buf) == []
                assert arr.dirty_stripes == {}

        asyncio.run(run())

    def test_skipped_columns_returned_and_queued(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                buf = code.alloc_stripe()
                buf[: code.k] = 5
                code.encode(buf)
                await cluster.stop_node(1)
                await cluster.stop_node(3)
                assert await arr.write_stripe(2, buf) == [1, 3]
                assert arr.dirty_stripes == {2: {1, 3}}
                # A later clean full write clears the stripe's debt.
                await cluster.restart_node(1)
                await cluster.restart_node(3)
                arr.replace_node(1, cluster.nodes[1].address)
                arr.replace_node(3, cluster.nodes[3].address)
                assert await arr.write_stripe(2, buf) == []
                assert arr.dirty_stripes == {}

        asyncio.run(run())

    def test_beyond_budget_raises(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                buf = code.alloc_stripe()
                buf[: code.k] = 5
                code.encode(buf)
                for col in (0, 2, 4):
                    await cluster.stop_node(col)
                with pytest.raises(ClusterDegradedError):
                    await arr.write_stripe(0, buf)

        asyncio.run(run())


class TestHedgedReads:
    def test_hedge_beats_a_slow_node(self):
        """One slow response: the hedge twin answers first, and the
        read finishes in ~hedge_after instead of the full latency."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                patient = RetryPolicy(attempts=2, timeout=10.0, backoff=0.01)
                arr = cluster.array(policy=patient, hedge_after=0.2)
                data = payload_for(arr)
                await arr.write(0, data)
                # Only the next request is slow (a stall, not an outage):
                # the hedge twin dials the same node and wins.
                cluster.nodes[0].faults = NetworkFaultPlan(
                    latency=5.0, slow_requests=1
                )
                t0 = cluster.clock.time()
                stripe = await arr.read_stripe(0)
                elapsed = cluster.clock.time() - t0
                assert stripe is not None
                assert arr.metrics.get("hedged_requests") >= 1
                assert arr.metrics.get("hedge_wins") >= 1
                assert elapsed < 5.0  # did not wait out the stall

        asyncio.run(run())

    def test_hedging_is_transparent_on_a_healthy_cluster(self):
        """With no slow node, hedged and unhedged arrays read the same
        bytes (a hedge twin is a duplicate request, never a new state)."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY, hedge_after=0.2)
                data = payload_for(arr)
                await arr.write(0, data)
                assert await arr.read(0, arr.capacity) == data
                plain = cluster.array(policy=FAST_POLICY)
                assert await plain.read(0, arr.capacity) == data

        asyncio.run(run())
