"""Tests of a single strip node over real loopback sockets.

Marked slow: these bind actual TCP ports and pay real retry backoff.
The equivalent logic runs socket-free in ``tests/sim`` and the
sim-seam cluster tests; this module keeps the production transport
honest (run with ``-m ""`` or ``-m slow``).
"""

import asyncio

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.array.faults import NetworkFaultPlan
from repro.cluster import NodeClient, RemoteDiskError, RetryPolicy, StripNode, send_verb
from repro.utils.words import WORD_DTYPE

STRIP_WORDS = 10


def run_with_node(coro_fn, *, n_strips=8):
    """Start a node, run ``coro_fn(node, client)``, tear down."""

    async def run():
        node = StripNode(0, n_strips, STRIP_WORDS)
        await node.start()
        client = NodeClient(
            node.address,
            policy=RetryPolicy(attempts=2, timeout=0.5, backoff=0.01),
        )
        try:
            return await coro_fn(node, client)
        finally:
            await node.stop()

    return asyncio.run(run())


def strip(seed=0) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 2**64, STRIP_WORDS, dtype=WORD_DTYPE
    )


class TestBasicVerbs:
    def test_ping(self):
        async def go(node, client):
            reply, _ = await client.request("ping")
            return reply

        assert run_with_node(go)["column"] == 0

    def test_put_get_round_trip(self):
        data = strip(1)

        async def go(node, client):
            await client.request("put", {"stripe": 3}, data.tobytes())
            _, payload = await client.request("get", {"stripe": 3})
            return payload

        assert run_with_node(go) == data.tobytes()

    def test_unwritten_strip_reads_zero(self):
        async def go(node, client):
            _, payload = await client.request("get", {"stripe": 0})
            return payload

        assert run_with_node(go) == b"\0" * (STRIP_WORDS * 8)

    def test_unknown_verb_is_error_not_disconnect(self):
        async def go(node, client):
            with pytest.raises(Exception):
                await client.request("frobnicate")
            reply, _ = await client.request("ping")  # connection model intact
            return reply

        assert run_with_node(go)["status"] == "ok"

    def test_stats_reflects_traffic(self):
        async def go(node, client):
            await client.request("put", {"stripe": 0}, strip().tobytes())
            await client.request("get", {"stripe": 0})
            reply, _ = await client.request("stats")
            return reply

        reply = run_with_node(go)
        assert reply["stats"]["counters"]["requests_put"] == 1
        assert reply["stats"]["counters"]["requests_get"] == 1
        assert reply["disk"]["reads"] == 1 and reply["disk"]["writes"] == 1


class TestDiskFaultsOverTheWire:
    def test_latent_error_reported_not_retried(self):
        async def go(node, client):
            node.disk.mark_latent_error(2)
            with pytest.raises(RemoteDiskError):
                await client.request("get", {"stripe": 2})
            return client.metrics.get("retries")

        assert run_with_node(go) == 0  # deterministic answer: no retry spent

    def test_failed_disk_reported(self):
        async def go(node, client):
            node.disk.fail()
            with pytest.raises(RemoteDiskError):
                await client.request("get", {"stripe": 0})

        run_with_node(go)

    def test_fault_verb_drives_disk_and_plan(self):
        async def go(node, client):
            await client.request(
                "fault",
                {"plan": NetworkFaultPlan(latency=0.25).to_header(), "latent": [1]},
            )
            assert node.faults.latency == 0.25
            assert 1 in node.disk._latent
            await client.request("fault", {"replace": True})
            return node.faults.latency, node.disk._latent

        latency, latent = run_with_node(go)
        assert latency == 0.0 and latent == set()

    def test_bad_stripe_index_is_bad_request(self):
        async def go(node, client):
            try:
                await client.request("get", {"stripe": 999})
            except Exception as exc:
                return type(exc).__name__

        # index error -> bad-request -> retried as transient -> unavailable
        assert run_with_node(go) == "NodeUnavailableError"


class TestShutdown:
    def test_shutdown_verb_stops_serving(self):
        async def run():
            node = StripNode(0, 4, STRIP_WORDS)
            await node.start()
            addr = node.address
            server_task = asyncio.ensure_future(node.serve_until_shutdown())
            reply, _ = await send_verb(addr, "shutdown")
            await asyncio.wait_for(server_task, timeout=2)
            return reply, node.running

        reply, running = asyncio.run(run())
        assert reply["status"] == "ok" and not running
