"""Membership drills: epoch-numbered table + heartbeat monitor.

The table is pure state-machine logic (no I/O), so the transition
tests are plain unit tests; the monitor drills run on the simulation
seam and prove the heartbeat actually drives the table -- misses to
DEAD, answers to LIVE -- with every change visible as an epoch bump.
"""

import asyncio

import pytest

from repro.cluster import MembershipError, MembershipTable
from repro.cluster.membership import NodeState
from repro.obs.metrics import MetricsRegistry
from tests.cluster.conftest import FAST_POLICY, elastic_sim_cluster, payload_for


def table_of(n: int, *, live: bool = True) -> MembershipTable:
    table = MembershipTable()
    for i in range(n):
        table.join(f"n{i}", ("127.0.0.1", 9000 + i), live=live)
    return table


class TestMembershipTable:
    def test_every_mutation_bumps_the_epoch(self):
        table = MembershipTable()
        seen = [table.epoch]
        seen.append(table.join("n0", ("127.0.0.1", 9000)))
        seen.append(table.mark_live("n0"))
        seen.append(table.drain("n0"))
        seen.append(table.remove("n0"))
        seen.append(table.bump())
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)  # strictly monotonic

    def test_join_lifecycle(self):
        table = MembershipTable()
        table.join("n0", ("127.0.0.1", 9000))
        assert table.state_of("n0") is NodeState.JOINING
        assert "n0" not in table.placement_pool()
        table.mark_live("n0")
        assert table.state_of("n0") is NodeState.LIVE
        assert table.placement_pool() == ("n0",)

    def test_live_join_skips_joining(self):
        table = table_of(1)
        assert table.state_of("n0") is NodeState.LIVE

    def test_rejoining_a_serving_node_is_an_error(self):
        table = table_of(1)
        with pytest.raises(MembershipError):
            table.join("n0", ("127.0.0.1", 9100))

    def test_rejoining_a_dead_node_revives_it(self):
        table = table_of(1)
        table.mark_dead("n0")
        table.join("n0", ("127.0.0.1", 9100), live=True)
        assert table.state_of("n0") is NodeState.LIVE
        assert table.address_of("n0") == ("127.0.0.1", 9100)

    def test_draining_serves_but_does_not_place(self):
        table = table_of(3)
        table.drain("n1")
        assert table.state_of("n1") is NodeState.DRAINING
        assert "n1" in table.serving()
        assert "n1" not in table.placement_pool()
        table.remove("n1")
        assert table.state_of("n1") is NodeState.LEFT
        assert "n1" not in table.serving()
        assert "n1" not in table.probed()

    def test_illegal_transitions_raise(self):
        table = table_of(2)
        with pytest.raises(MembershipError):
            table.remove("n0")  # LIVE cannot leave without drain/death
        table.mark_dead("n1")
        with pytest.raises(MembershipError):
            table.drain("n1")  # DEAD cannot drain
        with pytest.raises(MembershipError):
            table.mark_dead("n1")  # already dead
        with pytest.raises(MembershipError):
            table.state_of("ghost")
        with pytest.raises(MembershipError):
            table.mark_live("ghost")

    def test_drain_cancel_returns_to_live(self):
        table = table_of(2)
        table.drain("n0")
        table.mark_live("n0")
        assert table.state_of("n0") is NodeState.LIVE
        assert "n0" in table.placement_pool()

    def test_counts_by_state(self):
        table = table_of(3)
        table.drain("n0")
        table.mark_dead("n1")
        counts = table.counts()
        assert counts["live"] == 1
        assert counts["draining"] == 1
        assert counts["dead"] == 1

    def test_header_round_trip(self):
        table = table_of(3)
        table.drain("n1")
        table.mark_dead("n2")
        clone = MembershipTable.from_header(table.to_header())
        assert clone.epoch == table.epoch
        assert set(clone.nodes) == set(table.nodes)
        for node_id in table.nodes:
            assert clone.state_of(node_id) is table.state_of(node_id)
            assert clone.address_of(node_id) == table.address_of(node_id)

    def test_metrics_export(self):
        reg = MetricsRegistry()
        table = MembershipTable(metrics=reg)
        table.join("n0", ("127.0.0.1", 9000), live=True)
        snap = reg.snapshot()["gauges"]
        assert snap["membership_epoch"] == table.epoch
        assert snap["membership_nodes_live"] == 1


class TestMembershipMonitor:
    def test_misses_mark_dead_after_threshold(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                monitor = cluster.monitor(arr, miss_threshold=2, probe_timeout=0.2)
                await cluster.stop_node("n1")
                await monitor.probe_once()
                assert arr.membership.state_of("n1") is NodeState.LIVE  # one miss
                epoch_before = arr.membership.epoch
                await monitor.probe_once()
                assert arr.membership.state_of("n1") is NodeState.DEAD
                assert arr.membership.epoch > epoch_before
                assert "n1" not in arr.membership.placement_pool()

        asyncio.run(run())

    def test_answering_probe_revives_a_dead_node(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                monitor = cluster.monitor(arr, miss_threshold=1, probe_timeout=0.2)
                await cluster.stop_node("n2")
                await monitor.probe_once()
                assert arr.membership.state_of("n2") is NodeState.DEAD
                await cluster.restart_node("n2")
                await monitor.probe_once()
                assert arr.membership.state_of("n2") is NodeState.LIVE

        asyncio.run(run())

    def test_probe_promotes_joining_to_live(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                monitor = cluster.monitor(arr, miss_threshold=2, probe_timeout=0.2)
                node_id = await cluster.add_node(live=False)
                assert arr.membership.state_of(node_id) is NodeState.JOINING
                assert node_id not in arr.membership.placement_pool()
                await monitor.probe_once()
                assert arr.membership.state_of(node_id) is NodeState.LIVE
                assert node_id in arr.membership.placement_pool()

        asyncio.run(run())

    def test_on_change_fires_with_the_new_epoch(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                epochs = []
                monitor = cluster.monitor(
                    arr, miss_threshold=1, probe_timeout=0.2,
                    on_change=epochs.append,
                )
                await monitor.probe_once()
                assert epochs == []  # healthy round: no mutation
                await cluster.stop_node("n0")
                await monitor.probe_once()
                assert epochs == [arr.membership.epoch]

        asyncio.run(run())

    def test_foreground_io_survives_a_heartbeat_detected_death(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=3)
                await arr.write(0, data)
                victim = arr.holders(0)[0]
                monitor = cluster.monitor(arr, miss_threshold=1, probe_timeout=0.2)
                await cluster.stop_node(victim)
                await monitor.probe_once()
                assert arr.membership.state_of(victim) is NodeState.DEAD
                back = await arr.read(0, arr.capacity)
                assert back == data
                assert arr.metrics.snapshot()["counters"]["decodes"] > 0

        asyncio.run(run())
