"""Placement unit drills: rendezvous determinism and minimal movement.

Placement is pure arithmetic over (stripe, column, node_id), so these
tests need no cluster at all: they pin that the function is a stable
contract (any two processes agree on where a stripe lives), that every
stripe lands on ``n_cols`` distinct nodes, and that churn moves only
the strips it must -- the property that makes rebalancing affordable.
"""

import pytest

from repro.cluster import MembershipTable, PlacementError, PlacementMap, place_stripe
from repro.cluster.placement import movement_fraction, placement_score


def pool(n: int) -> list[str]:
    return [f"n{i}" for i in range(n)]


class TestPlaceStripe:
    def test_deterministic_across_calls(self):
        nodes = pool(8)
        for stripe in range(32):
            first = place_stripe(stripe, nodes, 5)
            assert place_stripe(stripe, nodes, 5) == first

    def test_pool_order_does_not_matter(self):
        nodes = pool(8)
        shuffled = list(reversed(nodes))
        for stripe in range(32):
            assert place_stripe(stripe, nodes, 5) == place_stripe(stripe, shuffled, 5)

    def test_columns_land_on_distinct_nodes(self):
        nodes = pool(7)
        for stripe in range(64):
            placed = place_stripe(stripe, nodes, 5)
            assert len(placed) == 5
            assert len(set(placed)) == 5
            assert set(placed) <= set(nodes)

    def test_score_is_a_stable_64_bit_contract(self):
        # Any two processes (client, node, rebalancer) must compute the
        # same score from the same inputs -- pin one value forever.
        score = placement_score(0, 0, "n0")
        assert 0 <= score < 2**64
        assert score == placement_score(0, 0, "n0")
        # Distinct inputs diverge (not a constant function).
        assert len({placement_score(s, c, "n0") for s in range(4) for c in range(4)}) > 1

    def test_pool_too_small_is_an_error(self):
        with pytest.raises(PlacementError):
            place_stripe(0, pool(4), 5)
        with pytest.raises(PlacementError):
            place_stripe(0, [], 2)


class TestMinimalMovement:
    N_STRIPES = 128
    N_COLS = 5

    def layout(self, nodes):
        return [place_stripe(s, nodes, self.N_COLS) for s in range(self.N_STRIPES)]

    def test_adding_a_node_moves_a_small_fraction(self):
        before = self.layout(pool(10))
        after = self.layout(pool(11))
        frac = movement_fraction(before, after)
        # Rendezvous: each slot moves to the new node with probability
        # ~1/11, plus a small exclusion-chain cascade; anything near a
        # full reshuffle is a regression.
        assert 0.0 < frac < 0.25
        # The bulk of the movement is strips won *by* the new node; the
        # rest is the bounded cascade through per-stripe exclusion.
        moved = [
            (a, b)
            for old, new in zip(before, after)
            for a, b in zip(old, new)
            if a != b
        ]
        landed_on_new = sum(1 for _, b in moved if b == "n10")
        assert landed_on_new >= len(moved) // 2

    def test_removing_a_node_moves_only_its_strips(self):
        nodes = pool(10)
        before = self.layout(nodes)
        after = self.layout([n for n in nodes if n != "n3"])
        # Every strip the departed node held must move...
        for old, new in zip(before, after):
            for a, b in zip(old, new):
                if a == "n3":
                    assert b != "n3"
        # ...and total movement stays close to just those strips: the
        # exclusion cascade adds a little, never a reshuffle.
        held = sum(row.count("n3") for row in before)
        total = self.N_STRIPES * self.N_COLS
        frac = movement_fraction(before, after)
        assert held / total <= frac < 2.0 * held / total

    def test_identical_layouts_move_nothing(self):
        layout = self.layout(pool(9))
        assert movement_fraction(layout, layout) == 0.0


class TestPlacementMap:
    def make_table(self, n):
        table = MembershipTable()
        for i in range(n):
            table.join(f"n{i}", ("127.0.0.1", 9000 + i), live=True)
        return table

    def test_resolves_against_live_pool(self):
        table = self.make_table(7)
        pmap = PlacementMap(table, 5)
        placed = pmap.nodes_for(0)
        assert placed == place_stripe(0, table.placement_pool(), 5)
        assert pmap.node_for(0, 3) == placed[3]

    def test_cache_revalidates_when_the_pool_changes(self):
        table = self.make_table(7)
        pmap = PlacementMap(table, 5)
        before = [pmap.nodes_for(s) for s in range(32)]
        # Same pool -> the cache answers and answers identically.
        assert [pmap.nodes_for(s) for s in range(32)] == before
        table.join("n7", ("127.0.0.1", 9007), live=True)
        after = [pmap.nodes_for(s) for s in range(32)]
        assert after == [place_stripe(s, table.placement_pool(), 5) for s in range(32)]
        assert movement_fraction(before, after) < 0.35

    def test_draining_node_leaves_the_pool(self):
        table = self.make_table(8)
        pmap = PlacementMap(table, 5)
        table.drain("n2")
        for s in range(32):
            assert "n2" not in pmap.nodes_for(s)

    def test_pool_below_n_cols_raises(self):
        table = self.make_table(5)
        pmap = PlacementMap(table, 5)
        table.drain("n0")
        with pytest.raises(PlacementError):
            pmap.nodes_for(0)
