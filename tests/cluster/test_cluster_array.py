"""End-to-end tests of the distributed array: striping, degraded
reads with any two nodes stopped, metrics, and background rebuild.

Everything runs on the simulation seam (in-memory transport + virtual
clock): same code paths as production, none of the socket timing
noise.  Real-socket coverage lives in ``test_node.py`` (marked slow).
"""

import asyncio
import itertools

import numpy as np
import pytest

from repro.cluster import ClusterArray, ClusterDegradedError, RebuildScheduler, RetryPolicy
from tests.cluster.conftest import FAST_POLICY, payload_for, sim_cluster


class TestHealthyPath:
    def test_write_read_round_trip(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=1)
                await arr.write(0, data)
                return data, await arr.read(0, arr.capacity)

        data, back = asyncio.run(run())
        assert back == data

    def test_unaligned_rmw_write(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = bytearray(payload_for(arr, seed=2))
                await arr.write(0, bytes(data))
                patch = b"X" * 333
                off = arr.stripe_data_bytes // 2  # straddles a stripe boundary
                await arr.write(off, patch)
                data[off : off + len(patch)] = patch
                back = await arr.read(0, arr.capacity)
                return bytes(data), back, arr.metrics.get("rmw_writes")

        data, back, rmw = asyncio.run(run())
        assert back == data
        assert rmw > 0

    def test_partial_reads_slice_correctly(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=4)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=3)
                await arr.write(0, data)
                sdb = arr.stripe_data_bytes
                reads = [(0, 10), (sdb - 5, 10), (sdb * 2 + 7, sdb), (arr.capacity - 1, 1)]
                got = [await arr.read(off, ln) for off, ln in reads]
                return data, reads, got

        data, reads, got = asyncio.run(run())
        for (off, ln), blob in zip(reads, got):
            assert blob == data[off : off + ln]

    def test_out_of_range_io_rejected(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=2)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                with pytest.raises(ValueError):
                    await arr.read(0, arr.capacity + 1)
                with pytest.raises(ValueError):
                    await arr.write(arr.capacity - 1, b"xy")

        asyncio.run(run())

    def test_address_count_validated(self):
        code, cluster = sim_cluster()
        with pytest.raises(ValueError):
            ClusterArray(code, [("127.0.0.1", 1)] * (code.n_cols - 1), 4)


class TestDegradedReads:
    def test_any_two_nodes_down_reads_are_byte_identical(self):
        """The acceptance drill: every 2-of-(k+2) loss pattern."""

        async def run():
            code, _ = sim_cluster(n_stripes=4)
            victims = list(itertools.combinations(range(code.n_cols), 2))
            results = []
            for pair in victims:
                async with sim_cluster(n_stripes=4)[1] as cl:
                    arr = cl.array(policy=FAST_POLICY)
                    data = payload_for(arr, seed=7)
                    await arr.write(0, data)
                    for col in pair:
                        await cl.stop_node(col)
                    back = await arr.read(0, arr.capacity)
                    stats = await arr.stats()
                    results.append((pair, back == data,
                                    stats["client"]["counters"].get("decodes", 0),
                                    stats["client"]["counters"].get("retries", 0)))
            return code.k, results

        k, results = asyncio.run(run())
        for pair, intact, decodes, retries in results:
            assert intact, f"corrupt read with nodes {pair} down"
            if any(col < k for col in pair):
                # A lost data column forces the decode + retry machinery;
                # parity-only loss is invisible to reads (tested below).
                assert decodes > 0, f"no decode recorded for {pair}"
                assert retries > 0, f"no retry recorded for {pair}"

    def test_parity_only_loss_is_invisible_to_reads(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=3)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=8)
                await arr.write(0, data)
                await cluster.stop_node(code.p_col)
                await cluster.stop_node(code.q_col)
                back = await arr.read(0, arr.capacity)
                return data, back, arr.metrics.get("decodes")

        data, back, decodes = asyncio.run(run())
        assert back == data
        assert decodes == 0  # sunny path never touches parity

    def test_three_lost_columns_raise(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=2)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr, seed=9))
                for col in (0, 1, code.q_col):
                    await cluster.stop_node(col)
                with pytest.raises(ClusterDegradedError):
                    await arr.read(0, arr.capacity)

        asyncio.run(run())

    def test_degraded_writes_stay_recoverable(self):
        """Writes while a node is down skip it; the data still reads
        back (through parity) and survives a *different* loss later."""

        async def run():
            code, cluster = sim_cluster(n_stripes=3)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=10)
                await cluster.stop_node(1)
                await arr.write(0, data)
                assert arr.metrics.get("degraded_writes") > 0
                back_degraded = await arr.read(0, arr.capacity)
                return data, back_degraded

        data, back = asyncio.run(run())
        assert back == data


class TestRebuild:
    def test_rebuild_restores_full_redundancy(self):
        """Lose two nodes, rebuild both, then survive losing two more."""

        async def run():
            code, cluster = sim_cluster(n_stripes=5)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=11)
                await arr.write(0, data)
                dead = [1, code.p_col]
                for col in dead:
                    await cluster.stop_node(col)

                for col in dead:
                    addr = await cluster.start_replacement(col)
                    sched = RebuildScheduler(arr, batch_stripes=2, workers=2)
                    sched.start(col, addr)
                    rebuilt = await sched.wait()
                    assert rebuilt == arr.n_stripes
                    done, total = sched.progress
                    assert done == total
                    cluster.promote_replacement(col)

                assert all(await arr.ping())
                # Full redundancy again: a fresh double loss elsewhere
                # must still decode.
                for col in (0, code.q_col):
                    await cluster.stop_node(col)
                back = await arr.read(0, arr.capacity)
                stats = await arr.stats()
                return data, back, stats

        data, back, stats = asyncio.run(run())
        assert back == data
        assert stats["client"]["counters"]["rebuild_stripes_done"] == 10

    def test_array_serves_while_rebuild_runs(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=6)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=12)
                await arr.write(0, data)
                await cluster.stop_node(0)
                addr = await cluster.start_replacement(0)
                sched = RebuildScheduler(arr, batch_stripes=2)
                task = sched.start(0, addr)
                # Interleave live degraded reads with the background task.
                back = await arr.read(0, arr.capacity)
                await sched.wait()
                cluster.promote_replacement(0)
                assert task.done()
                return data, back

        data, back = asyncio.run(run())
        assert back == data

    def test_rebuild_survives_concurrent_second_loss(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=4)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=13)
                await arr.write(0, data)
                await cluster.stop_node(1)
                await cluster.stop_node(code.q_col)  # second loss before rebuild
                addr = await cluster.start_replacement(1)
                sched = RebuildScheduler(arr, batch_stripes=2)
                await sched.rebuild_column(1, addr)
                cluster.promote_replacement(1)
                back = await arr.read(0, arr.capacity)
                return data, back

        data, back = asyncio.run(run())
        assert back == data


class TestStatsView:
    def test_stats_aggregates_client_and_nodes(self):
        async def run():
            code, cluster = sim_cluster(n_stripes=2)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr, seed=14))
                await arr.read(0, arr.capacity)
                await cluster.stop_node(0)
                return code, await arr.stats()

        code, stats = asyncio.run(run())
        assert stats["client"]["counters"]["full_stripe_writes"] == 2
        assert stats["nodes"][0] is None  # stopped node reports as unreachable
        live = [n for n in stats["nodes"] if n is not None]
        assert len(live) == code.n_cols - 1
        assert all(n["stats"]["counters"]["requests_put"] >= 2 for n in live)
        # request latency histogram populated on the client
        assert stats["client"]["histograms"]["request_latency_s"]["count"] > 0
