"""Shared helpers for the cluster test suite.

Tests drive asyncio directly (``asyncio.run`` per test) so the suite
has no plugin dependency.  Functional drills run on the simulation
seam (:func:`sim_cluster`: in-memory transport + virtual clock), so
timeouts and backoff consume virtual seconds only and every run is
deterministic; the handful of tests that exercise real loopback
sockets use :func:`liberation_cluster` and carry ``@pytest.mark.slow``.
"""

import numpy as np
import pytest

from repro.cluster import LocalCluster, RetryPolicy
from repro.codes import make_code
from repro.sim import MemoryTransport, VirtualClock

#: Snappy timeouts: on the virtual clock they cost nothing; on real
#: loopback the worst case per lost strip is attempts * timeout.
FAST_POLICY = RetryPolicy(attempts=2, timeout=0.5, backoff=0.01, max_backoff=0.02)


def liberation_cluster(k=3, p=5, element_size=64, n_stripes=6):
    """A small Liberation-optimal cluster on real sockets (not started)."""
    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    return code, LocalCluster(code, n_stripes)


def sim_cluster(k=3, p=5, element_size=64, n_stripes=6):
    """The same cluster on the simulation seam: zero sockets, zero
    real sleeps, deterministic scheduling."""
    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    cluster = LocalCluster(
        code, n_stripes, transport=MemoryTransport(), clock=VirtualClock()
    )
    return code, cluster


def elastic_sim_cluster(k=3, p=5, element_size=64, n_stripes=6, n_nodes=None):
    """An elastic node pool on the simulation seam.

    Defaults to ``k + 4`` nodes so churn drills have headroom to drain
    and lose nodes while the placement pool stays >= ``k + 2``.
    """
    from repro.cluster import ElasticLocalCluster

    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    if n_nodes is None:
        n_nodes = code.n_cols + 2
    cluster = ElasticLocalCluster(
        code, n_stripes, n_nodes, transport=MemoryTransport(), clock=VirtualClock()
    )
    return code, cluster


def payload_for(array, *, seed=0) -> bytes:
    """Deterministic user data filling the whole array."""
    rng = np.random.default_rng(seed)
    return rng.bytes(array.capacity)


@pytest.fixture
def fast_policy():
    return RetryPolicy(attempts=2, timeout=0.5, backoff=0.01, max_backoff=0.02)
