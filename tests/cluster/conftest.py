"""Shared helpers for the cluster test suite.

Tests drive asyncio directly (``asyncio.run`` per test) so the suite
has no plugin dependency; the retry policy below keeps the failure
drills fast (a fully-lost node costs one refused connection plus a
10 ms backoff per attempt).
"""

import numpy as np
import pytest

from repro.cluster import LocalCluster, RetryPolicy
from repro.codes import make_code

#: Snappy timeouts for loopback: total worst case per lost strip is
#: attempts * timeout, so keep both small.
FAST_POLICY = RetryPolicy(attempts=2, timeout=0.5, backoff=0.01, max_backoff=0.02)


def liberation_cluster(k=3, p=5, element_size=64, n_stripes=6):
    """A small Liberation-optimal cluster (not started yet)."""
    code = make_code("liberation-optimal", k, p=p, element_size=element_size)
    return code, LocalCluster(code, n_stripes)


def payload_for(array, *, seed=0) -> bytes:
    """Deterministic user data filling the whole array."""
    rng = np.random.default_rng(seed)
    return rng.bytes(array.capacity)


@pytest.fixture
def fast_policy():
    return RetryPolicy(attempts=2, timeout=0.5, backoff=0.01, max_backoff=0.02)
