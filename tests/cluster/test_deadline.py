"""Total request deadlines: the budget that caps retries + backoff.

A per-RPC ``timeout`` bounds each attempt; ``deadline`` bounds the
whole request.  These tests pin the distinction on the virtual clock:
with no deadline a slow node costs ``attempts * timeout`` (plus
backoff); with one, the request fails at the budget with the typed
:class:`DeadlineExceededError` -- which the array's degraded-read
machinery treats as just another unavailable column.
"""

import asyncio

import pytest

from repro.array.faults import ALWAYS, NetworkFaultPlan
from repro.cluster.client import (
    DeadlineExceededError,
    NodeUnavailableError,
    RetryPolicy,
)

from .conftest import sim_cluster


def run(coro):
    return asyncio.run(coro)


def slow_plan(latency=10.0):
    """Every data request to the node stalls far beyond any timeout."""
    return NetworkFaultPlan(latency=latency, slow_requests=0)


class TestDeadlineVsPerRpcTimeout:
    def test_without_deadline_cost_is_attempts_times_timeout(self):
        async def main():
            _code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=RetryPolicy(
                    attempts=3, timeout=0.2, backoff=0.01, max_backoff=0.01
                ))
                cluster.nodes[0].faults = slow_plan()
                t0 = cluster.clock.time()
                with pytest.raises(NodeUnavailableError) as exc_info:
                    await arr.clients[0].request("get", {"stripe": 0})
                elapsed = cluster.clock.time() - t0
                # Not the deadline path: the historical behaviour.
                assert not isinstance(exc_info.value, DeadlineExceededError)
                # All three attempts timed out (+ two 0.01s backoffs).
                assert elapsed == pytest.approx(3 * 0.2 + 2 * 0.01)

        run(main())

    def test_deadline_caps_the_total_budget(self):
        async def main():
            _code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=RetryPolicy(
                    attempts=3, timeout=0.2, backoff=0.01, max_backoff=0.01,
                    deadline=0.3,
                ))
                cluster.nodes[0].faults = slow_plan()
                t0 = cluster.clock.time()
                with pytest.raises(DeadlineExceededError):
                    await arr.clients[0].request("get", {"stripe": 0})
                elapsed = cluster.clock.time() - t0
                # Attempt 1 burns the full 0.2s timeout, the backoff
                # fits, attempt 2 is clipped to the ~0.09s remainder:
                # total stays at the budget, far below 3 * timeout.
                assert elapsed == pytest.approx(0.3, abs=1e-6)
                assert arr.metrics.counter("deadline_exceeded").value == 1

        run(main())

    def test_backoff_longer_than_budget_fails_without_sleeping_it(self):
        async def main():
            _code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=RetryPolicy(
                    attempts=3, timeout=1.0, backoff=5.0, max_backoff=5.0,
                    deadline=1.5,
                ))
                # Frame corruption fails each attempt fast (a retryable
                # transport error, no latency involved).
                cluster.nodes[0].faults = NetworkFaultPlan(corrupt_frames=ALWAYS)
                t0 = cluster.clock.time()
                with pytest.raises(DeadlineExceededError):
                    await arr.clients[0].request("get", {"stripe": 0})
                # The 5s backoff exceeded the remaining budget: the
                # client must give up *before* sleeping it.
                assert cluster.clock.time() - t0 < 1.5

        run(main())

    def test_deadline_is_a_node_unavailable_error(self):
        # Degraded reads, circuit breakers and health accounting all
        # classify by NodeUnavailableError; the deadline must fold in.
        assert issubclass(DeadlineExceededError, NodeUnavailableError)

    def test_generous_deadline_changes_nothing(self):
        async def main():
            _code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=RetryPolicy(
                    attempts=2, timeout=0.5, backoff=0.01, deadline=60.0
                ))
                data = bytes(i % 256 for i in range(arr.capacity))
                await arr.write(0, data)
                assert await arr.read(0, arr.capacity) == data

        run(main())


class TestDeadlineUnderDegradedReads:
    def test_degraded_read_decodes_around_a_deadline_lost_column(self):
        async def main():
            _code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=RetryPolicy(
                    attempts=3, timeout=0.2, backoff=0.01, deadline=0.3
                ))
                data = bytes(i % 251 for i in range(arr.capacity))
                await arr.write(0, data)
                cluster.nodes[1].faults = slow_plan()
                t0 = cluster.clock.time()
                assert await arr.read(0, arr.capacity) == data
                # Each stripe read gives up on the slow column at the
                # deadline and decodes; without the deadline the same
                # read would stall attempts * timeout per stripe.
                per_stripe = (cluster.clock.time() - t0) / arr.n_stripes
                assert per_stripe < 3 * 0.2

        run(main())
