"""Health-monitor drills: heartbeats, circuit breakers, auto-heal.

The breaker lifecycle runs against an injectable clock, so every
open/half-open/closed transition is exact; the monitor drills run on
the simulation seam and end with a dead column rebuilt onto a spare
without any operator involvement.
"""

import asyncio

from repro.cluster import CircuitBreaker
from repro.cluster.health import BreakerState
from tests.cluster.conftest import FAST_POLICY, payload_for, sim_cluster


class Tick:
    """Minimal settable clock for breaker unit tests."""

    def __init__(self):
        self.now = 0.0

    def time(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_lifecycle(self):
        clock = Tick()
        br = CircuitBreaker(clock, failure_threshold=3, reset_timeout=5.0)
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        br.record_failure()
        assert br.allow()  # under threshold: still closed
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert not br.allow()

        clock.now = 4.9
        assert not br.allow()  # cooldown not elapsed
        clock.now = 5.1
        assert br.state is BreakerState.HALF_OPEN
        assert br.allow()  # one trial request goes through

        br.record_success()
        assert br.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        clock = Tick()
        br = CircuitBreaker(clock, failure_threshold=3, reset_timeout=5.0)
        for _ in range(3):
            br.record_failure()
        clock.now = 6.0
        assert br.state is BreakerState.HALF_OPEN
        br.record_failure()  # the trial request failed
        assert br.state is BreakerState.OPEN
        assert not br.allow()

    def test_success_resets_failure_count(self):
        br = CircuitBreaker(Tick(), failure_threshold=3)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state is BreakerState.CLOSED  # streak was broken


class TestBreakerFlapGuard:
    def make(self, clock, **kw):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        br = CircuitBreaker(
            clock, failure_threshold=1, reset_timeout=5.0,
            min_open_interval=2.0, metrics=reg, **kw,
        )
        return br, reg

    def test_success_inside_the_open_interval_is_ignored(self):
        clock = Tick()
        br, reg = self.make(clock)
        br.record_failure()  # trips at t=0
        assert br.state is BreakerState.OPEN
        clock.now = 0.5
        br.record_success()  # an out-of-band probe got lucky
        assert br.state is BreakerState.OPEN  # guard holds the trip
        assert reg.snapshot()["counters"]["breaker_flaps"] == 1

    def test_alternating_outcomes_cannot_oscillate_the_breaker(self):
        clock = Tick()
        br, reg = self.make(clock)
        br.record_failure()
        for i in range(4):  # probe success / data failure, interleaved
            clock.now = 0.2 * (i + 1)
            br.record_success()
            br.record_failure()
        assert br.state is BreakerState.OPEN  # never flapped closed
        assert reg.snapshot()["counters"]["breaker_flaps"] == 4

    def test_success_after_the_interval_closes_normally(self):
        clock = Tick()
        br, reg = self.make(clock)
        br.record_failure()
        clock.now = 2.5  # past min_open_interval, inside reset_timeout
        br.record_success()
        assert br.state is BreakerState.CLOSED
        assert "breaker_flaps" not in reg.snapshot()["counters"]

    def test_guard_never_delays_the_half_open_trial(self):
        clock = Tick()
        br, _ = self.make(clock)
        br.record_failure()
        clock.now = 5.1  # reset_timeout elapsed
        assert br.state is BreakerState.HALF_OPEN
        br.record_success()
        assert br.state is BreakerState.CLOSED

    def test_reset_bypasses_the_guard(self):
        clock = Tick()
        br, reg = self.make(clock)
        br.record_failure()
        clock.now = 0.1
        br.reset()  # node was genuinely replaced
        assert br.state is BreakerState.CLOSED
        assert "breaker_flaps" not in reg.snapshot()["counters"]

    def test_default_interval_keeps_legacy_close_on_success(self):
        clock = Tick()
        br = CircuitBreaker(clock, failure_threshold=1, reset_timeout=5.0)
        br.record_failure()
        br.record_success()  # min_open_interval=0: historical behaviour
        assert br.state is BreakerState.CLOSED


class TestHealthMonitor:
    def test_probe_marks_failed_after_miss_threshold(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                monitor = cluster.auto_healer(
                    arr, miss_threshold=2, probe_timeout=0.2
                )
                alive = await monitor.probe_once()
                assert alive == [True] * code.n_cols
                assert not any(monitor.failed)

                await cluster.stop_node(3)
                await monitor.probe_once()
                assert not monitor.failed[3]  # one miss is not a failure
                await monitor.probe_once()
                assert monitor.failed[3]
                assert arr.metrics.get("columns_failed") == 1
                assert arr.metrics.get("heartbeat_misses") == 2

        asyncio.run(run())

    def test_failure_trips_the_arrays_breaker(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                monitor = cluster.auto_healer(
                    arr, miss_threshold=2, probe_timeout=0.2, failure_threshold=2
                )
                assert arr.breakers is not None  # installed by the monitor
                await cluster.stop_node(1)
                await monitor.probe_once()
                await monitor.probe_once()
                assert arr.breakers[1].state is BreakerState.OPEN
                # Data-plane requests now short-circuit without a dial.
                missing = await arr._gather_columns(
                    0, [1], code.alloc_stripe()
                )
                assert missing == [1]
                assert arr.metrics.get("breaker_short_circuits") > 0

        asyncio.run(run())

    def test_heal_rebuilds_failed_column_onto_spare(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr)
                await arr.write(0, data)
                monitor = cluster.auto_healer(
                    arr, miss_threshold=2, probe_timeout=0.2, rebuild_batch=2
                )
                await cluster.stop_node(2)
                await monitor.probe_once()
                await monitor.probe_once()
                assert monitor.failed[2]

                healed = await monitor.heal()
                assert healed == [2]
                assert not monitor.failed[2]
                # The breaker reset with the rebuild: the column serves
                # again without waiting out the cooldown.
                assert arr.breakers[2].state is BreakerState.CLOSED
                assert arr.metrics.get("columns_healed") == 1
                assert await arr.read(0, arr.capacity) == data
                # The promoted replacement holds real strips.
                assert cluster.nodes[2].disk.read_strip(0).any()

        asyncio.run(run())

    def test_background_loop_heals_without_operator(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr)
                await arr.write(0, data)
                monitor = cluster.auto_healer(
                    arr, interval=1.0, miss_threshold=2, probe_timeout=0.2,
                    rebuild_batch=2,
                )
                monitor.start()
                await cluster.stop_node(4)
                for _ in range(200):
                    if arr.metrics.get("columns_healed"):
                        break
                    await arr.clock.sleep(1.0)
                assert arr.metrics.get("columns_healed") == 1
                await monitor.stop()
                assert await arr.read(0, arr.capacity) == data

        asyncio.run(run())
