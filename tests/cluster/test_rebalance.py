"""Rebalancer drills: throttled migration, drains, heals, crash sweeps.

Everything runs on the simulation seam (in-memory transport + virtual
clock), so the throttle's pacing is measured in exact virtual seconds
and every churn schedule replays identically.  The crash sweeps are
the heart of the file: every node-side crash point of the migration
protocol (``migrate-before-log``, ``migrate-before-reply``,
``commit-before-apply``, ``commit-before-reply``, ``release-before-drop``,
``release-before-reply``) and every coordinator-side RPC position must
leave a stripe either fully at its old holders or fully at its new
ones -- never a mix -- and a recovery pass must finish the job.
"""

import asyncio

import pytest

from repro.cluster import ClusterError, MembershipError, TokenBucket
from repro.cluster.membership import NodeState
from repro.cluster.txn import ClientCrash
from repro.sim import VirtualClock
from tests.cluster.conftest import FAST_POLICY, elastic_sim_cluster, payload_for


class TestTokenBucket:
    def test_burst_is_free_then_debt_is_paid_at_rate(self):
        async def run():
            clock = VirtualClock()
            bucket = TokenBucket(100.0, 50.0, clock)
            assert await bucket.take(50) == 0.0  # within burst
            slept = await bucket.take(100)  # overdraft of 100 tokens
            assert slept == pytest.approx(1.0)
            assert clock.time() == pytest.approx(1.0)

        asyncio.run(run())

    def test_sustained_throughput_converges_to_rate(self):
        async def run():
            clock = VirtualClock()
            bucket = TokenBucket(100.0, 100.0, clock)
            for _ in range(10):
                await bucket.take(100)
            # 1000 tokens through a 100/s bucket with 100 burst: the
            # first chunk rides the burst, the rest pay full price.
            assert clock.time() == pytest.approx(9.0)

        asyncio.run(run())

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0, VirtualClock())


async def churned(cluster, *, seed):
    """Write a full payload, add one node; returns (array, data, new_id)."""
    arr = cluster.array(policy=FAST_POLICY)
    data = payload_for(arr, seed=seed)
    await arr.write(0, data)
    new_id = await cluster.add_node()
    return arr, data, new_id


class TestConvergence:
    def test_join_then_rebalance_moves_data_and_preserves_it(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr, data, new_id = await churned(cluster, seed=1)
                reb = cluster.rebalancer(arr)
                todo = reb.misplaced()
                assert todo  # the new node wins some strips (seeded)
                epoch_before = arr.membership.epoch
                moved = await reb.run_until_converged()
                assert moved == len(todo)
                assert reb.misplaced() == []
                assert reb.strips_on(new_id) > 0
                assert arr.membership.epoch > epoch_before  # one bump per flip
                assert await arr.read(0, arr.capacity) == data
                counters = arr.metrics.snapshot()["counters"]
                assert counters["stripes_migrated"] == moved
                assert counters["migration_bytes"] > 0

        asyncio.run(run())

    def test_converged_cluster_is_a_no_op(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=2)
                await arr.write(0, data)
                reb = cluster.rebalancer(arr)
                assert await reb.run_until_converged() == 0
                assert arr.metrics.snapshot()["counters"].get(
                    "stripes_migrated", 0
                ) == 0

        asyncio.run(run())

    def test_dead_node_heals_onto_survivors(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=3)
                await arr.write(0, data)
                victim = arr.holders(0)[0]
                monitor = cluster.monitor(arr, miss_threshold=1, probe_timeout=0.2)
                await cluster.stop_node(victim)
                await monitor.probe_once()
                assert arr.membership.state_of(victim) is NodeState.DEAD
                reb = cluster.rebalancer(arr)
                moved = await reb.run_until_converged()
                assert moved > 0
                assert reb.misplaced() == []
                # Full redundancy restored: nothing routes to the corpse.
                assert reb.strips_on(victim) == 0
                assert await arr.read(0, arr.capacity) == data

        asyncio.run(run())

    def test_throttle_paces_migration_at_the_configured_rate(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr, data, _ = await churned(cluster, seed=4)
                rate, burst = 4096.0, 1024.0
                reb = cluster.rebalancer(arr, rate_bytes=rate, burst_bytes=burst)
                t0 = arr.clock.time()
                await reb.run_until_converged()
                elapsed = arr.clock.time() - t0
                moved_bytes = arr.metrics.snapshot()["counters"]["migration_bytes"]
                assert moved_bytes > burst
                # Debt model: every byte past the burst is paid at rate.
                assert elapsed >= (moved_bytes - burst) / rate
                assert await arr.read(0, arr.capacity) == data

        asyncio.run(run())

    def test_foreground_gate_defers_migration(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr, data, _ = await churned(cluster, seed=5)
                busy = {"rounds": 3}

                def gate() -> bool:
                    if busy["rounds"] > 0:
                        busy["rounds"] -= 1
                        return True
                    return False

                reb = cluster.rebalancer(
                    arr, foreground_gate=gate, gate_backoff=0.01
                )
                await reb.run_until_converged()
                counters = arr.metrics.snapshot()["counters"]
                assert counters["rebalance_yields"] == 3
                assert await arr.read(0, arr.capacity) == data

        asyncio.run(run())


class TestDrain:
    def test_drain_empties_the_node_and_tombstones_it(self):
        async def run():
            _, cluster = elastic_sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr, seed=6)
                await arr.write(0, data)
                reb = cluster.rebalancer(arr)
                victim = max(cluster.nodes, key=reb.strips_on)
                assert reb.strips_on(victim) > 0
                moved = await reb.drain(victim)
                assert moved >= reb.strips_on(victim) == 0
                assert arr.membership.state_of(victim) is NodeState.LEFT
                assert victim not in arr.membership.placement_pool()
                assert arr.metrics.snapshot()["gauges"]["drain_remaining"] == 0
                assert await arr.read(0, arr.capacity) == data

        asyncio.run(run())

    def test_drain_refuses_to_shrink_below_the_column_count(self):
        async def run():
            code, cluster = elastic_sim_cluster(n_nodes=5)  # exactly k + 2
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                reb = cluster.rebalancer(arr)
                with pytest.raises(MembershipError):
                    await reb.drain("n0")
                # Nothing changed: the node still serves and places.
                assert arr.membership.state_of("n0") is NodeState.LIVE

        asyncio.run(run())

    def test_drain_under_sustained_foreground_load_zero_client_failures(self):
        """The acceptance drill: a full drain completes while a client
        hammers reads and writes, and the client never sees an error."""

        async def run():
            _, cluster = elastic_sim_cluster(n_stripes=8)
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                model = bytearray(payload_for(arr, seed=7))
                await arr.write(0, bytes(model))
                reb = cluster.rebalancer(arr)
                victim = max(cluster.nodes, key=reb.strips_on)
                stripe_bytes = arr.stripe_data_bytes
                stop = asyncio.Event()
                failures: list[Exception] = []
                ops = {"done": 0}

                async def foreground():
                    i = 0
                    while not stop.is_set():
                        off = (i % arr.n_stripes) * stripe_bytes
                        try:
                            if i % 3 == 2:
                                chunk = bytes([(i * 31) % 251] * 64)
                                model[off : off + 64] = chunk
                                await arr.write(off, chunk)
                            else:
                                back = await arr.read(off, 64)
                                assert back == bytes(model[off : off + 64])
                        except Exception as exc:  # any client-visible failure
                            failures.append(exc)
                        ops["done"] += 1
                        i += 1
                        await arr.clock.sleep(0.01)

                task = asyncio.get_running_loop().create_task(foreground())
                moved = await reb.drain(victim)
                stop.set()
                await task
                assert failures == []
                assert ops["done"] > 0
                assert moved > 0
                assert reb.strips_on(victim) == 0
                assert arr.membership.state_of(victim) is NodeState.LEFT
                assert await arr.read(0, arr.capacity) == bytes(model)

        asyncio.run(run())


def migration_fixture(seed):
    """A cluster mid-churn with one stripe picked for migration.

    Returns (cluster, arr, data, stripe, before, target, new_id) inside
    the caller's coroutine; the chosen stripe is the first misplaced
    one whose targets include the freshly joined node.
    """

    async def build():
        _, cluster = elastic_sim_cluster()
        await cluster.start()
        arr, data, new_id = await churned(cluster, seed=seed)
        reb = cluster.rebalancer(arr)
        stripe = next(s for s in reb.misplaced() if new_id in reb.targets(s))
        return cluster, arr, data, reb, stripe, new_id

    return build()


class TestCrashSweep:
    """Every crash position leaves all-old-at-source or all-new-at-target."""

    TARGET_POINTS = [
        "migrate-before-log",
        "migrate-before-reply",
        "commit-before-apply",
        "commit-before-reply",
    ]

    @pytest.mark.parametrize("point", TARGET_POINTS)
    def test_target_node_crash_leaves_all_old_at_source(self, point):
        async def run():
            cluster, arr, data, reb, stripe, new_id = await migration_fixture(8)
            try:
                before = arr.holders(stripe)
                cluster.nodes[new_id].crashes.arm(point)
                with pytest.raises(ClusterError):
                    await reb.migrate_stripe(stripe)
                # All-old: routing untouched, every byte still served.
                assert arr.holders(stripe) == before
                assert await arr.read(0, arr.capacity) == data
                # Reboot the corpse, sweep orphan intents, finish the job.
                await cluster.restart_node(new_id)
                await reb.recover()
                await reb.run_until_converged()
                assert reb.misplaced() == []
                assert arr.holders(stripe) == reb.targets(stripe)
                assert await arr.read(0, arr.capacity) == data
            finally:
                await cluster.stop()

        asyncio.run(run())

    SOURCE_POINTS = ["release-before-drop", "release-before-reply"]

    @pytest.mark.parametrize("point", SOURCE_POINTS)
    def test_source_crash_during_release_leaves_all_new_at_target(self, point):
        async def run():
            cluster, arr, data, reb, stripe, new_id = await migration_fixture(9)
            try:
                before = arr.holders(stripe)
                target = reb.targets(stripe)
                # A source being vacated (and not kept at another column)
                # is the node that will be asked to release.
                source = next(
                    before[c]
                    for c in range(len(before))
                    if before[c] != target[c] and before[c] not in set(target)
                )
                cluster.nodes[source].crashes.arm(point)
                # Release is post-flip and best-effort: the migration
                # itself must succeed even though the source dies.
                assert await reb.migrate_stripe(stripe)
                assert arr.holders(stripe) == target  # all-new
                assert await arr.read(0, arr.capacity) == data
                await cluster.restart_node(source)
                await reb.run_until_converged()
                assert reb.misplaced() == []
                assert await arr.read(0, arr.capacity) == data
            finally:
                await cluster.stop()

        asyncio.run(run())

    def test_coordinator_crash_sweep_is_atomic_at_every_rpc(self):
        """Kill the rebalancer before its Nth protocol RPC for every N
        until a full migration fits, proving all-old-or-all-new plus
        recoverability at each position."""

        async def run_position(after: int) -> bool:
            cluster, arr, data, reb, stripe, _ = await migration_fixture(10)
            try:
                before = arr.holders(stripe)
                target = reb.targets(stripe)
                reb.crash.arm(after=after)
                crashed = False
                try:
                    await reb.migrate_stripe(stripe)
                except ClientCrash:
                    crashed = True
                assert arr.holders(stripe) in (before, target)
                assert await arr.read(0, arr.capacity) == data
                # A fresh coordinator (new crash plan) finishes the job.
                fresh = cluster.rebalancer(arr)
                orphans = fresh.misplaced() and await fresh.recover()
                await fresh.run_until_converged()
                assert fresh.misplaced() == []
                assert arr.holders(stripe) == fresh.targets(stripe)
                assert await arr.read(0, arr.capacity) == data
                del orphans
                return crashed
            finally:
                await cluster.stop()

        async def run():
            after = 0
            while await run_position(after):
                after += 1
                assert after < 64, "migration protocol grew without bound"
            assert after >= 3  # stage + commit + verify at minimum

        asyncio.run(run())

    def test_recover_aborts_orphaned_intents(self):
        async def run():
            cluster, arr, data, reb, stripe, new_id = await migration_fixture(12)
            try:
                # Die right after the first stage RPC: a pending
                # mig- intent is stranded on the target.
                reb.crash.arm(after=1)
                with pytest.raises(ClientCrash):
                    await reb.migrate_stripe(stripe)
                fresh = cluster.rebalancer(arr)
                assert await fresh.recover() >= 1
                counters = arr.metrics.snapshot()["counters"]
                assert counters["migration_intents_aborted"] >= 1
                await fresh.run_until_converged()
                assert fresh.misplaced() == []
                assert await arr.read(0, arr.capacity) == data
            finally:
                await cluster.stop()

        asyncio.run(run())
