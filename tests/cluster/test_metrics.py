"""Unit tests for the metrics registry, via the cluster compat shim.

The registry itself lives in ``repro.obs.metrics`` now (where the
gauge/merge/Prometheus behaviour is tested); importing through
``repro.cluster.metrics`` here keeps the compatibility re-export under
test.
"""

import pytest

from repro.cluster.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_mean_and_count(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.total == 3
        assert h.mean == pytest.approx(0.2)

    def test_quantile_brackets_observations(self):
        h = Histogram("lat", base=1e-3)
        for _ in range(99):
            h.observe(0.002)
        h.observe(1.0)
        # p50 must bracket the bulk (log2 bucket edge, <= 2x over).
        assert 0.002 <= h.quantile(0.5) <= 0.004
        assert h.quantile(1.0) >= 1.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat").quantile(0.99) == 0.0

    def test_snapshot_shape(self):
        h = Histogram("lat")
        h.observe(0.5)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "p50", "p95", "p99",
                             "base", "buckets"}
        assert snap["count"] == 1
        # buckets expose the mergeable state: counts sum to the total.
        assert sum(snap["buckets"]) == 1
        assert snap["base"] == h.base

    def test_zero_observation_reports_base_not_zero(self):
        # Bucket 0 holds everything <= base, including exactly 0; its
        # upper edge is base, so an all-zeros stream reports p50 == base.
        h = Histogram("lat", base=1e-4)
        h.observe(0.0)
        assert h.quantile(0.5) == pytest.approx(1e-4)
        assert h.snapshot()["p50"] == pytest.approx(1e-4)

    def test_rejects_negative_observation(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-0.1)


class TestRegistry:
    def test_counter_identity(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.get("a") == 2
        assert reg.get("never-touched") == 0

    def test_snapshot_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.counter("reads").inc(3)
        reg.histogram("lat").observe(0.01)
        snap = reg.snapshot()
        json.dumps(snap)  # wire-safe
        assert snap["counters"]["reads"] == 3
        assert snap["histograms"]["lat"]["count"] == 1

    def test_rows_flatten_for_table(self):
        reg = MetricsRegistry()
        reg.counter("reads").inc(3)
        reg.histogram("lat").observe(0.01)
        rows = MetricsRegistry.rows(reg.snapshot(), prefix="n0.")
        metrics = [r["metric"] for r in rows]
        assert "n0.reads" in metrics
        assert any(m.startswith("n0.lat") for m in metrics)

    def test_merge_sums_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(2)
        b.counter("x").inc(5)
        b.counter("y").inc(1)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"x": 7, "y": 1}

    def test_merge_keeps_histograms(self):
        # Regression: merge() used to drop histograms entirely.
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.001, 0.002):
            a.histogram("lat").observe(v)
        b.histogram("lat").observe(0.004)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        lat = merged["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["sum"] == pytest.approx(0.007)
        assert "caveat" in lat  # cross-node quantile caveat survives

    def test_gauge_reexported(self):
        g = Gauge("depth")
        g.set(3)
        g.dec()
        assert g.value == 2.0
