"""Network-fault drills: every transport-level failure mode must
resolve to a correct degraded read, across Liberation geometries.

The three faults the ISSUE names -- request timeout, connection
dropped mid-strip, corrupted frame checksum -- are installed on one
node's data plane (persistently, so the retry budget cannot paper over
them), and the array must answer byte-identical data by decoding
around the sick column, with the failure visible in the metrics.

The drills run on the simulation seam (virtual clock + in-memory
transport), so the timeout drill's ``attempts * timeout`` per strip is
virtual seconds, not wall time, and every run schedules identically.
"""

import asyncio

import pytest

from repro.array.faults import ALWAYS, NetworkFaultPlan
from repro.cluster import RetryPolicy
from tests.cluster.conftest import payload_for, sim_cluster

#: Tight budget: the timeout drill pays attempts * timeout per strip
#: (in virtual seconds only).
DRILL_POLICY = RetryPolicy(attempts=2, timeout=0.15, backoff=0.01, max_backoff=0.02)

GEOMETRIES = [(3, 5), (5, 7), (7, 11)]  # (k, p) for Liberation


def drill(k: int, p: int, plan: NetworkFaultPlan, *, via_wire: bool = False):
    """Write, poison node 0 with ``plan``, read back; returns evidence."""

    async def run():
        code, cluster = sim_cluster(k=k, p=p, n_stripes=2)
        async with cluster:
            arr = cluster.array(policy=DRILL_POLICY)
            data = payload_for(arr, seed=p)
            await arr.write(0, data)
            if via_wire:
                await arr.clients[0].request("fault", {"plan": plan.to_header()})
            else:
                cluster.nodes[0].faults = plan
            back = await arr.read(0, arr.capacity)
            return data, back, arr.metrics.snapshot()["counters"]

    return asyncio.run(run())


@pytest.mark.parametrize("k,p", GEOMETRIES)
class TestFaultPaths:
    def test_node_timeout_resolves_to_degraded_read(self, k, p):
        data, back, counters = drill(k, p, NetworkFaultPlan(latency=0.4))
        assert back == data
        assert counters["timeouts"] > 0
        assert counters["retries"] > 0
        assert counters["decodes"] > 0

    def test_dropped_connection_mid_strip(self, k, p):
        data, back, counters = drill(k, p, NetworkFaultPlan(drop_mid_frame=ALWAYS))
        assert back == data
        assert counters["connection_errors"] > 0
        assert counters["retries"] > 0
        assert counters["decodes"] > 0

    def test_corrupted_frame_checksum(self, k, p):
        data, back, counters = drill(k, p, NetworkFaultPlan(corrupt_frames=ALWAYS))
        assert back == data
        assert counters["frame_errors"] > 0
        assert counters["retries"] > 0
        assert counters["decodes"] > 0


class TestFaultSemantics:
    def test_transient_fault_consumed_by_retry(self):
        """A one-shot injected io-error is absorbed by the retry budget:
        no degraded read, no decode."""
        data, back, counters = drill(3, 5, NetworkFaultPlan(fail_requests=1))
        assert back == data
        assert counters["remote_errors"] == 1
        assert counters.get("decodes", 0) == 0

    def test_persistent_io_errors_resolve_to_degraded_read(self):
        data, back, counters = drill(3, 5, NetworkFaultPlan(fail_requests=ALWAYS))
        assert back == data
        assert counters["decodes"] > 0

    def test_fault_installed_over_the_wire(self):
        """The ``fault`` verb behaves like in-process installation, and
        control verbs still reach the sick node."""
        data, back, counters = drill(
            3, 5, NetworkFaultPlan(corrupt_frames=ALWAYS), via_wire=True
        )
        assert back == data
        assert counters["frame_errors"] > 0
        assert counters["decodes"] > 0

    def test_budgeted_counts_decrement(self):
        plan = NetworkFaultPlan(corrupt_frames=2)
        assert plan.consume("corrupt_frames") and plan.consume("corrupt_frames")
        assert not plan.consume("corrupt_frames")
        always = NetworkFaultPlan(drop_mid_frame=ALWAYS)
        for _ in range(5):
            assert always.consume("drop_mid_frame")

    def test_plan_wire_round_trip(self):
        plan = NetworkFaultPlan(
            latency=0.5, fail_requests=3, drop_mid_frame=ALWAYS, corrupt_frames=1
        )
        assert NetworkFaultPlan.from_header(plan.to_header()) == plan


class TestExhaustionCounters:
    """A failure that survives the whole retry budget must be visible
    as ``retries_exhausted`` (with a per-verb label), and a blown total
    deadline as ``deadline_exceeded_<verb>`` -- the counters operators
    alert on, as opposed to ``retries`` which also counts recoveries."""

    def test_retries_exhausted_counts_per_verb(self):
        data, back, counters = drill(3, 5, NetworkFaultPlan(drop_mid_frame=ALWAYS))
        assert back == data  # degraded read still answers
        assert counters["retries_exhausted"] > 0
        assert counters["retries_exhausted_get"] > 0
        assert counters["retries_exhausted"] >= counters["retries_exhausted_get"]

    def test_transient_fault_does_not_count_as_exhausted(self):
        _, _, counters = drill(3, 5, NetworkFaultPlan(fail_requests=1))
        assert counters.get("retries_exhausted", 0) == 0

    def test_deadline_exceeded_counts_per_verb(self):
        async def run():
            code, cluster = sim_cluster(k=3, p=5, n_stripes=2)
            async with cluster:
                # Total budget smaller than one sick attempt: the
                # deadline, not the per-attempt timeout, fires first.
                policy = RetryPolicy(
                    attempts=3, timeout=0.3, backoff=0.01,
                    max_backoff=0.02, deadline=0.2,
                )
                arr = cluster.array(policy=policy)
                data = payload_for(arr, seed=5)
                await arr.write(0, data)
                cluster.nodes[0].faults = NetworkFaultPlan(latency=0.5)
                back = await arr.read(0, arr.capacity)
                return data, back, arr.metrics.snapshot()["counters"]

        data, back, counters = asyncio.run(run())
        assert back == data
        assert counters["deadline_exceeded"] > 0
        assert counters["deadline_exceeded_get"] > 0
