"""Distributed scrub drills: silent corruption is found and fixed in place.

Covers the paper's single-column locator over the wire, the CRC-32
fast path (and its blind spot: stale-but-consistent strips, which only
a deep pass catches), dirty-first scheduling after degraded writes,
and the idle economy -- a scrubber between passes issues no RPCs.
"""

import asyncio

import numpy as np

from repro.cluster import ClusterScrubber
from tests.cluster.conftest import FAST_POLICY, payload_for, sim_cluster


def total_requests(cluster) -> int:
    """All RPCs ever served, summed over the cluster's nodes."""
    total = 0
    for node in cluster.nodes:
        counters = node.metrics.snapshot()["counters"]
        total += sum(v for k, v in counters.items() if k.startswith("requests_"))
    return total


def strip_requests(cluster, verb="get") -> int:
    return sum(
        node.metrics.snapshot()["counters"].get(f"requests_{verb}", 0)
        for node in cluster.nodes
    )


class TestLocatorRepair:
    def test_single_column_corruption_located_and_repaired(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                data = payload_for(arr)
                await arr.write(0, data)
                pristine = cluster.nodes[1].disk.read_strip(3).copy()
                cluster.nodes[1].disk.corrupt(3, seed=99)
                report = await ClusterScrubber(arr).scrub()
                assert report.corrected == [(3, 1)]
                assert (3, 1) in report.crc_mismatches
                assert report.healthy
                repaired = cluster.nodes[1].disk.read_strip(3)
                assert np.array_equal(repaired, pristine)
                # The repair also refreshed the node's sidecar.
                second = await ClusterScrubber(arr).scrub()
                assert second.stripes_clean == arr.n_stripes

        asyncio.run(run())

    def test_two_column_corruption_is_uncorrectable(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr))
                cluster.nodes[0].disk.corrupt(2, seed=7)
                cluster.nodes[3].disk.corrupt(2, seed=8)
                report = await ClusterScrubber(arr).scrub()
                assert report.uncorrectable == [2]
                assert not report.healthy

        asyncio.run(run())


class TestChecksumFastPath:
    def test_clean_pass_ships_no_strips(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr))
                gets_before = strip_requests(cluster, "get")
                report = await ClusterScrubber(arr).scrub()
                assert report.fast_path_hits == arr.n_stripes
                assert report.stripes_clean == arr.n_stripes
                # Probes only -- not a single strip crossed the wire.
                assert strip_requests(cluster, "get") == gets_before
                assert strip_requests(cluster, "scrub-read") > 0

        asyncio.run(run())

    def test_deep_pass_catches_stale_but_consistent_strip(self):
        """A stale strip matches its own sidecar, so only a deep pass
        (full fetch + parity verify) can see it."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr, seed=1))
                # Re-write stripe 0 everywhere except column 2: that
                # node now holds a stale strip with a *valid* sidecar.
                buf = code.alloc_stripe()
                rng = np.random.default_rng(2)
                buf[: code.k] = rng.integers(
                    0, 2**64, buf[: code.k].shape, dtype=np.uint64
                )
                code.encode(buf)
                cols = [c for c in range(code.n_cols) if c != 2]
                await arr.write_stripe(0, buf, columns=cols)

                shallow = await ClusterScrubber(arr).scrub()
                assert shallow.stripes_clean == arr.n_stripes  # blind spot
                deep = await ClusterScrubber(arr).scrub(deep=True)
                assert deep.fast_path_hits == 0
                assert (0, 2) in deep.corrected
                assert np.array_equal(
                    cluster.nodes[2].disk.read_strip(0).reshape(buf[2].shape),
                    buf[2],
                )

        asyncio.run(run())


class TestDirtyStripes:
    def test_degraded_write_scrubbed_first_and_cleared(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr))
                buf = code.alloc_stripe()
                buf[: code.k] = 7
                code.encode(buf)
                await cluster.stop_node(4)
                skipped = await arr.write_stripe(1, buf)
                assert skipped == [4]
                assert arr.dirty_stripes == {1: {4}}

                await cluster.restart_node(4)
                arr.replace_node(4, cluster.nodes[4].address)
                report = await ClusterScrubber(arr).scrub()
                assert (1, 4) in report.corrected
                assert report.healthy
                assert not arr.dirty_stripes
                assert np.array_equal(
                    cluster.nodes[4].disk.read_strip(1).reshape(buf[4].shape),
                    buf[4],
                )

        asyncio.run(run())

    def test_unreachable_column_defers_the_stripe(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr))
                buf = code.alloc_stripe()
                buf[: code.k] = 3
                code.encode(buf)
                await cluster.stop_node(0)
                await arr.write_stripe(2, buf)
                report = await ClusterScrubber(arr).scrub()
                assert 2 in report.deferred
                assert not report.healthy
                assert arr.dirty_stripes == {2: {0}}  # kept for the next pass

        asyncio.run(run())


class TestIdleEconomy:
    def test_idle_scrubber_issues_no_rpcs(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                await arr.write(0, payload_for(arr))
                scrubber = ClusterScrubber(arr, interval=30.0)
                scrubber.start()
                while arr.metrics.get("scrub_passes") == 0:
                    await asyncio.sleep(0)
                after_pass = total_requests(cluster)
                await arr.clock.sleep(10.0)  # idle: inside the interval
                assert total_requests(cluster) == after_pass
                await scrubber.stop()

        asyncio.run(run())
