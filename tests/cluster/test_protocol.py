"""Frame-level tests of the wire protocol."""

import asyncio

import pytest

from repro.cluster.protocol import (
    MAGIC,
    FrameChecksumError,
    ProtocolError,
    encode_frame,
    read_frame,
)


def parse(frame: bytes):
    """Feed raw bytes through read_frame via an in-memory stream."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestRoundTrip:
    def test_header_and_payload_survive(self):
        header, payload = parse(encode_frame({"verb": "put", "stripe": 7}, b"\x01" * 40))
        assert header == {"verb": "put", "stripe": 7}
        assert payload == b"\x01" * 40

    def test_empty_payload(self):
        header, payload = parse(encode_frame({"verb": "ping"}))
        assert header["verb"] == "ping" and payload == b""

    def test_frames_are_self_delimiting(self):
        """Two frames on one stream parse independently."""

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"n": 1}) + encode_frame({"n": 2}, b"xy"))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        (h1, p1), (h2, p2) = asyncio.run(run())
        assert (h1["n"], p1, h2["n"], p2) == (1, b"", 2, b"xy")


class TestRejection:
    def test_bad_magic(self):
        frame = b"XXXX" + encode_frame({"verb": "ping"})[4:]
        with pytest.raises(ProtocolError):
            parse(frame)

    @pytest.mark.parametrize("victim_offset", [13, -6, -1])
    def test_any_flipped_byte_fails_crc(self, victim_offset):
        """Corruption in header, payload or CRC trailer is all caught."""
        frame = bytearray(encode_frame({"verb": "get", "stripe": 1}, b"data" * 10))
        frame[victim_offset] ^= 0x40
        with pytest.raises(FrameChecksumError):
            parse(bytes(frame))

    def test_truncated_frame_is_transport_error(self):
        frame = encode_frame({"verb": "get"}, b"strip-bytes")
        with pytest.raises(asyncio.IncompleteReadError):
            parse(frame[: len(frame) // 2])

    def test_oversized_lengths_rejected(self):
        import struct

        frame = struct.pack("!4sII", MAGIC, 1 << 30, 0)
        with pytest.raises(ProtocolError):
            parse(frame)

    def test_non_object_header_rejected(self):
        import json
        import struct
        import zlib

        hdr = json.dumps([1, 2]).encode()
        crc = zlib.crc32(b"", zlib.crc32(hdr))
        frame = struct.pack("!4sII", MAGIC, len(hdr), 0) + hdr + struct.pack("!I", crc)
        with pytest.raises(ProtocolError):
            parse(frame)
