"""Two-phase-commit drills: the distributed write hole must stay closed.

The crash-point sweeps mirror ``tests/array/test_journal.py``: the
client side is swept by killing the coordinator before every protocol
RPC of a write (:class:`~repro.cluster.txn.TxnCrashPoint`), the node
side by arming every :class:`~repro.cluster.node.NodeCrashPlan` point.
After recovery (plus a scrub for columns excluded from the
transaction) every stripe must be *all-old or all-new* -- never mixed.

Everything runs on the simulation seam (virtual clock + in-memory
transport), so the sweeps are deterministic and cost no wall time.
"""

import asyncio

import numpy as np
import pytest

from repro.cluster import (
    ClusterDegradedError,
    ClusterScrubber,
    NodeCrashPlan,
    TwoPhaseWriter,
)
from repro.cluster.txn import ClientCrash
from tests.cluster.conftest import FAST_POLICY, sim_cluster


def make_stripe(code, seed):
    """A fully encoded stripe buffer with deterministic data."""
    rng = np.random.default_rng(seed)
    buf = code.alloc_stripe()
    buf[: code.k] = rng.integers(
        0, 2**64, buf[: code.k].shape, dtype=np.uint64
    )
    code.encode(buf)
    return buf


def column_states(cluster, stripe, old, new):
    """Per-column verdict against the two legal images."""
    states = []
    for col, node in enumerate(cluster.nodes):
        strip = node.disk.read_strip(stripe).reshape(old[col].shape)
        if np.array_equal(strip, new[col]):
            states.append("new")
        elif np.array_equal(strip, old[col]):
            states.append("old")
        else:
            states.append("MIXED")
    return states


def assert_atomic(cluster, stripe, old, new, *, columns=None):
    """The stripe (or a subset of columns) is all-old or all-new."""
    states = column_states(cluster, stripe, old, new)
    if columns is not None:
        states = [states[c] for c in columns]
    assert set(states) in ({"old"}, {"new"}), states


def no_pending_intents(cluster):
    return all(not node.intents for node in cluster.nodes)


class TestCleanProtocol:
    def test_clean_write_applies_everywhere(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                writer = TwoPhaseWriter(arr, client_id="t")
                skipped = await writer.write_stripe(0, new)
                assert skipped == []
                assert column_states(cluster, 0, old, new) == ["new"] * code.n_cols
                assert no_pending_intents(cluster)
                assert all(
                    node.txn_done.get("t-1") == "committed"
                    for node in cluster.nodes
                )
                assert not arr.dirty_stripes

        asyncio.run(run())

    def test_commit_is_idempotent(self):
        """A client that lost the commit reply can simply resend."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                new = make_stripe(code, seed=3)
                writer = TwoPhaseWriter(arr, client_id="t")
                await writer.write_stripe(0, new)
                reply, _ = await arr._column_request(0, "commit", {"txn": "t-1"})
                assert reply["state"] == "committed"
                assert reply["applied"] is False
                # A late duplicate prepare cannot resurrect the intent.
                reply, _ = await arr._column_request(
                    0, "prepare",
                    {"txn": "t-1", "stripe": 0, "part": []},
                    np.ascontiguousarray(new[0]).tobytes(),
                )
                assert reply["state"] == "committed"
                assert no_pending_intents(cluster)

        asyncio.run(run())


class TestClientCrashSweep:
    def test_every_client_crash_position_recovers_atomically(self):
        """Kill the coordinator before each protocol RPC in turn.

        A full-stripe write issues ``n_cols`` prepares then ``n_cols``
        commits; after recovery the stripe must be all-old (crash
        before the decision) or all-new (crash after any commit), and
        no intent may stay pending.
        """

        async def run():
            code, cluster = sim_cluster()
            n_rpcs = 2 * code.n_cols
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                for crash_at in range(n_rpcs):
                    await arr.write_stripe(0, old)
                    new = make_stripe(code, seed=100 + crash_at)
                    writer = TwoPhaseWriter(arr, client_id=f"c{crash_at}")
                    writer.crash.arm(after=crash_at)
                    with pytest.raises(ClientCrash):
                        await writer.write_stripe(0, new)
                    outcome = await writer.recover()
                    assert_atomic(cluster, 0, old, new)
                    assert no_pending_intents(cluster)
                    # Crash strictly after the first commit RPC completed
                    # means the decision was commit: all-new.
                    if crash_at > code.n_cols:
                        expected = ["new"] * code.n_cols
                        assert column_states(cluster, 0, old, new) == expected
                        assert outcome["rolled_forward"] or crash_at == n_rpcs
                    # Crash before any commit RPC: presumed abort, all-old.
                    if crash_at <= code.n_cols and crash_at < n_rpcs:
                        if crash_at < code.n_cols:
                            assert column_states(cluster, 0, old, new) == (
                                ["old"] * code.n_cols
                            )

        asyncio.run(run())

    def test_recovery_is_rerunnable(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                writer = TwoPhaseWriter(arr, client_id="t")
                writer.crash.arm(after=2)  # dies mid-prepare
                with pytest.raises(ClientCrash):
                    await writer.write_stripe(0, new)
                first = await writer.recover()
                second = await writer.recover()
                assert first["rolled_back"] == ["t-1"]
                assert second == {"rolled_forward": [], "rolled_back": []}
                assert_atomic(cluster, 0, old, new)

        asyncio.run(run())


class TestNodeCrashSweep:
    @pytest.mark.parametrize("point", [
        "prepare-before-log",
        "prepare-before-reply",
        "commit-before-apply",
        "commit-before-reply",
    ])
    def test_node_crash_mid_write_converges(self, point):
        """One node dies inside a txn verb; restart + recover + scrub
        must land the stripe all-old or all-new on every column."""

        async def run():
            code, cluster = sim_cluster()
            victim = 1
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                cluster.nodes[victim].crashes.arm(point)
                writer = TwoPhaseWriter(arr, client_id="t")
                await writer.write_stripe(0, new)
                assert not cluster.nodes[victim].running

                await cluster.restart_node(victim)
                arr.replace_node(victim, cluster.nodes[victim].address)
                await writer.recover()
                # Columns excluded from the txn hold stale strips; the
                # scrubber consumes the dirty list and rewrites them.
                await ClusterScrubber(arr).scrub()
                assert column_states(cluster, 0, old, new) == ["new"] * code.n_cols
                assert no_pending_intents(cluster)
                assert not arr.dirty_stripes

        asyncio.run(run())

    def test_abort_crash_rolls_back_on_recovery(self):
        """A node dying inside ``abort`` leaves its intent pending; the
        next recovery pass presumes abort and drops it."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                await arr._column_request(
                    0, "prepare",
                    {"txn": "x-1", "stripe": 0, "part": [0]},
                    np.ascontiguousarray(new[0]).tobytes(),
                )
                cluster.nodes[0].crashes.arm("abort-before-drop")
                writer = TwoPhaseWriter(arr, client_id="x")
                await writer._abort("x-1", [0])  # crash swallowed: presumed abort
                assert not cluster.nodes[0].running
                await cluster.restart_node(0)
                arr.replace_node(0, cluster.nodes[0].address)
                outcome = await writer.recover()
                assert outcome["rolled_back"] == ["x-1"]
                assert no_pending_intents(cluster)
                assert column_states(cluster, 0, old, new)[0] == "old"

        asyncio.run(run())

    def test_abort_reply_crash_is_idempotent(self):
        """A node dying *after* dropping the intent but before replying
        (``abort-before-reply``) has already aborted durably; recovery
        finds nothing pending and a re-sent abort is a no-op."""

        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                await arr._column_request(
                    0, "prepare",
                    {"txn": "x-1", "stripe": 0, "part": [0]},
                    np.ascontiguousarray(new[0]).tobytes(),
                )
                cluster.nodes[0].crashes.arm("abort-before-reply")
                writer = TwoPhaseWriter(arr, client_id="x")
                await writer._abort("x-1", [0])  # crash swallowed: presumed abort
                assert not cluster.nodes[0].running
                await cluster.restart_node(0)
                arr.replace_node(0, cluster.nodes[0].address)
                # The intent was dropped before the crash: nothing pends.
                outcome = await writer.recover()
                assert outcome == {"rolled_forward": [], "rolled_back": []}
                assert no_pending_intents(cluster)
                # Re-sending the abort must be a harmless no-op.
                reply, _ = await arr._column_request(0, "abort", {"txn": "x-1"})
                assert reply["state"] == "aborted"
                assert column_states(cluster, 0, old, new)[0] == "old"

        asyncio.run(run())


class TestDegradedTxn:
    def test_beyond_budget_aborts(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                new = make_stripe(code, seed=2)
                for col in (0, 1, 2):
                    await cluster.stop_node(col)
                writer = TwoPhaseWriter(arr, client_id="t")
                with pytest.raises(ClusterDegradedError):
                    await writer.write_stripe(0, new)
                assert no_pending_intents(cluster)

        asyncio.run(run())

    def test_skipped_columns_land_on_dirty_list(self):
        async def run():
            code, cluster = sim_cluster()
            async with cluster:
                arr = cluster.array(policy=FAST_POLICY)
                old = make_stripe(code, seed=1)
                new = make_stripe(code, seed=2)
                await arr.write_stripe(0, old)
                await cluster.stop_node(2)
                writer = TwoPhaseWriter(arr, client_id="t")
                skipped = await writer.write_stripe(0, new)
                assert skipped == [2]
                assert arr.dirty_stripes == {0: {2}}
                live = [c for c in range(code.n_cols) if c != 2]
                assert_atomic(cluster, 0, old, new, columns=live)

        asyncio.run(run())
