"""Tests for the simulated disk."""

import numpy as np
import pytest

from repro.array.disk import (
    DiskFailedError,
    LatentSectorError,
    SimulatedDisk,
)


@pytest.fixture
def disk():
    return SimulatedDisk(0, n_strips=8, strip_words=4)


class TestIO:
    def test_fresh_disk_reads_zeros(self, disk):
        assert not disk.read_strip(0).any()

    def test_write_read_round_trip(self, disk, random_words):
        data = random_words(4)
        disk.write_strip(3, data)
        assert np.array_equal(disk.read_strip(3), data)

    def test_read_returns_copy(self, disk, random_words):
        disk.write_strip(0, random_words(4))
        a = disk.read_strip(0)
        a[0] = 0
        assert disk.read_strip(0)[0] != 0 or a[0] == disk.read_strip(0)[0]

    def test_write_size_validated(self, disk):
        with pytest.raises(ValueError):
            disk.write_strip(0, np.zeros(5, dtype=np.uint64))

    def test_strip_bounds(self, disk):
        with pytest.raises(IndexError):
            disk.read_strip(8)
        with pytest.raises(IndexError):
            disk.write_strip(-1, np.zeros(4, dtype=np.uint64))

    def test_stats_tracked(self, disk, random_words):
        disk.write_strip(0, random_words(4))
        disk.read_strip(0)
        disk.read_strip(0)
        assert disk.stats.writes == 1 and disk.stats.reads == 2
        assert disk.stats.bytes_written == 32 and disk.stats.bytes_read == 64


class TestWholeDiskFailure:
    def test_fail_blocks_io(self, disk, random_words):
        disk.fail()
        assert disk.failed
        with pytest.raises(DiskFailedError):
            disk.read_strip(0)
        with pytest.raises(DiskFailedError):
            disk.write_strip(0, random_words(4))

    def test_replace_resets(self, disk, random_words):
        disk.write_strip(2, random_words(4))
        disk.fail()
        disk.replace()
        assert not disk.failed
        assert not disk.read_strip(2).any()  # replacement is blank
        assert disk.stats.reads == 1  # counters reset before this read


class TestLatentErrors:
    def test_marked_strip_unreadable(self, disk, random_words):
        disk.write_strip(1, random_words(4))
        disk.mark_latent_error(1)
        with pytest.raises(LatentSectorError):
            disk.read_strip(1)
        # other strips unaffected
        disk.read_strip(0)

    def test_rewrite_clears_latent(self, disk, random_words):
        disk.mark_latent_error(1)
        data = random_words(4)
        disk.write_strip(1, data)
        assert np.array_equal(disk.read_strip(1), data)


class TestCorruption:
    def test_corrupt_flips_content_silently(self, disk, random_words):
        data = random_words(4)
        disk.write_strip(5, data)
        disk.corrupt(5, seed=1)
        got = disk.read_strip(5)  # no exception!
        assert not np.array_equal(got, data)

    def test_corrupt_with_explicit_pattern_is_involution(self, disk, random_words):
        data = random_words(4)
        pattern = random_words(4)
        disk.write_strip(5, data)
        disk.corrupt(5, pattern)
        disk.corrupt(5, pattern)
        assert np.array_equal(disk.read_strip(5), data)

    def test_repr_mentions_state(self, disk):
        disk.fail()
        assert "FAILED" in repr(disk)


class TestGeometryValidation:
    def test_positive_dimensions(self):
        with pytest.raises(ValueError):
            SimulatedDisk(0, 0, 4)
