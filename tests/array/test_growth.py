"""Tests for online capacity growth (the paper's scalability story)."""

import numpy as np
import pytest

from repro.array import ArrayDegradedError, RAID6Array
from repro.array.workloads import payload, sequential_fill
from repro.codes import make_code


def filled_array(name="liberation-optimal", k=4, p=11, n_stripes=6, **kw):
    code = make_code(name, k, p=p, element_size=16, **kw)
    arr = RAID6Array(code, n_stripes=n_stripes)
    data = b""
    for op in sequential_fill(arr.capacity, arr.layout.stripe_data_bytes, seed=2):
        arr.write(op.offset, op.data)
        data += op.data
    return arr, data


class TestWithK:
    @pytest.mark.parametrize(
        "name,p", [("liberation-optimal", 11), ("evenodd", 11), ("rdp", 11)]
    )
    def test_zero_column_leaves_parity_unchanged(self, name, p, random_words):
        """The structural fact growth relies on."""
        small = make_code(name, 4, p=p, element_size=16)
        big = small.with_k(5)
        buf_s = small.alloc_stripe()
        buf_s[:4] = random_words(buf_s[:4].shape)
        small.encode(buf_s)
        buf_b = big.alloc_stripe()
        buf_b[:4] = buf_s[:4]  # column 4 stays zero
        big.encode(buf_b)
        assert np.array_equal(buf_b[big.p_col], buf_s[small.p_col])
        assert np.array_equal(buf_b[big.q_col], buf_s[small.q_col])

    def test_geometry_preserved(self):
        code = make_code("liberation-optimal", 4, p=11, element_size=4096)
        grown = code.with_k(7)
        assert grown.p == 11 and grown.rows == code.rows
        assert grown.element_size == 4096

    def test_reed_solomon_with_k(self, random_words):
        small = make_code("reed-solomon", 4, rows=3, element_size=16)
        big = small.with_k(5)
        buf_s = small.alloc_stripe()
        buf_s[:4] = random_words(buf_s[:4].shape)
        small.encode(buf_s)
        buf_b = big.alloc_stripe()
        buf_b[:4] = buf_s[:4]
        big.encode(buf_b)
        assert np.array_equal(buf_b[big.p_col], buf_s[small.p_col])
        assert np.array_equal(buf_b[big.q_col], buf_s[small.q_col])

    def test_liberation_cannot_exceed_p(self):
        code = make_code("liberation-optimal", 5, p=5)
        with pytest.raises(ValueError):
            code.with_k(6)


class TestGrowDataDisk:
    def test_data_preserved_via_translation(self):
        arr, data = filled_array()
        old_sdb = arr.layout.stripe_data_bytes
        translate = arr.grow_data_disk()
        for stripe in range(arr.layout.n_stripes):
            old_off = stripe * old_sdb
            assert arr.read(translate(old_off), old_sdb) == data[old_off : old_off + old_sdb]

    def test_no_parity_recompute(self):
        """Parity strips after growth are byte-identical to before --
        growth never ran the encoder."""
        arr, _ = filled_array()
        before = [
            arr.read_stripe(s)[[arr.code.p_col, arr.code.q_col]].copy()
            for s in range(arr.layout.n_stripes)
        ]
        arr.grow_data_disk()
        for s, old_parity in enumerate(before):
            buf = arr.read_stripe(s)
            assert np.array_equal(buf[arr.code.p_col], old_parity[0])
            assert np.array_equal(buf[arr.code.q_col], old_parity[1])

    def test_grown_array_fully_functional(self):
        arr, data = filled_array()
        translate = arr.grow_data_disk()
        # Parity still consistent...
        for s in range(arr.layout.n_stripes):
            assert arr.code.verify(arr.read_stripe(s))
        # ... new capacity writable ...
        extra = payload(64, seed=5)
        new_region = arr.layout.stripe_data_bytes - 64  # tail of stripe 0
        arr.write(new_region, extra)
        assert arr.read(new_region, 64) == extra
        # ... and still doubly fault tolerant.
        arr.fail_disk(0)
        arr.fail_disk(arr.code.k + 1)  # the freshly added disk's id may differ; any two
        old_sdb = 4 * arr.code.strip_bytes
        assert arr.read(translate(0), old_sdb) == data[:old_sdb]
        arr.rebuild()
        assert arr.read(translate(0), old_sdb) == data[:old_sdb]

    def test_repeated_growth_up_to_limit(self):
        arr, data = filled_array(k=4, p=7)
        arr.grow_data_disk()  # 5
        arr.grow_data_disk()  # 6
        arr.grow_data_disk()  # 7 = p
        assert arr.code.k == 7
        with pytest.raises(ValueError):
            arr.grow_data_disk()  # k = 8 > p

    def test_requires_healthy_array(self):
        arr, _ = filled_array()
        arr.fail_disk(1)
        with pytest.raises(ArrayDegradedError):
            arr.grow_data_disk()

    def test_capacity_increases(self):
        arr, _ = filled_array(k=4, p=11)
        before = arr.capacity
        arr.grow_data_disk()
        assert arr.capacity == before * 5 // 4
