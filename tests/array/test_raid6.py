"""Integration tests for the RAID-6 array simulator."""

import numpy as np
import pytest

from repro.array import ArrayDegradedError, RAID6Array
from repro.array.workloads import payload
from repro.codes import make_code


def build(name="liberation-optimal", k=4, p=5, n_stripes=8, element_size=16, **kw):
    code = make_code(name, k, p=p, element_size=element_size, **kw)
    return RAID6Array(code, n_stripes=n_stripes)


@pytest.fixture
def filled():
    arr = build()
    data = payload(arr.capacity, seed=1)
    arr.write(0, data)
    return arr, data


class TestBasicIO:
    def test_fill_and_read_back(self, filled):
        arr, data = filled
        assert arr.read(0, arr.capacity) == data

    def test_partial_reads(self, filled):
        arr, data = filled
        for off, ln in [(0, 1), (5, 100), (317, 64), (arr.capacity - 9, 9)]:
            assert arr.read(off, ln) == data[off : off + ln]

    def test_zero_length_ops(self, filled):
        arr, data = filled
        assert arr.read(10, 0) == b""
        arr.write(10, b"")
        assert arr.read(0, arr.capacity) == data

    def test_full_stripe_path_used(self):
        arr = build()
        arr.write(0, payload(arr.layout.stripe_data_bytes, seed=2))
        assert arr.stats.full_stripe_writes == 1
        assert arr.stats.small_writes == 0

    def test_unaligned_write_uses_rmw(self, filled):
        arr, data = filled
        patch = b"\xAA" * 24
        arr.write(100, patch)
        assert arr.stats.small_writes > 0
        expect = data[:100] + patch + data[124:]
        assert arr.read(0, arr.capacity) == expect

    def test_parity_consistent_after_mixed_io(self, filled):
        arr, _ = filled
        arr.write(33, b"x" * 50)
        arr.write(0, payload(arr.layout.stripe_data_bytes, seed=3))
        for s in range(arr.layout.n_stripes):
            assert arr.code.verify(arr.read_stripe(s))


class TestDegradedOperation:
    def test_single_failure_reads(self, filled):
        arr, data = filled
        arr.fail_disk(2)
        assert arr.read(0, arr.capacity) == data
        assert arr.stats.degraded_reads > 0

    def test_double_failure_reads(self, filled):
        arr, data = filled
        arr.fail_disk(1)
        arr.fail_disk(4)
        assert arr.read(0, arr.capacity) == data

    def test_third_failure_rejected(self, filled):
        arr, _ = filled
        arr.fail_disk(0)
        arr.fail_disk(1)
        with pytest.raises(ArrayDegradedError):
            arr.fail_disk(2)

    def test_degraded_write_stays_recoverable(self, filled):
        arr, data = filled
        arr.fail_disk(0)
        arr.fail_disk(3)
        patch = payload(200, seed=9)
        arr.write(64, patch)
        expect = data[:64] + patch + data[264:]
        assert arr.read(0, arr.capacity) == expect

    def test_latent_error_triggers_reconstruction(self, filled):
        arr, data = filled
        arr.disks[2].mark_latent_error(3)
        assert arr.read(0, arr.capacity) == data

    def test_latent_error_healed_by_read(self, filled):
        """Medium errors are repaired in place on first reconstruction,
        so they stop consuming the stripe's two-failure budget."""
        arr, data = filled
        arr.disks[2].mark_latent_error(3)
        arr.read_stripe(3)
        assert arr.stats.latent_repairs == 1
        # The strip reads fine now, even with two disks subsequently dead.
        other = [d.disk_id for d in arr.disks if d.disk_id != 2][:2]
        for d in other:
            arr.fail_disk(d)
        assert arr.read(0, arr.capacity) == data

    def test_latent_plus_double_failure_same_stripe_survives(self, filled):
        """The §I triple-threat: latent error surfaces while one disk is
        down; a scrub pass (which reads parity strips too, unlike user
        reads) heals it before a second disk dies."""
        from repro.array import Scrubber

        arr, data = filled
        arr.fail_disk(1)
        arr.disks[2].mark_latent_error(3)
        Scrubber(arr).scrub()  # reads every strip -> heals the medium error
        assert arr.stats.latent_repairs == 1
        arr.fail_disk(4)
        assert arr.read(0, arr.capacity) == data


class TestRebuild:
    def test_rebuild_restores_contents_and_health(self, filled):
        arr, data = filled
        arr.fail_disk(1)
        arr.fail_disk(5)
        n = arr.rebuild()
        assert n == arr.layout.n_stripes
        assert arr.failed_disks() == []
        assert arr.read(0, arr.capacity) == data
        # Every strip physically present again.
        for s in range(arr.layout.n_stripes):
            assert arr.code.verify(arr.read_stripe(s))
            assert arr.stats.degraded_reads >= 0

    def test_rebuild_noop_when_healthy(self, filled):
        arr, _ = filled
        assert arr.rebuild() == 0

    def test_rebuild_decodes_around_latent_errors(self, filled):
        """Regression (found by the model-based harness): rebuild must
        reconstruct dead columns *together with* latent strips on
        surviving disks -- not feed zero-filled latent strips into the
        decode as if they were valid data."""
        arr, data = filled
        arr.fail_disk(1)
        # A latent error on a healthy disk, in a stripe the rebuild
        # will have to reconstruct.
        victim = next(d for d in range(6) if d != 1)
        arr.disks[victim].mark_latent_error(2)
        arr.rebuild()
        assert arr.read(0, arr.capacity) == data
        for s in range(arr.layout.n_stripes):
            assert arr.code.verify(arr.read_stripe(s))

    def test_rebuild_after_degraded_writes(self, filled):
        arr, data = filled
        arr.fail_disk(0)
        patch = payload(500, seed=4)
        arr.write(10, patch)
        arr.rebuild()
        expect = data[:10] + patch + data[510:]
        assert arr.read(0, arr.capacity) == expect


@pytest.mark.parametrize(
    "name,kw",
    [
        ("liberation-optimal", {"p": 5}),
        ("liberation-original", {"p": 5}),
        ("evenodd", {"p": 5}),
        ("rdp", {"p": 7}),
        ("reed-solomon", {"rows": 4}),
    ],
)
class TestAllCodesBehindTheArray:
    def test_end_to_end(self, name, kw):
        code = make_code(name, 4, element_size=16, **kw)
        arr = RAID6Array(code, n_stripes=4)
        data = payload(arr.capacity, seed=11)
        arr.write(0, data)
        arr.fail_disk(0)
        arr.fail_disk(2)
        assert arr.read(0, arr.capacity) == data
        arr.rebuild()
        assert arr.read(0, arr.capacity) == data


class TestRepr:
    def test_repr(self, filled):
        arr, _ = filled
        assert "liberation-optimal" in repr(arr)
