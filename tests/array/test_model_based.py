"""Model-based stateful testing of the RAID-6 array.

A hypothesis :class:`RuleBasedStateMachine` drives a
:class:`~repro.array.raid6.RAID6Array` with random writes, reads, disk
failures, latent errors, silent corruptions, scrubs and rebuilds, and
checks it against the simplest possible model: a plain ``bytearray``.
Any divergence between the fault-tolerant array and the flat buffer is
a bug in the coding or recovery paths.

The machine keeps every injected-fault combination *within* RAID-6's
two-failures-per-stripe budget (a whole-disk failure counts against
every stripe; a latent strip error against its own stripe) -- beyond
that budget data loss is expected, not a bug.  This harness found a
real defect during development: ``rebuild`` used to zero-fill latent
strips into the reconstruction instead of decoding around them.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.array import RAID6Array, Scrubber
from repro.codes import make_code

K, P, N_STRIPES, ELEM = 4, 5, 6, 16


class RaidModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
        self.array = RAID6Array(code, n_stripes=N_STRIPES)
        self.model = bytearray(self.array.capacity)
        self.corrupted_stripes: set[int] = set()
        # stripe -> disks with an (unhealed, as far as we know) latent
        # strip error.  Conservative: reads may have healed some.
        self.latent: dict[int, set[int]] = {}

    # -- fault budget ------------------------------------------------------

    def _budget_ok(self, extra_failed: int = 0, latent_at: tuple[int, int] | None = None) -> bool:
        failed = len(self.array.failed_disks()) + extra_failed
        worst_latent = 0
        for stripe in range(N_STRIPES):
            n = len(self.latent.get(stripe, set()))
            if latent_at and latent_at[0] == stripe:
                n += 1
            worst_latent = max(worst_latent, n)
        return failed + worst_latent <= 2

    # -- operations ------------------------------------------------------

    @rule(offset=st.integers(0, 10**6), data=st.binary(min_size=1, max_size=200))
    def write(self, offset, data):
        offset %= self.array.capacity
        data = data[: self.array.capacity - offset]
        if not data:
            return
        # Read-modify-write through a silently corrupted stripe commits
        # parity deltas computed from corrupted reads -- irreversible
        # data entanglement on real arrays too (the reason for the
        # scrub-before-write discipline).  Keep the model inside the
        # guarantee by not writing to known-corrupt stripes.
        sdb = self.array.layout.stripe_data_bytes
        touched = range(offset // sdb, (offset + len(data) - 1) // sdb + 1)
        if any(s in self.corrupted_stripes for s in touched):
            return
        self.array.write(offset, data)
        self.model[offset : offset + len(data)] = data

    @rule(offset=st.integers(0, 10**6), length=st.integers(0, 300))
    def read(self, offset, length):
        offset %= self.array.capacity
        length = min(length, self.array.capacity - offset)
        got = self.array.read(offset, length)
        want = bytes(self.model[offset : offset + length])
        # Reads through silently corrupted, unscrubbed stripes may
        # legitimately return wrong bytes; anything else must match.
        if not self.corrupted_stripes:
            assert got == want

    @precondition(
        lambda self: self._budget_ok(extra_failed=1) and not self.corrupted_stripes
    )
    @rule(disk=st.integers(0, K + 1))
    def fail_disk(self, disk):
        # Silent corruption must be scrubbed away before losing
        # redundancy: reconstruction through a corrupted source column
        # is (provably) garbage, so operating degraded with unscrubbed
        # corruption is outside RAID-6's guarantee.
        if not self.array.disks[disk].failed:
            self.array.fail_disk(disk)

    @precondition(lambda self: self.array.failed_disks())
    @rule()
    def rebuild(self):
        self.array.rebuild()
        assert self.array.failed_disks() == []
        # Rebuild reconstructs every stripe, healing latent errors.
        self.latent.clear()

    @rule(disk=st.integers(0, K + 1), strip=st.integers(0, N_STRIPES - 1))
    def latent_error(self, disk, strip):
        d = self.array.disks[disk]
        if d.failed or not self._budget_ok(latent_at=(strip, disk)):
            return
        if strip in self.corrupted_stripes:
            return  # reconstruction would read the corrupted column
        d.mark_latent_error(strip)
        self.latent.setdefault(strip, set()).add(disk)

    @precondition(lambda self: not self.array.failed_disks())
    @rule(disk=st.integers(0, K + 1), strip=st.integers(0, N_STRIPES - 1),
          seed=st.integers(0, 2**31))
    def silent_corruption(self, disk, strip, seed):
        # One corruption per stripe keeps within the scrubber's
        # single-column guarantee; avoid corrupting unreadable strips.
        d = self.array.disks[disk]
        if d.failed or strip in self.corrupted_stripes:
            return
        if self.latent.get(strip):
            return  # the stripe is already using its redundancy
        d.corrupt(strip, seed=seed)
        self.corrupted_stripes.add(strip)

    @precondition(lambda self: not self.array.failed_disks())
    @rule()
    def scrub(self):
        report = Scrubber(self.array).scrub()
        assert report.healthy
        self.corrupted_stripes.clear()
        self.latent.clear()  # scrubbing reads (and heals) every strip

    # -- invariants ---------------------------------------------------------

    @invariant()
    def capacity_constant(self):
        if hasattr(self, "array"):
            assert self.array.capacity == len(self.model)

    def teardown(self):
        if not hasattr(self, "array"):
            return
        # Final reconciliation: clean everything up, then the array must
        # agree with the model byte for byte.
        if self.array.failed_disks():
            self.array.rebuild()
        report = Scrubber(self.array).scrub()
        assert report.healthy
        assert self.array.read(0, self.array.capacity) == bytes(self.model)


RaidModel.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestRaidModel = RaidModel.TestCase
