"""Tests for write-hole protection: journal, crash sweep, recovery."""

import numpy as np
import pytest

from repro.array.journal import (
    CrashPoint,
    JournaledRAID6Array,
    SimulatedCrash,
    StripeJournal,
)
from repro.array.raid6 import RAID6Array
from repro.array.workloads import payload
from repro.codes import make_code

K, P, N_STRIPES, ELEM = 4, 5, 4, 16


def journaled_array():
    code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
    arr = JournaledRAID6Array(code, n_stripes=N_STRIPES)
    data = payload(arr.capacity, seed=1)
    arr.write(0, data)
    return arr, data


class TestJournalBasics:
    def test_records_retired_after_clean_writes(self):
        arr, _ = journaled_array()
        arr.write(100, b"hello world")
        assert arr.journal.pending() == []
        assert len(arr.journal) == 0  # retired records are reclaimed

    def test_normal_semantics_unchanged(self):
        arr, data = journaled_array()
        patch = payload(333, seed=2)
        arr.write(50, patch)
        expect = data[:50] + patch + data[383:]
        assert arr.read(0, arr.capacity) == expect

    def test_log_copies_contents(self):
        journal = StripeJournal()
        strip = np.ones((P, 2), dtype=np.uint64)
        rec = journal.log(0, {1: strip})
        strip[:] = 7
        assert (rec.strips[1] == 1).all()


class TestWriteHoleDemonstration:
    """Without a journal, crash-torn parity + a later disk failure
    corrupts an *unrelated* strip.  With the journal it cannot."""

    def _crash_mid_small_write(self, arr, offset, data, after):
        arr.arm_crash(CrashPoint(after))
        with pytest.raises(SimulatedCrash):
            arr.write(offset, data)
        arr.arm_crash(None)

    def test_unjournaled_write_hole_exists(self):
        code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
        arr = RAID6Array(code, n_stripes=N_STRIPES)
        data = payload(arr.capacity, seed=1)
        arr.write(0, data)
        # Tear a small write by hand: write the data strip but not parity.
        buf = arr.read_stripe(0)
        new_elem = np.frombuffer(payload(ELEM, seed=9), dtype=np.uint64)
        code.update(buf, 1, 2, new_elem)
        arr.write_stripe(0, buf, columns=[1])  # data lands...
        # ... crash: parity strips never written.  Now disk holding
        # column 0 of stripe 0 dies.
        arr.fail_disk(arr.layout.disk_for(0, 0))
        got = arr.read_stripe(0)
        # Reconstruction of column 0 is wrong: stale parity + new data.
        assert not np.array_equal(
            got[0], np.frombuffer(data[: code.strip_bytes], dtype=np.uint64).reshape(P, -1)
        )

    def test_journaled_recovery_closes_the_hole(self):
        arr, data = journaled_array()
        patch = payload(ELEM, seed=9)
        self._crash_mid_small_write(arr, ELEM * 5, patch, after=1)
        assert arr.journal.pending()  # the intent survived the crash
        arr.recover()
        # After recovery the logged update is fully applied...
        expect = data[: ELEM * 5] + patch + data[ELEM * 6 :]
        assert arr.read(0, arr.capacity) == expect
        # ... and a subsequent disk failure reconstructs correctly.
        arr.fail_disk(0)
        assert arr.read(0, arr.capacity) == expect


class TestCrashSweep:
    """Crash after *every* possible strip write of a workload; recovery
    must always yield consistent parity and atomic (all-or-nothing at
    the record level, here: fully-new) contents."""

    @pytest.mark.parametrize("crash_after", range(0, 9))
    def test_small_write_crash_positions(self, crash_after):
        arr, data = journaled_array()
        patch = payload(ELEM * 3, seed=4)  # three element updates
        arr.arm_crash(CrashPoint(crash_after))
        try:
            arr.write(ELEM * 2, patch)
            crashed = False
        except SimulatedCrash:
            crashed = True
        arr.arm_crash(None)
        arr.recover()
        # Every stripe parity-consistent.
        for s in range(N_STRIPES):
            assert arr.code.verify(arr.read_stripe(s)), (crash_after, s)
        # Each element is either fully old or fully new -- and replay
        # completes any update whose intent was logged.
        got = arr.read(0, arr.capacity)
        for i in range(3):
            lo = ELEM * (2 + i)
            piece = got[lo : lo + ELEM]
            old = data[lo : lo + ELEM]
            new = patch[ELEM * i : ELEM * (i + 1)]
            assert piece in (old, new), (crash_after, i)
        if not crashed:
            assert got[ELEM * 2 : ELEM * 5] == patch

    @pytest.mark.parametrize("crash_after", [0, 2, 5, 7])
    def test_full_stripe_crash_positions(self, crash_after):
        arr, data = journaled_array()
        stripe_bytes = arr.layout.stripe_data_bytes
        new = payload(stripe_bytes, seed=6)
        arr.arm_crash(CrashPoint(crash_after))
        try:
            arr.write(stripe_bytes, new)  # rewrite stripe 1
        except SimulatedCrash:
            pass
        arr.arm_crash(None)
        arr.recover()
        for s in range(N_STRIPES):
            assert arr.code.verify(arr.read_stripe(s))
        got = arr.read(stripe_bytes, stripe_bytes)
        assert got == new  # intent was logged before any write

    def test_recovery_is_idempotent(self):
        arr, _ = journaled_array()
        arr.arm_crash(CrashPoint(1))
        with pytest.raises(SimulatedCrash):
            arr.write(0, payload(ELEM, seed=3))
        arr.arm_crash(None)
        assert arr.recover() == 1
        assert arr.recover() == 0
        for s in range(N_STRIPES):
            assert arr.code.verify(arr.read_stripe(s))
