"""Tests for the parity-declustered layout."""

import numpy as np
import pytest

from repro.array import RAID6Array, Scrubber
from repro.array.layout import DeclusteredLayout
from repro.array.workloads import payload
from repro.codes import make_code

K, P, ELEM = 4, 5, 16


def declustered(n_pool=12, n_stripes=40, seed=1):
    code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
    layout = DeclusteredLayout(K, code.rows, ELEM, n_stripes, n_pool=n_pool, seed=seed)
    arr = RAID6Array(code, layout=layout)
    data = payload(arr.capacity, seed=3)
    arr.write(0, data)
    return arr, data


class TestLayout:
    def test_pool_validation(self):
        with pytest.raises(ValueError):
            DeclusteredLayout(4, 5, 16, 8, n_pool=5)

    def test_mapping_is_permutation_subset(self):
        lay = DeclusteredLayout(4, 5, 16, 20, n_pool=10)
        for s in range(20):
            disks = [lay.disk_for(s, c) for c in range(6)]
            assert len(set(disks)) == 6
            assert all(0 <= d < 10 for d in disks)

    def test_column_for_inverse(self):
        lay = DeclusteredLayout(4, 5, 16, 20, n_pool=10)
        for s in range(20):
            for c in range(6):
                assert lay.column_for(s, lay.disk_for(s, c)) == c

    def test_column_for_absent_disk_is_none(self):
        lay = DeclusteredLayout(4, 5, 16, 20, n_pool=10)
        for s in range(20):
            used = {lay.disk_for(s, c) for c in range(6)}
            for d in set(range(10)) - used:
                assert lay.column_for(s, d) is None

    def test_deterministic_per_seed(self):
        a = DeclusteredLayout(4, 5, 16, 10, n_pool=9, seed=7)
        b = DeclusteredLayout(4, 5, 16, 10, n_pool=9, seed=7)
        c = DeclusteredLayout(4, 5, 16, 10, n_pool=9, seed=8)
        assert a._maps == b._maps
        assert a._maps != c._maps

    def test_stripes_on_disk(self):
        lay = DeclusteredLayout(4, 5, 16, 30, n_pool=10, seed=2)
        for d in range(10):
            for s in lay.stripes_on_disk(d):
                assert lay.column_for(s, d) is not None

    def test_geometry_mismatch_rejected(self):
        code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
        bad = DeclusteredLayout(K, code.rows + 1, ELEM, 8, n_pool=10)
        with pytest.raises(ValueError):
            RAID6Array(code, layout=bad)


class TestDeclusteredArray:
    def test_round_trip(self):
        arr, data = declustered()
        assert arr.read(0, arr.capacity) == data

    def test_double_failure_and_rebuild(self):
        arr, data = declustered()
        arr.fail_disk(3)
        arr.fail_disk(7)
        assert arr.read(0, arr.capacity) == data
        arr.rebuild()
        assert arr.read(0, arr.capacity) == data
        for s in range(arr.layout.n_stripes):
            assert arr.code.verify(arr.read_stripe(s))

    def test_rebuild_touches_only_affected_stripes(self):
        arr, _ = declustered()
        arr.fail_disk(5)
        expected = len(arr.layout.stripes_on_disk(5))
        assert arr.rebuild() == expected
        assert expected < arr.layout.n_stripes  # declustering dilutes

    def test_rebuild_reads_spread_over_pool(self):
        """The declustering claim: every survivor contributes, none is
        the bottleneck."""
        arr, _ = declustered(n_pool=12, n_stripes=60)
        for d in arr.disks:
            d.stats.reset()
        arr.fail_disk(4)
        arr.rebuild()
        reads = [d.stats.reads for d in arr.disks if d.disk_id != 4]
        assert all(r > 0 for r in reads)
        assert max(reads) < 2.5 * (sum(reads) / len(reads))

    def test_wider_pool_reduces_per_disk_rebuild_load(self):
        loads = {}
        for pool in (6, 12, 18):
            arr, _ = declustered(n_pool=pool, n_stripes=60)
            for d in arr.disks:
                d.stats.reset()
            arr.fail_disk(0)
            arr.rebuild()
            survivors = [d.stats.reads for d in arr.disks if d.disk_id != 0]
            loads[pool] = max(survivors)
        assert loads[18] < loads[12] < loads[6]

    def test_scrub_works_on_declustered(self):
        arr, data = declustered()
        arr.disks[2].corrupt(arr.layout.stripes_on_disk(2)[0], seed=5)
        report = Scrubber(arr).scrub()
        assert report.stripes_corrected == 1
        assert arr.read(0, arr.capacity) == data
