"""Tests for scrubbing and fault injection."""

import numpy as np
import pytest

from repro.array import FaultInjector, RAID6Array, Scrubber
from repro.array.workloads import payload
from repro.codes import make_code


def build(name="liberation-optimal", k=4, p=5, n_stripes=12):
    code = make_code(name, k, p=p, element_size=16)
    arr = RAID6Array(code, n_stripes=n_stripes)
    data = payload(arr.capacity, seed=3)
    arr.write(0, data)
    return arr, data


class TestScrubClean:
    def test_clean_array(self):
        arr, _ = build()
        report = Scrubber(arr).scrub()
        assert report.stripes_scanned == 12
        assert report.stripes_clean == 12
        assert report.healthy


class TestScrubRepairs:
    def test_single_corruption_located_and_fixed(self):
        arr, data = build()
        arr.disks[2].corrupt(5, seed=1)
        report = Scrubber(arr).scrub()
        assert report.stripes_corrected == 1
        assert report.corrected[0][0] == 5  # the stripe
        assert arr.read(0, arr.capacity) == data
        assert Scrubber(arr).scrub().stripes_clean == 12

    def test_many_distinct_stripes(self):
        arr, data = build()
        injector = FaultInjector(arr, seed=7)
        hits = injector.corrupt_random_strips(6)
        report = Scrubber(arr).scrub()
        assert report.stripes_corrected == len({s for (_d, s) in hits})
        assert report.healthy
        assert arr.read(0, arr.capacity) == data

    def test_parity_strip_corruption(self):
        arr, data = build()
        # Stripe 4's P column lives on disk (p_col + 4) % 6.
        pdisk = arr.layout.disk_for(4, arr.code.p_col)
        arr.disks[pdisk].corrupt(4, seed=2)
        report = Scrubber(arr).scrub()
        assert report.stripes_corrected == 1
        assert arr.read(0, arr.capacity) == data
        assert arr.code.verify(arr.read_stripe(4))

    def test_detect_only_mode(self):
        arr, data = build()
        arr.disks[1].corrupt(2, seed=3)
        report = Scrubber(arr).scrub(repair=False)
        assert report.stripes_uncorrectable == 1
        assert not report.healthy

    def test_non_locating_code_detects_only(self):
        arr, _ = build(name="evenodd")
        arr.disks[1].corrupt(2, seed=4)
        report = Scrubber(arr).scrub()
        assert report.stripes_uncorrectable == 1
        assert report.uncorrectable == [2]


class TestDetectOnlyFallbackSurfacing:
    def test_fallback_is_flagged_in_the_report(self):
        arr, _ = build(name="evenodd")
        report = Scrubber(arr).scrub()
        assert report.detect_only_fallback
        assert report.healthy  # nothing wrong, merely locator-less

    def test_locating_code_does_not_flag(self):
        arr, _ = build()
        report = Scrubber(arr).scrub()
        assert not report.detect_only_fallback
        # repair=False is a deliberate choice, not a fallback.
        assert not Scrubber(arr).scrub(repair=False).detect_only_fallback

    def test_fallback_logs_a_warning(self, caplog):
        import logging

        arr, _ = build(name="evenodd")
        with caplog.at_level(logging.WARNING, logger="repro.array.scrub"):
            Scrubber(arr)
        assert any("no single-column error locator" in r.message
                   for r in caplog.records)

    def test_locating_code_stays_quiet(self, caplog):
        import logging

        arr, _ = build()
        with caplog.at_level(logging.WARNING, logger="repro.array.scrub"):
            Scrubber(arr)
        assert not caplog.records


class TestFaultInjector:
    def test_fail_random_disks(self):
        arr, data = build()
        injector = FaultInjector(arr, seed=5)
        failed = injector.fail_random_disks(2)
        assert sorted(failed) == sorted(arr.failed_disks())
        assert arr.read(0, arr.capacity) == data

    def test_too_many_failures_rejected(self):
        arr, _ = build()
        injector = FaultInjector(arr, seed=5)
        with pytest.raises(ValueError):
            injector.fail_random_disks(7)

    def test_latent_errors_recoverable(self):
        arr, data = build()
        injector = FaultInjector(arr, seed=6)
        injected = injector.inject_latent_errors(4)
        assert len(injected) == 4
        assert arr.read(0, arr.capacity) == data

    def test_injection_log(self):
        arr, _ = build()
        injector = FaultInjector(arr, seed=8)
        injector.corrupt_random_strips(3)
        injector.inject_latent_errors(2)
        assert len(injector.log.corruptions) == 3
        assert len(injector.log.latent_errors) == 2

    def test_distinct_stripes_constraint(self):
        arr, _ = build()
        injector = FaultInjector(arr, seed=9)
        hits = injector.corrupt_random_strips(8)
        stripes = [s for (_d, s) in hits]
        assert len(set(stripes)) == len(stripes)


class TestCombinedScenario:
    def test_corruption_then_disk_loss(self):
        """Scrub first, then survive a double failure -- the §I story."""
        arr, data = build(n_stripes=10)
        FaultInjector(arr, seed=10).corrupt_random_strips(3)
        assert Scrubber(arr).scrub().healthy
        arr.fail_disk(0)
        arr.fail_disk(3)
        assert arr.read(0, arr.capacity) == data
        arr.rebuild()
        assert Scrubber(arr).scrub().stripes_clean == 10
