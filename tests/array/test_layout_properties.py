"""Property-based tests for stripe layouts and byte addressing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.array.layout import DeclusteredLayout, StripeLayout

layout_params = st.tuples(
    st.integers(2, 12),  # k
    st.integers(1, 8),  # rows
    st.sampled_from([8, 16, 64]),  # element size
    st.integers(1, 12),  # stripes
)


class TestStripeLayoutProperties:
    @settings(max_examples=60, deadline=None)
    @given(params=layout_params)
    def test_element_addressing_bijective(self, params):
        k, rows, elem, stripes = params
        lay = StripeLayout(k, rows, elem, stripes)
        seen = set()
        for idx in range(lay.n_elements()):
            a = lay.element_address(idx)
            key = (a.stripe, a.column, a.row)
            assert key not in seen
            seen.add(key)
            assert 0 <= a.column < k and 0 <= a.row < rows
            assert a.disk == lay.disk_for(a.stripe, a.column)
        assert len(seen) == lay.n_elements()

    @settings(max_examples=60, deadline=None)
    @given(params=layout_params, data=st.data())
    def test_byte_ranges_partition_exactly(self, params, data):
        k, rows, elem, stripes = params
        lay = StripeLayout(k, rows, elem, stripes)
        cap = lay.capacity_bytes
        offset = data.draw(st.integers(0, cap - 1))
        length = data.draw(st.integers(0, cap - offset))
        pieces = lay.byte_range_elements(offset, length)
        assert sum(hi - lo for (_a, lo, hi) in pieces) == length
        # Pieces are contiguous in logical byte order.
        pos = offset
        for addr, lo, hi in pieces:
            idx = (
                addr.stripe * k * rows + addr.column * rows + addr.row
            )
            assert idx * elem + lo == pos
            pos += hi - lo

    @settings(max_examples=60, deadline=None)
    @given(params=layout_params, stripe=st.integers(0, 1000))
    def test_rotation_is_bijection_per_stripe(self, params, stripe):
        k, rows, elem, stripes = params
        lay = StripeLayout(k, rows, elem, stripes)
        s = stripe % stripes
        disks = [lay.disk_for(s, c) for c in range(k + 2)]
        assert sorted(disks) == list(range(k + 2))


class TestDeclusteredLayoutProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        params=layout_params,
        extra=st.integers(0, 6),
        seed=st.integers(0, 100),
    )
    def test_mapping_consistency(self, params, extra, seed):
        k, rows, elem, stripes = params
        pool = k + 2 + extra
        lay = DeclusteredLayout(k, rows, elem, stripes, n_pool=pool, seed=seed)
        for s in range(stripes):
            cols_seen = set()
            for d in range(pool):
                c = lay.column_for(s, d)
                if c is not None:
                    assert lay.disk_for(s, c) == d
                    cols_seen.add(c)
            assert cols_seen == set(range(k + 2))

    @settings(max_examples=40, deadline=None)
    @given(params=layout_params, seed=st.integers(0, 100))
    def test_stripes_on_disk_partition(self, params, seed):
        k, rows, elem, stripes = params
        pool = k + 4
        lay = DeclusteredLayout(k, rows, elem, stripes, n_pool=pool, seed=seed)
        total = sum(len(lay.stripes_on_disk(d)) for d in range(pool))
        assert total == stripes * (k + 2)
