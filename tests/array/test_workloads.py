"""Tests for workload generators."""

import pytest

from repro.array.workloads import (
    oltp_mix,
    payload,
    random_small_writes,
    sequential_fill,
)


class TestPayload:
    def test_deterministic(self):
        assert payload(64, 1) == payload(64, 1)
        assert payload(64, 1) != payload(64, 2)

    def test_length(self):
        assert len(payload(123, 0)) == 123


class TestSequentialFill:
    def test_covers_capacity(self):
        ops = list(sequential_fill(1000, 100))
        assert len(ops) == 10
        assert [op.offset for op in ops] == list(range(0, 1000, 100))
        assert all(len(op.data) == 100 for op in ops)

    def test_partial_tail_dropped(self):
        ops = list(sequential_fill(1050, 100))
        assert len(ops) == 10  # only whole stripes


class TestRandomSmallWrites:
    def test_count_and_alignment(self):
        ops = list(random_small_writes(1024, 16, 20, seed=1))
        assert len(ops) == 20
        for op in ops:
            assert op.offset % 16 == 0
            assert op.offset + 16 <= 1024
            assert len(op.data) == 16

    def test_seed_reproducible(self):
        a = [(o.offset, o.data) for o in random_small_writes(1024, 16, 10, seed=2)]
        b = [(o.offset, o.data) for o in random_small_writes(1024, 16, 10, seed=2)]
        assert a == b


class TestOltpMix:
    def test_mixture_proportion(self):
        ops = list(
            oltp_mix(10_000, 1000, 8, 300, small_fraction=0.8, seed=3)
        )
        smalls = sum(1 for op in ops if len(op.data) == 8)
        assert len(ops) == 300
        assert 0.7 < smalls / 300 < 0.9

    def test_all_small(self):
        ops = list(oltp_mix(10_000, 1000, 8, 50, small_fraction=1.0, seed=4))
        assert all(len(op.data) == 8 for op in ops)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            list(oltp_mix(1000, 100, 8, 1, small_fraction=1.5))

    def test_offsets_in_capacity(self):
        for op in oltp_mix(10_000, 1000, 8, 200, seed=5):
            assert 0 <= op.offset and op.offset + len(op.data) <= 10_000
