"""Tests for trace parsing and replay."""

import pytest

from repro.array import RAID6Array
from repro.array.replay import (
    ReplayStats,
    TraceOp,
    parse_trace,
    replay,
    synthesize_trace,
)
from repro.codes import make_code


def fresh_array(k=4, p=5, n_stripes=8, element_size=16):
    return RAID6Array(make_code("liberation-optimal", k, p=p, element_size=element_size),
                      n_stripes=n_stripes)


class TestParseTrace:
    def test_basic(self):
        ops = list(parse_trace("W 0 64 7\nR 64 128\n"))
        assert ops == [TraceOp("W", 0, 64, 7), TraceOp("R", 64, 128, 2)]

    def test_comments_and_blanks(self):
        text = "# header\n\nW 0 8  # inline\n"
        ops = list(parse_trace(text))
        assert len(ops) == 1 and ops[0].kind == "W"

    def test_lowercase_ops(self):
        assert list(parse_trace("r 0 8\n"))[0].kind == "R"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            list(parse_trace("X 0 8\n"))
        with pytest.raises(ValueError):
            list(parse_trace("W 0\n"))
        with pytest.raises(ValueError):
            list(parse_trace("W -1 8\n"))


class TestReplay:
    def test_counts(self):
        arr = fresh_array()
        stats = replay(arr, parse_trace("W 0 64 1\nR 0 64\nW 128 32 2\n"))
        assert stats.ops == 3 and stats.writes == 2 and stats.reads == 1
        assert stats.user_bytes_written == 96
        assert stats.user_bytes_read == 64
        assert stats.disk_bytes_written > 0

    def test_write_then_read_consistency(self):
        arr = fresh_array()
        replay(arr, parse_trace("W 0 100 5\n"))
        from repro.array.workloads import payload

        assert arr.read(0, 100) == payload(100, 5)

    def test_offsets_clamped_to_capacity(self):
        arr = fresh_array()
        big = arr.capacity * 3 + 17
        stats = replay(arr, [TraceOp("W", big, 10, 1)])
        assert stats.writes == 1

    def test_amplification_properties(self):
        arr = fresh_array()
        stats = replay(arr, parse_trace(synthesize_trace("uniform", arr.capacity,
                                                         n_ops=50, io_size=16, seed=1)))
        # Small writes RMW: write amplification well above 1.
        assert stats.write_amplification > 2
        assert stats.read_amplification >= 1 or stats.reads == 0

    def test_zero_division_guards(self):
        stats = ReplayStats()
        assert stats.write_amplification == 0.0
        assert stats.read_amplification == 0.0


class TestSynthesizeTrace:
    @pytest.mark.parametrize("kind", ["sequential", "uniform", "zipf"])
    def test_generates_parseable(self, kind):
        text = synthesize_trace(kind, 10_000, n_ops=30, io_size=100, seed=2)
        ops = list(parse_trace(text))
        assert len(ops) == 30
        assert all(o.offset % 100 == 0 for o in ops)

    def test_sequential_is_writes_in_order(self):
        ops = list(parse_trace(synthesize_trace("sequential", 1000, n_ops=5, io_size=100)))
        assert [o.offset for o in ops] == [0, 100, 200, 300, 400]
        assert all(o.kind == "W" for o in ops)

    def test_zipf_skews(self):
        ops = list(parse_trace(synthesize_trace("zipf", 100_000, n_ops=400,
                                                io_size=100, seed=3)))
        from collections import Counter

        top = Counter(o.offset for o in ops).most_common(1)[0][1]
        assert top > 400 * 0.1  # a genuine hot spot

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            synthesize_trace("burst", 1000)

    def test_full_stripe_detection(self):
        arr = fresh_array()
        sdb = arr.layout.stripe_data_bytes
        stats = replay(arr, parse_trace(f"W 0 {sdb} 1\nW {sdb} {sdb // 2} 2\n"))
        assert stats.full_stripe_writes == 1
        assert stats.small_writes >= 1
