"""Tests for the rotating-parity stripe layout."""

import pytest

from repro.array.layout import StripeLayout


@pytest.fixture
def layout():
    return StripeLayout(k=4, rows=5, element_size=16, n_stripes=8)


class TestRotation:
    def test_stripe0_identity(self, layout):
        for col in range(6):
            assert layout.disk_for(0, col) == col

    def test_rotation_shifts_per_stripe(self, layout):
        assert layout.disk_for(1, 0) == 1
        assert layout.disk_for(5, 4) == (4 + 5) % 6

    def test_round_trip(self, layout):
        for stripe in range(8):
            for disk in range(6):
                col = layout.column_for(stripe, disk)
                assert layout.disk_for(stripe, col) == disk

    def test_parity_visits_every_disk(self, layout):
        p_disks = {layout.disk_for(s, 4) for s in range(6)}
        q_disks = {layout.disk_for(s, 5) for s in range(6)}
        assert p_disks == set(range(6))
        assert q_disks == set(range(6))

    def test_bounds(self, layout):
        with pytest.raises(IndexError):
            layout.disk_for(0, 6)
        with pytest.raises(IndexError):
            layout.column_for(0, 6)


class TestCapacity:
    def test_stripe_data_bytes(self, layout):
        assert layout.stripe_data_bytes == 4 * 5 * 16

    def test_capacity(self, layout):
        assert layout.capacity_bytes == 8 * 320

    def test_n_elements(self, layout):
        assert layout.n_elements() == 8 * 4 * 5


class TestElementAddressing:
    def test_column_major_fill(self, layout):
        a0 = layout.element_address(0)
        assert (a0.stripe, a0.column, a0.row) == (0, 0, 0)
        a5 = layout.element_address(5)  # first element of column 1
        assert (a5.stripe, a5.column, a5.row) == (0, 1, 0)
        a20 = layout.element_address(20)  # next stripe
        assert (a20.stripe, a20.column, a20.row) == (1, 0, 0)

    def test_disk_follows_rotation(self, layout):
        a = layout.element_address(20)
        assert a.disk == layout.disk_for(1, 0)

    def test_bounds(self, layout):
        with pytest.raises(IndexError):
            layout.element_address(layout.n_elements())


class TestByteRanges:
    def test_aligned_single_element(self, layout):
        pieces = layout.byte_range_elements(16, 16)
        assert len(pieces) == 1
        addr, lo, hi = pieces[0]
        assert (lo, hi) == (0, 16)
        assert (addr.column, addr.row) == (0, 1)

    def test_unaligned_span(self, layout):
        pieces = layout.byte_range_elements(10, 20)
        assert [(lo, hi) for (_a, lo, hi) in pieces] == [(10, 16), (0, 14)]

    def test_total_length_preserved(self, layout):
        pieces = layout.byte_range_elements(7, 100)
        assert sum(hi - lo for (_a, lo, hi) in pieces) == 100

    def test_out_of_capacity(self, layout):
        with pytest.raises(ValueError):
            layout.byte_range_elements(layout.capacity_bytes - 8, 16)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(0, 5, 16, 8)
