"""Tests for generic bit-matrix erasure decoding."""

import itertools

import numpy as np
import pytest

from repro.bitmatrix.builder import liberation_bitmatrix
from repro.bitmatrix.decode import bitmatrix_decode_schedule, decoding_rows
from repro.bitmatrix.schedule import dumb_schedule
from repro.engine.executor import execute_bits

from tests.conftest import SMALL_PK, erasure_patterns


def encode(p, k, bits):
    g = liberation_bitmatrix(p, k)
    out = bits.copy()
    execute_bits(dumb_schedule(g, p, k), out)
    return out


class TestDecodingRows:
    def test_reconstruction_identity(self, random_bits):
        """Applying the decode rows to survivors yields the erased bits."""
        p, k = 5, 4
        g = liberation_bitmatrix(p, k)
        ref = encode(p, k, random_bits(k + 2, p))
        rows, dst_cells, src_cells = decoding_rows(g, p, k, [0, 2])
        s = np.array([ref[c, r] for (c, r) in src_cells], dtype=np.uint8)
        rec = (rows.astype(np.int64) @ s.astype(np.int64)) % 2
        for value, (c, r) in zip(rec, dst_cells):
            assert value == ref[c, r]

    def test_no_erasures_rejected(self):
        g = liberation_bitmatrix(5, 4)
        with pytest.raises(ValueError):
            decoding_rows(g, 5, 4, [])

    def test_out_of_range_rejected(self):
        g = liberation_bitmatrix(5, 4)
        with pytest.raises(ValueError):
            decoding_rows(g, 5, 4, [4])

    def test_insufficient_parities(self):
        g = liberation_bitmatrix(5, 4)
        with pytest.raises(ValueError, match="beyond RAID-6"):
            decoding_rows(g, 5, 4, [0, 1], surviving_parities=[0])

    def test_single_erasure_with_q_only(self, random_bits):
        p, k = 5, 4
        g = liberation_bitmatrix(p, k)
        ref = encode(p, k, random_bits(k + 2, p))
        rows, dst_cells, src_cells = decoding_rows(
            g, p, k, [1], surviving_parities=[1]
        )
        s = np.array([ref[c, r] for (c, r) in src_cells], dtype=np.uint8)
        rec = (rows.astype(np.int64) @ s.astype(np.int64)) % 2
        for value, (c, r) in zip(rec, dst_cells):
            assert value == ref[c, r]


class TestBitmatrixDecodeSchedule:
    @pytest.mark.parametrize("p,k", SMALL_PK)
    @pytest.mark.parametrize("smart", [False, True])
    def test_exhaustive_patterns(self, p, k, smart, random_bits):
        g = liberation_bitmatrix(p, k)
        ref = encode(p, k, random_bits(k + 2, p))
        for pat in erasure_patterns(k):
            dmg = ref.copy()
            for c in pat:
                dmg[c, :] = 1 - dmg[c, :]  # definitely wrong
            sched = bitmatrix_decode_schedule(g, p, k, pat, smart=smart)
            execute_bits(sched, dmg)
            assert np.array_equal(dmg, ref), (p, k, pat, smart)

    def test_schedule_reads_only_survivors(self):
        """Before writing them, erased cells must never be read."""
        p, k = 7, 5
        g = liberation_bitmatrix(p, k)
        for pat in [(0, 3), (2, k), (1, k + 1), (k, k + 1)]:
            sched = bitmatrix_decode_schedule(g, p, k, pat, smart=True)
            written = set()
            for op in sched:
                if op.src_col in pat:
                    assert op.src in written, (pat, op)
                written.add(op.dst)

    def test_smart_decode_beats_dumb_decode(self):
        p, k = 11, 11
        g = liberation_bitmatrix(p, k)
        pairs = list(itertools.combinations(range(k), 2))
        smart = sum(bitmatrix_decode_schedule(g, p, k, pr, smart=True).n_xors for pr in pairs)
        dumb = sum(bitmatrix_decode_schedule(g, p, k, pr, smart=False).n_xors for pr in pairs)
        assert smart < 0.6 * dumb

    def test_original_decode_complexity_band(self):
        """Plank's bit-matrix scheduling lands ~15-30% over the bound
        (the inefficiency the paper's Algorithm 4 removes)."""
        p, k = 11, 11
        g = liberation_bitmatrix(p, k)
        pairs = list(itertools.combinations(range(k), 2))
        avg = sum(
            bitmatrix_decode_schedule(g, p, k, pr, smart=True).n_xors for pr in pairs
        ) / len(pairs)
        norm = avg / (2 * p) / (k - 1)
        assert 1.10 < norm < 1.35

    def test_total_cols_widens(self):
        g = liberation_bitmatrix(5, 3)
        sched = bitmatrix_decode_schedule(g, 5, 3, [0, 1], total_cols=6)
        assert sched.cols == 6
