"""Tests for bit-matrix -> schedule lowering."""

import numpy as np
import pytest

from repro.bitmatrix.builder import liberation_bitmatrix
from repro.bitmatrix.schedule import dumb_schedule, schedule_from_rows, smart_schedule
from repro.engine.executor import execute_bits
from repro.engine.ops import Schedule


def reference_encode(generator, w, k, bits):
    """Parity via direct GF(2) matvec on the data bits."""
    data = np.concatenate([bits[j] for j in range(k)])
    parity = (generator.astype(np.int64) @ data.astype(np.int64)) % 2
    out = bits.copy()
    out[k] = parity[:w]
    out[k + 1] = parity[w:]
    return out.astype(np.uint8)


class TestDumbSchedule:
    @pytest.mark.parametrize("p,k", [(3, 2), (5, 3), (5, 5), (7, 6)])
    def test_matches_matrix_semantics(self, p, k, random_bits):
        g = liberation_bitmatrix(p, k)
        bits = random_bits(k + 2, p)
        expect = reference_encode(g, p, k, bits)
        got = bits.copy()
        execute_bits(dumb_schedule(g, p, k), got)
        assert np.array_equal(got, expect)

    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 11), (31, 23)])
    def test_xor_count_is_ones_minus_outputs(self, p, k):
        g = liberation_bitmatrix(p, k)
        sched = dumb_schedule(g, p, k)
        assert sched.n_xors == int(g.sum()) - 2 * p
        # Closed form: the Table I 'original' encoding count.
        assert sched.n_xors == 2 * k * p + (k - 1) - 2 * p

    def test_total_cols_widens_schedule(self):
        g = liberation_bitmatrix(5, 3)
        assert dumb_schedule(g, 5, 3).cols == 5
        assert dumb_schedule(g, 5, 3, total_cols=7).cols == 7


class TestSmartSchedule:
    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 8)])
    def test_matches_matrix_semantics(self, p, k, random_bits):
        g = liberation_bitmatrix(p, k)
        bits = random_bits(k + 2, p)
        expect = reference_encode(g, p, k, bits)
        got = bits.copy()
        execute_bits(smart_schedule(g, p, k), got)
        assert np.array_equal(got, expect)

    @pytest.mark.parametrize("p,k", [(5, 5), (7, 7), (11, 11)])
    def test_never_worse_than_dumb(self, p, k):
        g = liberation_bitmatrix(p, k)
        assert smart_schedule(g, p, k).n_xors <= dumb_schedule(g, p, k).n_xors

    def test_derivation_pays_off_on_similar_rows(self, random_bits):
        """Rows differing in one position should chain via copies."""
        rows = np.ones((4, 8), dtype=np.uint8)
        rows[1, 0] = 0
        rows[2, 1] = 0
        rows[3, 2] = 0
        dst = [(1, i) for i in range(4)]
        src = [(0, i) for i in range(8)]
        sched = schedule_from_rows(rows, dst, src, cols=2, n_rows=8, smart=True)
        # Prim starts from the cheapest row (7 ones: 6 XORs), then
        # derives the all-ones row for 1 XOR and the two others from it
        # for 1 XOR each.
        assert sched.n_xors == 6 + 1 + 1 + 1
        dumb = schedule_from_rows(rows, dst, src, cols=2, n_rows=8, smart=False)
        assert dumb.n_xors == 7 + 6 * 3

    def test_smart_correct_on_derived_rows(self, random_bits):
        rows = np.ones((4, 8), dtype=np.uint8)
        rows[1, 0] = 0
        rows[2, 1] = 0
        rows[3, 2] = 0
        dst = [(1, i) for i in range(4)]
        src = [(0, i) for i in range(8)]
        bits = random_bits(2, 8)
        expect = bits.copy()
        for i in range(4):
            expect[1, i] = int((rows[i] & bits[0]).sum() % 2)
        got = bits.copy()
        execute_bits(
            schedule_from_rows(rows, dst, src, cols=2, n_rows=8, smart=True), got
        )
        assert np.array_equal(got, expect)


class TestScheduleFromRowsValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            schedule_from_rows(
                np.ones((2, 3), dtype=np.uint8),
                [(0, 0)],
                [(1, 0), (1, 1), (1, 2)],
                cols=2,
                n_rows=3,
                smart=False,
            )

    def test_empty_row_rejected(self):
        rows = np.zeros((1, 2), dtype=np.uint8)
        with pytest.raises(ValueError, match="empty source row"):
            schedule_from_rows(
                rows, [(0, 0)], [(1, 0), (1, 1)], cols=2, n_rows=2, smart=False
            )
