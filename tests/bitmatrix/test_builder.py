"""Tests for generator bit-matrix construction."""

import itertools

import numpy as np
import pytest

from repro.bitmatrix.builder import (
    bitmatrix_from_parity_cells,
    full_generator,
    liberation_bitmatrix,
    liberation_parity_cells,
)
from repro.gf.gf2 import gf2_rank
from repro.utils.modular import Mod


class TestLiberationParityCells:
    def test_row_constraints_cover_rows(self):
        p_rows, _ = liberation_parity_cells(5, 5)
        for i, cells in enumerate(p_rows):
            assert cells == [(i, t) for t in range(5)]

    def test_q_constraint_native_cells(self):
        mod = Mod(5)
        _, q_rows = liberation_parity_cells(5, 5)
        for i, cells in enumerate(q_rows):
            native = cells[:5]
            assert native == [(mod(i + t), t) for t in range(5)]

    def test_extra_bits_match_figure2(self):
        """Fig. 2 (p=5): extras of B,C,D,E at (3,3),(2,1),(1,4),(0,2)."""
        _, q_rows = liberation_parity_cells(5, 5)
        extras = {i: q_rows[i][5:] for i in range(5)}
        assert extras[0] == []  # Q_0 (A) has no extra bit
        assert extras[1] == [(3, 3)]
        assert extras[2] == [(2, 1)]
        assert extras[3] == [(1, 4)]
        assert extras[4] == [(0, 2)]

    def test_phantom_columns_dropped(self):
        p_rows, q_rows = liberation_parity_cells(7, 3)
        for cells in itertools.chain(p_rows, q_rows):
            assert all(col < 3 for (_row, col) in cells)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            liberation_parity_cells(9, 3)  # 9 not prime
        with pytest.raises(ValueError):
            liberation_parity_cells(5, 6)  # k > p


class TestBitmatrixAssembly:
    def test_shape(self):
        assert liberation_bitmatrix(7, 4).shape == (14, 28)

    def test_row_parity_block_structure(self):
        g = liberation_bitmatrix(5, 3)
        # P rows: identity block per data column.
        for j in range(3):
            block = g[:5, j * 5 : (j + 1) * 5]
            assert np.array_equal(block, np.eye(5, dtype=np.uint8))

    def test_q_block_column0_is_identity(self):
        g = liberation_bitmatrix(5, 5)
        assert np.array_equal(g[5:, :5], np.eye(5, dtype=np.uint8))

    def test_q_blocks_have_one_extra_one(self):
        g = liberation_bitmatrix(7, 7)
        for j in range(1, 7):
            block = g[7:, j * 7 : (j + 1) * 7]
            assert block.sum() == 8  # shifted identity + one extra bit

    def test_from_parity_cells_round_trip(self):
        p_rows, q_rows = liberation_parity_cells(5, 4)
        g = bitmatrix_from_parity_cells(p_rows, q_rows, 5, 4)
        assert np.array_equal(g, liberation_bitmatrix(5, 4))


class TestMDSProperty:
    """Any two column erasures must leave a full-rank system -- the
    defining property the bitmatrix decoder depends on."""

    @pytest.mark.parametrize("p,k", [(3, 2), (3, 3), (5, 4), (5, 5), (7, 5), (7, 7), (11, 8)])
    def test_all_double_erasures_recoverable(self, p, k):
        g = liberation_bitmatrix(p, k)
        full = full_generator(g, p, k)
        n = k + 2
        for ers in itertools.combinations(range(n), 2):
            rows = []
            for col in range(n):
                if col in ers:
                    continue
                rows.append(full[col * p : (col + 1) * p])
            stacked = np.vstack(rows)
            assert gf2_rank(stacked) == k * p, (p, k, ers)

    def test_full_generator_shape_check(self):
        g = liberation_bitmatrix(5, 3)
        with pytest.raises(ValueError):
            full_generator(g, 5, 4)

    def test_full_generator_layout(self):
        g = liberation_bitmatrix(5, 3)
        full = full_generator(g, 5, 3)
        assert full.shape == (25, 15)
        assert np.array_equal(full[:15], np.eye(15, dtype=np.uint8))
        assert np.array_equal(full[15:], g)
