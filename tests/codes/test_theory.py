"""Theory-vs-measurement agreement (Table I closed forms)."""

import itertools

import pytest

from repro.codes import make_code
from repro.codes.theory import (
    EVENODD_MODEL,
    LIBERATION_OPTIMAL_MODEL,
    LIBERATION_ORIGINAL_MODEL,
    RDP_MODEL,
    TABLE1_MODELS,
    lower_bound_decoding,
    lower_bound_encoding,
    lower_bound_update,
)

MODEL_BY_NAME = {m.name: m for m in TABLE1_MODELS}

POINTS = [
    ("evenodd", 5, 5),
    ("evenodd", 11, 7),
    ("rdp", 5, 4),
    ("rdp", 11, 7),
    ("liberation-original", 5, 5),
    ("liberation-original", 11, 7),
    ("liberation-optimal", 5, 5),
    ("liberation-optimal", 11, 7),
    ("liberation-optimal", 31, 23),
]


class TestLowerBounds:
    def test_values(self):
        assert lower_bound_encoding(10) == 9
        assert lower_bound_decoding(10) == 9
        assert lower_bound_update(10) == 2


class TestEncodingModels:
    @pytest.mark.parametrize("name,p,k", POINTS)
    def test_measured_matches_model(self, name, p, k):
        code = make_code(name, k, p=p)
        model = MODEL_BY_NAME[name]
        assert code.encoding_complexity() == pytest.approx(
            model.encoding_complexity(p, k)
        )

    def test_models_never_beat_bound(self):
        for model in TABLE1_MODELS:
            for p, k in [(5, 4), (11, 7), (31, 23)]:
                if model.name == "rdp" and k >= p:
                    continue
                assert model.encoding_complexity(p, k) >= k - 1 - 1e-9


class TestUpdateModels:
    @pytest.mark.parametrize(
        "name,p,k",
        [
            ("evenodd", 7, 6),
            ("rdp", 7, 6),
            ("liberation-original", 7, 6),
            ("liberation-optimal", 7, 6),
        ],
    )
    def test_measured_matches_model(self, name, p, k, random_words):
        code = make_code(name, k, p=p, element_size=8)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        total = sum(
            code.update(buf, c, r, random_words(buf[c, r].shape))
            for c in range(k)
            for r in range(code.rows)
        )
        model = MODEL_BY_NAME[name]
        assert total / (k * code.rows) == pytest.approx(model.update_complexity(p, k))

    def test_liberation_update_is_best(self):
        """Table I's key contrast: ~2 vs ~3 parity updates."""
        p, k = 31, 23
        lib = LIBERATION_OPTIMAL_MODEL.update_complexity(p, k)
        assert lib < 2.05
        assert EVENODD_MODEL.update_complexity(p, k) > 2.8
        assert RDP_MODEL.update_complexity(p, k) > 2.8

    def test_large_p_asymptotics(self):
        """As p grows, EVENODD/RDP -> 3 and Liberation -> 2."""
        p, k = 101, 100
        assert EVENODD_MODEL.update_complexity(p, k) == pytest.approx(3, abs=0.1)
        assert RDP_MODEL.update_complexity(p, k) == pytest.approx(3, abs=0.1)
        assert LIBERATION_ORIGINAL_MODEL.update_complexity(p, 100) == pytest.approx(
            2, abs=0.05
        )


class TestTableRelations:
    def test_original_encode_overhead_is_half_inverse_p(self):
        for p in (5, 11, 31):
            k = p - 1
            over = LIBERATION_ORIGINAL_MODEL.encoding_complexity(
                p, k
            ) - LIBERATION_OPTIMAL_MODEL.encoding_complexity(p, k)
            assert over == pytest.approx((k - 1) / (2 * p))

    def test_w_functions(self):
        assert EVENODD_MODEL.w(11) == 10
        assert RDP_MODEL.w(11) == 10
        assert LIBERATION_OPTIMAL_MODEL.w(11) == 11
