"""Tests for the Blaum-Roth R_p code and its ring substrate."""

import itertools

import numpy as np
import pytest

from repro.codes import BlaumRothCode, make_code
from repro.gf.ring import PolyRing


class TestPolyRing:
    def test_x_power_periodicity(self):
        r = PolyRing(7)
        for e in range(20):
            assert np.array_equal(r.x_power(e), r.x_power(e + 7))

    def test_x_power_wrap_is_all_ones(self):
        r = PolyRing(5)
        assert r.x_power(4).tolist() == [1, 1, 1, 1]
        assert r.x_power(2).tolist() == [0, 0, 1, 0]

    def test_mul_by_x_matches_power(self):
        r = PolyRing(11)
        v = r.x_power(0)
        for e in range(1, 25):
            v = r.mul_by_x(v)
            assert np.array_equal(v, r.x_power(e)), e

    def test_mul_commutative_and_unital(self):
        r = PolyRing(7)
        rng = np.random.default_rng(0)
        one = r.x_power(0)
        for _ in range(20):
            a = rng.integers(0, 2, r.w).astype(np.uint8)
            b = rng.integers(0, 2, r.w).astype(np.uint8)
            assert np.array_equal(r.mul(a, b), r.mul(b, a))
            assert np.array_equal(r.mul(a, one), a)

    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13])
    def test_one_plus_x_d_invertible(self, p):
        """The MDS-enabling fact: 1 + x^d is a unit for 1 <= d <= p-1."""
        r = PolyRing(p)
        for d in range(1, p):
            v = r.x_power(0) ^ r.x_power(d)
            assert r.is_invertible(v), (p, d)

    def test_zero_not_invertible(self):
        r = PolyRing(5)
        assert not r.is_invertible(np.zeros(4, dtype=np.uint8))

    def test_power_matrix_action(self):
        r = PolyRing(7)
        rng = np.random.default_rng(1)
        for e in (0, 1, 3, 6, 8):
            m = r.power_matrix(e)
            for _ in range(5):
                v = rng.integers(0, 2, r.w).astype(np.uint8)
                direct = r.mul(r.x_power(e), v)
                via_matrix = (m.astype(np.int64) @ v) % 2
                assert np.array_equal(via_matrix.astype(np.uint8), direct)


class TestBlaumRothCode:
    @pytest.mark.parametrize("p,k", [(5, 4), (7, 4), (7, 6), (11, 10)])
    def test_exhaustive_decode(self, p, k, random_words, rng):
        code = BlaumRothCode(k, p=p, element_size=16)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        ref = buf.copy()
        for pat in [(c,) for c in range(k + 2)] + list(
            itertools.combinations(range(k + 2), 2)
        ):
            dmg = ref.copy()
            for c in pat:
                dmg[c] = rng.integers(0, 2**64, dmg[c].shape, dtype=np.uint64)
            code.decode(dmg, list(pat))
            assert np.array_equal(dmg[: k + 2], ref[: k + 2]), pat

    def test_geometry(self):
        code = BlaumRothCode(6, p=7)
        assert code.rows == 6
        with pytest.raises(ValueError):
            BlaumRothCode(7, p=7)  # k <= p-1

    def test_p_row_is_plain_parity(self, random_words):
        code = BlaumRothCode(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        assert np.array_equal(buf[code.p_col], np.bitwise_xor.reduce(buf[:4], axis=0))

    def test_density_gap_vs_liberation(self):
        """BR-93's dense wrap column costs ~1 extra parity update --
        the gap minimum-density codes (Liberation) close."""
        k = 10
        br = BlaumRothCode(k, p=11)
        lib = make_code("liberation-optimal", k, p=11)
        br_density = br.generator.sum() / (k * br.rows)
        lib_density = (2 * 11 * k + k - 1) / (k * 11)
        assert br_density > lib_density + 0.5

    def test_update_consistency(self, random_words):
        code = BlaumRothCode(5, p=7, element_size=16)
        buf = code.alloc_stripe()
        buf[:5] = random_words(buf[:5].shape)
        code.encode(buf)
        total = 0
        for col in range(5):
            for row in range(code.rows):
                total += code.update(buf, col, row, random_words(buf[col, row].shape))
        assert code.verify(buf)
        avg = total / (5 * code.rows)
        assert 2.5 < avg < 3.2  # ~3, vs Liberation's ~2

    def test_with_k(self):
        code = BlaumRothCode(4, p=11)
        grown = code.with_k(8)
        assert grown.p == 11 and grown.rows == 10

    def test_registry(self):
        assert make_code("blaum-roth", 4).name == "blaum-roth"
