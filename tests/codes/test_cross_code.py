"""Cross-family behavioural contracts, parametrized over all codes.

Every registered code must: round-trip any <=2-column erasure at the
word level, keep data columns untouched during encode, produce
consistent parity under delta updates, and (for XOR codes) agree
between bit-level and word-level execution.
"""

import itertools

import numpy as np
import pytest

from repro.codes import XorScheduleCode, make_code

CONFIGS = [
    ("liberation-optimal", 4, {"p": 5}),
    ("liberation-optimal", 7, {"p": 7}),
    ("liberation-original", 4, {"p": 5}),
    ("liberation-original-dumb", 5, {"p": 7}),
    ("evenodd", 4, {"p": 5}),
    ("evenodd", 6, {"p": 7}),
    ("rdp", 4, {"p": 5}),
    ("rdp", 6, {"p": 7}),
    ("reed-solomon", 4, {"rows": 3}),
    ("reed-solomon", 6, {"rows": 2}),
]


def fresh(name, k, kw, element_size=16):
    return make_code(name, k, element_size=element_size, **kw)


def encoded_stripe(code, random_words):
    buf = code.alloc_stripe()
    buf[: code.k] = random_words(buf[: code.k].shape)
    code.encode(buf)
    return buf


@pytest.mark.parametrize("name,k,kw", CONFIGS, ids=lambda v: str(v))
class TestRoundTrip:
    def test_all_erasure_patterns(self, name, k, kw, random_words, rng):
        code = fresh(name, k, kw)
        ref = encoded_stripe(code, random_words)
        pats = [(c,) for c in range(code.n_cols)] + list(
            itertools.combinations(range(code.n_cols), 2)
        )
        for pat in pats:
            dmg = ref.copy()
            for c in pat:
                dmg[c] = rng.integers(0, 2**64, dmg[c].shape, dtype=np.uint64)
            code.decode(dmg, list(pat))
            assert np.array_equal(dmg[: code.n_cols], ref[: code.n_cols]), pat

    def test_encode_preserves_data(self, name, k, kw, random_words):
        code = fresh(name, k, kw)
        buf = code.alloc_stripe()
        data = random_words(buf[:k].shape)
        buf[:k] = data
        code.encode(buf)
        assert np.array_equal(buf[:k], data)

    def test_encode_deterministic(self, name, k, kw, random_words):
        code = fresh(name, k, kw)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        a = buf.copy()
        b = buf.copy()
        code.encode(a)
        fresh(name, k, kw).encode(b)
        assert np.array_equal(a[: code.n_cols], b[: code.n_cols])


@pytest.mark.parametrize("name,k,kw", CONFIGS, ids=lambda v: str(v))
class TestUpdates:
    def test_update_matches_reencode(self, name, k, kw, random_words):
        code = fresh(name, k, kw)
        buf = encoded_stripe(code, random_words)
        for col in range(k):
            row = (col * 2) % code.rows
            code.update(buf, col, row, random_words(buf[col, row].shape))
        assert code.verify(buf)

    def test_update_rejects_parity_target(self, name, k, kw, random_words):
        code = fresh(name, k, kw)
        buf = encoded_stripe(code, random_words)
        with pytest.raises(IndexError):
            code.update(buf, code.p_col, 0, random_words(buf[0, 0].shape))

    def test_update_count_within_bounds(self, name, k, kw, random_words):
        code = fresh(name, k, kw)
        buf = encoded_stripe(code, random_words)
        n = code.update(buf, 1, 0, random_words(buf[1, 0].shape))
        assert 2 <= n <= 2 * code.rows


@pytest.mark.parametrize(
    "name,k,kw", [c for c in CONFIGS if c[0] != "reed-solomon"], ids=lambda v: str(v)
)
class TestBitWordAgreement:
    def test_bit_planes_match_word_encode(self, name, k, kw, random_words):
        """Encoding 64 interleaved codewords == encoding each bit plane."""
        code = fresh(name, k, kw, element_size=8)
        assert isinstance(code, XorScheduleCode)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        word = buf[:, :, 0].copy()
        code.encode(buf)
        for plane in range(0, 64, 17):
            bits = ((word >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
            code.encode_bits(bits)
            got = ((buf[:, :, 0] >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
            assert np.array_equal(
                bits[: code.n_cols], got[: code.n_cols]
            ), plane
