"""Tests for the Cauchy Reed-Solomon XOR code."""

import itertools

import numpy as np
import pytest

from repro.bitmatrix.cauchy import (
    cauchy_bitmatrix,
    cauchy_good_matrix,
    cauchy_original_matrix,
    min_w_for,
)
from repro.codes import CauchyRSCode, make_code
from repro.gf.gf2w import GF2w
from repro.gf.gf2 import gf2_rank


class TestMatrixConstruction:
    def test_min_w(self):
        assert min_w_for(2) == 2
        assert min_w_for(6) == 3
        assert min_w_for(14) == 4
        assert min_w_for(30) == 5
        with pytest.raises(ValueError):
            min_w_for(5000)

    def test_original_entries(self):
        gf = GF2w(3)
        m = cauchy_original_matrix(gf, 4, 2)
        for i in range(2):
            for j in range(4):
                assert gf.mul(int(m[i, j]), i ^ (2 + j)) == 1

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            cauchy_original_matrix(GF2w(2), 4, 2)

    def test_good_matrix_row0_all_ones(self):
        gf = GF2w(4)
        m = cauchy_good_matrix(gf, 8, 2)
        assert (m[0] == 1).all()

    def test_good_matrix_has_fewer_ones(self):
        gf = GF2w(4)
        orig = cauchy_bitmatrix(gf, cauchy_original_matrix(gf, 8, 2))
        good = cauchy_bitmatrix(gf, cauchy_good_matrix(gf, 8, 2))
        assert good.sum() < orig.sum()

    @pytest.mark.parametrize("k,w", [(4, 3), (8, 4), (12, 4)])
    def test_mds_property(self, k, w):
        """Every 2x2 submatrix of the field matrix must be invertible,
        equivalently every double-erasure system has full GF(2) rank."""
        from repro.bitmatrix.builder import full_generator

        gf = GF2w(w)
        g = cauchy_bitmatrix(gf, cauchy_good_matrix(gf, k, 2))
        full = full_generator(g, w, k)
        for ers in itertools.combinations(range(k + 2), 2):
            rows = np.vstack(
                [full[c * w : (c + 1) * w] for c in range(k + 2) if c not in ers]
            )
            assert gf2_rank(rows) == k * w, ers


class TestCodeBehaviour:
    @pytest.mark.parametrize("good", [True, False])
    @pytest.mark.parametrize("k", [3, 6, 10])
    def test_exhaustive_decode(self, good, k, random_words, rng):
        code = CauchyRSCode(k, good=good, element_size=16)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        ref = buf.copy()
        for pat in [(c,) for c in range(k + 2)] + list(
            itertools.combinations(range(k + 2), 2)
        ):
            dmg = ref.copy()
            for c in pat:
                dmg[c] = rng.integers(0, 2**64, dmg[c].shape, dtype=np.uint64)
            code.decode(dmg, list(pat))
            assert np.array_equal(dmg[: k + 2], ref[: k + 2]), pat

    def test_good_p_row_is_raid5_parity(self, random_words):
        """The good matrix's first parity strip is plain XOR parity --
        P+Q compliance."""
        code = CauchyRSCode(6, element_size=16)
        buf = code.alloc_stripe()
        buf[:6] = random_words(buf[:6].shape)
        code.encode(buf)
        expect = np.bitwise_xor.reduce(buf[:6], axis=0)
        assert np.array_equal(buf[code.p_col], expect)

    def test_good_encoding_cheaper(self):
        good = CauchyRSCode(8, good=True)
        orig = CauchyRSCode(8, good=False)
        assert good.encoding_xors() < orig.encoding_xors()

    def test_far_above_liberation(self):
        """The motivation for array codes: Cauchy's Q is expensive."""
        k = 10
        cauchy = CauchyRSCode(k)
        lib = make_code("liberation-optimal", k)
        assert cauchy.encoding_complexity() > 1.2 * lib.encoding_complexity()

    def test_update_consistency(self, random_words):
        code = CauchyRSCode(5, element_size=16)
        buf = code.alloc_stripe()
        buf[:5] = random_words(buf[:5].shape)
        code.encode(buf)
        for col in range(5):
            n = code.update(buf, col, 0, random_words(buf[col, 0].shape))
            assert n >= 2
        assert code.verify(buf)

    def test_with_k(self, random_words):
        code = CauchyRSCode(4, w=4, element_size=16)
        grown = code.with_k(6)
        assert grown.w == 4 and grown.rows == code.rows

    def test_registry_names(self):
        assert make_code("cauchy-rs", 4).good is True
        assert make_code("cauchy-rs-original", 4).good is False

    def test_k_limit_for_w(self):
        with pytest.raises(ValueError):
            CauchyRSCode(7, w=3)  # 7 + 2 > 8
