"""Tests for the RAID6Code / XorScheduleCode interface contracts."""

import numpy as np
import pytest

from repro.codes import LiberationOptimal, LiberationOriginal, make_code


class TestGeometryProperties:
    def test_column_roles(self):
        code = LiberationOptimal(6, p=7)
        assert code.n_cols == 8
        assert code.p_col == 6 and code.q_col == 7
        assert code.total_cols == code.n_cols + code.n_scratch

    def test_sizes(self):
        code = LiberationOptimal(4, p=5, element_size=4096)
        assert code.strip_bytes == 5 * 4096
        assert code.data_bytes == 4 * 5 * 4096

    def test_alloc_and_check(self):
        code = LiberationOptimal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        assert buf.shape == (code.total_cols, 5, 2)
        code.check_stripe(buf)
        with pytest.raises(ValueError):
            code.check_stripe(buf[:-1])


class TestExecutionModes:
    @pytest.mark.parametrize("mode", ["kernel", "fused", "streaming"])
    def test_modes_agree(self, mode, random_words):
        ref_code = LiberationOptimal(5, p=5, element_size=16)
        code = LiberationOptimal(5, p=5, element_size=16, execution=mode)
        buf = ref_code.alloc_stripe()
        buf[:5] = random_words(buf[:5].shape)
        ref = buf.copy()
        ref_code.encode(ref)
        code.encode(buf)
        assert np.array_equal(buf[:7], ref[:7])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            LiberationOptimal(5, p=5, execution="warp")


class TestVerify:
    def test_fresh_encode_verifies(self, random_words):
        code = LiberationOptimal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        assert code.verify(buf)

    def test_corruption_detected(self, random_words):
        code = LiberationOptimal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        buf[2, 1, 0] ^= np.uint64(1)
        assert not code.verify(buf)


class TestDecodePlanCaching:
    def test_optimal_caches(self, random_words):
        code = LiberationOptimal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        code.decode(buf, [0, 1])
        assert (0, 1) in code._decode_plans

    def test_original_does_not_cache(self, random_words):
        code = LiberationOriginal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        code.decode(buf, [0, 1])
        assert code._decode_plans == {}

    def test_empty_erasures_noop(self, random_words):
        code = LiberationOptimal(4, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:4] = random_words(buf[:4].shape)
        code.encode(buf)
        ref = buf.copy()
        code.decode(buf, [])
        assert np.array_equal(buf, ref)


class TestComplexityAccessors:
    def test_encoding_complexity(self):
        code = LiberationOptimal(5, p=5)
        assert code.encoding_xors() == 40
        assert code.encoding_complexity() == pytest.approx(4.0)

    def test_decoding_complexity(self):
        code = LiberationOptimal(5, p=5)
        assert code.decoding_xors([1, 3]) == 41
        assert code.decoding_complexity([1, 3]) == pytest.approx(4.1)
        assert code.decoding_complexity([]) == 0.0


class TestGenericUpdateFallback:
    def test_reed_solomon_generic_consistency(self, random_words):
        """RS overrides update; exercise the generic fallback through a
        stub subclass that doesn't."""
        from repro.codes.base import RAID6Code

        class Stub(make_code("reed-solomon", 3, rows=2, element_size=8).__class__):
            def update(self, buf, col, row, new_element):
                return RAID6Code.update(self, buf, col, row, new_element)

        code = Stub(3, rows=2, element_size=8)
        buf = code.alloc_stripe()
        buf[:3] = random_words(buf[:3].shape)
        code.encode(buf)
        n = code.update(buf, 0, 1, random_words(buf[0, 1].shape))
        assert 1 <= n <= 2 * code.rows
        assert code.verify(buf)
