"""Tests specific to the Liberation code classes."""

import itertools

import numpy as np
import pytest

from repro.codes import LiberationOptimal, LiberationOriginal


class TestParameterisation:
    def test_default_p_is_minimal(self):
        assert LiberationOptimal(6).p == 7
        assert LiberationOptimal(11).p == 11

    def test_explicit_p(self):
        assert LiberationOptimal(6, p=31).p == 31

    def test_invalid_p_or_k(self):
        with pytest.raises(ValueError):
            LiberationOptimal(4, p=9)
        with pytest.raises(ValueError):
            LiberationOptimal(8, p=7)

    def test_rows_equal_p(self):
        assert LiberationOptimal(4, p=5).rows == 5


class TestVariantsAreTheSameCode:
    """Optimal and original must produce identical codewords."""

    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 11), (13, 8)])
    def test_identical_parity(self, p, k, random_words):
        opt = LiberationOptimal(k, p=p, element_size=16)
        orig = LiberationOriginal(k, p=p, element_size=16)
        a = opt.alloc_stripe()
        a[:k] = random_words(a[:k].shape)
        b = a.copy()
        opt.encode(a)
        orig.encode(b)
        assert np.array_equal(a[: k + 2], b[: k + 2])

    def test_cross_decode(self, random_words, rng):
        """A stripe encoded by one variant decodes with the other."""
        p, k = 7, 6
        opt = LiberationOptimal(k, p=p, element_size=16)
        orig = LiberationOriginal(k, p=p, element_size=16)
        buf = opt.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        opt.encode(buf)
        ref = buf.copy()
        buf[2] = rng.integers(0, 2**64, buf[2].shape, dtype=np.uint64)
        buf[4] = rng.integers(0, 2**64, buf[4].shape, dtype=np.uint64)
        orig.decode(buf, [2, 4])
        assert np.array_equal(buf[: k + 2], ref[: k + 2])


class TestComplexityHeadlines:
    def test_optimal_encode_at_bound_for_all_k(self):
        for p in (5, 7, 11, 13):
            for k in range(2, p + 1):
                code = LiberationOptimal(k, p=p)
                assert code.encoding_complexity() == pytest.approx(k - 1)

    def test_original_encode_table1_formula(self):
        for p, k in [(5, 5), (11, 7), (31, 23)]:
            code = LiberationOriginal(k, p=p)
            assert code.encoding_complexity() == pytest.approx(
                (k - 1) + (k - 1) / (2 * p)
            )

    def test_decode_reduction_15_to_20_percent(self):
        """The abstract's claim (15~20%), exhaustive over all pairs."""
        for p, k in [(11, 11), (13, 13)]:
            pairs = list(itertools.combinations(range(k), 2))
            opt = LiberationOptimal(k, p=p)
            orig = LiberationOriginal(k, p=p)
            o = sum(opt.decoding_xors(pr) for pr in pairs)
            g = sum(orig.decoding_xors(pr) for pr in pairs)
            assert 0.13 <= 1 - o / g <= 0.22, (p, k, 1 - o / g)

    def test_scalability_flat_encode_curve(self):
        """Fig. 6: with p fixed the optimal curve is exactly flat at 1.0
        and the original is flat at 1 + 1/(2p)."""
        p = 31
        opt_norm = {
            k: LiberationOptimal(k, p=p).encoding_complexity() / (k - 1)
            for k in (2, 10, 23)
        }
        assert all(v == pytest.approx(1.0) for v in opt_norm.values())
        orig_norm = {
            k: LiberationOriginal(k, p=p).encoding_complexity() / (k - 1)
            for k in (2, 10, 23)
        }
        assert all(v == pytest.approx(1 + 1 / 62) for v in orig_norm.values())


class TestUpdate:
    def test_touch_counts(self, random_words):
        code = LiberationOptimal(5, p=5, element_size=16)
        buf = code.alloc_stripe()
        buf[:5] = random_words(buf[:5].shape)
        code.encode(buf)
        geo = code.geometry
        for col in range(5):
            for row in range(5):
                n = code.update(buf, col, row, random_words(buf[col, row].shape))
                expect = 3 if geo.extra_bit_of_column(col) == (row, col) else 2
                assert n == expect, (col, row)
        assert code.verify(buf)

    def test_average_near_two(self, random_words):
        """Table I: Liberation update complexity ~= 2 (+ (k-1)/kp)."""
        code = LiberationOptimal(10, p=11, element_size=8)
        buf = code.alloc_stripe()
        buf[:10] = random_words(buf[:10].shape)
        code.encode(buf)
        total = sum(
            code.update(buf, c, r, random_words(buf[c, r].shape))
            for c in range(10)
            for r in range(11)
        )
        avg = total / 110
        assert avg == pytest.approx(2 + 9 / 110)


class TestOriginalVariants:
    def test_dumb_decode_is_worse(self):
        p, k = 7, 7
        smart = LiberationOriginal(k, p=p, smart=True)
        dumb = LiberationOriginal(k, p=p, smart=False)
        pair = (1, 4)
        assert dumb.decoding_xors(pair) > smart.decoding_xors(pair)

    def test_generator_cached(self):
        code = LiberationOriginal(4, p=5)
        assert code.generator is code.generator
