"""Tests for the code registry."""

import pytest

from repro.codes import available_codes, make_code
from repro.codes.liberation import LiberationOptimal, LiberationOriginal


class TestRegistry:
    def test_all_families_listed(self):
        names = available_codes()
        for expected in (
            "liberation-optimal",
            "liberation-original",
            "liberation-original-dumb",
            "evenodd",
            "rdp",
            "reed-solomon",
        ):
            assert expected in names

    def test_make_code_types(self):
        assert isinstance(make_code("liberation-optimal", 4), LiberationOptimal)
        assert isinstance(make_code("liberation-original", 4), LiberationOriginal)

    def test_dumb_variant_configured(self):
        code = make_code("liberation-original-dumb", 4)
        assert code.smart is False

    def test_kwargs_forwarded(self):
        code = make_code("liberation-optimal", 4, p=11, element_size=4096)
        assert code.p == 11 and code.element_size == 4096

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown code"):
            make_code("parchive", 4)
