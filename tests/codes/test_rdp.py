"""Tests specific to the RDP implementation."""

import itertools

import numpy as np
import pytest

from repro.codes import RDPCode
from repro.codes.theory import RDP_MODEL


def direct_encode(code, bits):
    """Reference encoder from the FAST'04 definitions."""
    p, k, mod = code.p, code.k, code.mod
    out = bits.copy()
    for i in range(p - 1):
        acc = 0
        for j in range(k):
            acc ^= int(bits[j, i])
        out[code.p_col, i] = acc
    for d in range(p - 1):
        acc = 0
        for j in range(k):  # data members
            i = mod(d - j)
            if i != p - 1:
                acc ^= int(bits[j, i])
        i = mod(d + 1)  # P member at logical position p-1
        if i != p - 1:
            acc ^= int(out[code.p_col, i])
        out[code.q_col, d] = acc
    return out


class TestEncoding:
    @pytest.mark.parametrize("p,k", [(3, 2), (5, 3), (5, 4), (7, 6), (11, 10)])
    def test_matches_textbook_definition(self, p, k, random_bits):
        code = RDPCode(k, p=p)
        bits = random_bits(code.total_cols, code.rows)
        expect = direct_encode(code, bits)
        got = bits.copy()
        code.encode_bits(got)
        assert np.array_equal(got[: k + 2], expect[: k + 2])

    @pytest.mark.parametrize("p,k", [(5, 4), (7, 6), (11, 8), (31, 23)])
    def test_xor_count_closed_form(self, p, k):
        code = RDPCode(k, p=p)
        assert code.encoding_xors() == (p - 1) * (k - 1) + k * (p - 2)
        assert code.encoding_complexity() == pytest.approx(
            RDP_MODEL.encoding_complexity(p, k)
        )

    def test_optimal_exactly_at_k_equals_p_minus_1(self):
        for p in (5, 7, 11, 17):
            code = RDPCode(p - 1, p=p)
            assert code.encoding_complexity() == pytest.approx(p - 2)

    def test_k_at_most_p_minus_1(self):
        with pytest.raises(ValueError):
            RDPCode(5, p=5)

    def test_default_p(self):
        assert RDPCode(4).p == 5
        assert RDPCode(6).p == 7  # smallest odd prime >= k+1
        assert RDPCode(7).p == 11


class TestDecoding:
    @pytest.mark.parametrize("p,k", [(5, 4), (7, 6), (11, 10), (11, 5)])
    def test_all_two_data_pairs(self, p, k, random_bits, rng):
        code = RDPCode(k, p=p)
        bits = random_bits(code.total_cols, code.rows)
        code.encode_bits(bits)
        for l, r in itertools.combinations(range(k), 2):
            dmg = bits.copy()
            dmg[l, :] = rng.integers(0, 2, code.rows)
            dmg[r, :] = rng.integers(0, 2, code.rows)
            code.decode_bits(dmg, [l, r])
            assert np.array_equal(dmg[: k + 2], bits[: k + 2]), (l, r)

    def test_decode_optimal_at_k_equals_p_minus_1(self):
        p = 11
        k = p - 1
        code = RDPCode(k, p=p)
        pairs = list(itertools.combinations(range(k), 2))
        avg = sum(code.decoding_xors(pr) for pr in pairs) / len(pairs)
        norm = avg / (2 * code.rows) / (k - 1)
        assert norm == pytest.approx(1.0)

    def test_data_plus_p_pattern(self, random_bits, rng):
        """The substituted-diagonal chain (P participates in Q)."""
        for p, k in [(5, 4), (7, 5), (11, 8)]:
            code = RDPCode(k, p=p)
            bits = random_bits(code.total_cols, code.rows)
            code.encode_bits(bits)
            for col in range(k):
                dmg = bits.copy()
                dmg[col, :] = rng.integers(0, 2, code.rows)
                dmg[code.p_col, :] = rng.integers(0, 2, code.rows)
                code.decode_bits(dmg, [col, code.p_col])
                assert np.array_equal(dmg[: k + 2], bits[: k + 2]), (p, k, col)


class TestUpdate:
    def test_three_writes_generic_cell(self, random_words):
        p, k = 7, 6
        code = RDPCode(k, p=p, element_size=8)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        # Row 2, column 1: neither on the missing diagonal (2+1 != p-1)
        # nor row 0, so all three parity elements are touched.
        assert code.update(buf, 1, 2, random_words(buf[1, 2].shape)) == 3
        assert code.verify(buf)

    def test_row_zero_touches_two(self, random_words):
        """Row 0's P cell lies on the missing diagonal: 2 writes only."""
        p, k = 7, 6
        code = RDPCode(k, p=p, element_size=8)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        assert code.update(buf, 2, 0, random_words(buf[2, 0].shape)) == 2
        assert code.verify(buf)

    def test_average_matches_model(self, random_words):
        p, k = 11, 10
        code = RDPCode(k, p=p, element_size=8)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        total = sum(
            code.update(buf, c, r, random_words(buf[c, r].shape))
            for c in range(k)
            for r in range(code.rows)
        )
        assert total / (k * code.rows) == pytest.approx(
            RDP_MODEL.update_complexity(p, k)
        )
