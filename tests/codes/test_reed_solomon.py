"""Tests for the Reed-Solomon P+Q reference code."""

import itertools

import numpy as np
import pytest

from repro.codes import ReedSolomonCode


@pytest.fixture
def code():
    return ReedSolomonCode(5, rows=3, element_size=16)


def encoded(code, random_words):
    buf = code.alloc_stripe()
    buf[: code.k] = random_words(buf[: code.k].shape)
    code.encode(buf)
    return buf


class TestEncoding:
    def test_p_is_xor_parity(self, code, random_words):
        buf = encoded(code, random_words)
        expect = np.bitwise_xor.reduce(buf[: code.k], axis=0)
        assert np.array_equal(buf[code.p_col], expect)

    def test_q_definition(self, code, random_words):
        buf = encoded(code, random_words)
        gf = code.gf
        acc = np.zeros_like(buf[0].view(np.uint8).reshape(-1))
        for j in range(code.k):
            term = gf.mul(buf[j].view(np.uint8).reshape(-1), gf.gen_pow(j))
            acc ^= term
        assert np.array_equal(buf[code.q_col].view(np.uint8).reshape(-1), acc)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(1)
        with pytest.raises(ValueError):
            ReedSolomonCode(256)
        ReedSolomonCode(255)  # the GF(2^8) limit

    def test_rows_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(4, rows=0)


class TestDecoding:
    def test_all_patterns(self, code, random_words, rng):
        ref = encoded(code, random_words)
        pats = [(c,) for c in range(code.n_cols)] + list(
            itertools.combinations(range(code.n_cols), 2)
        )
        for pat in pats:
            dmg = ref.copy()
            for c in pat:
                dmg[c] = rng.integers(0, 2**64, dmg[c].shape, dtype=np.uint64)
            code.decode(dmg, list(pat))
            assert np.array_equal(dmg, ref), pat

    def test_large_k(self, random_words, rng):
        code = ReedSolomonCode(20, rows=2, element_size=8)
        ref = encoded(code, random_words)
        for pat in [(0, 19), (7, 13), (19, 20), (20, 21), (5,)]:
            dmg = ref.copy()
            for c in pat:
                dmg[c] = rng.integers(0, 2**64, dmg[c].shape, dtype=np.uint64)
            code.decode(dmg, list(pat))
            assert np.array_equal(dmg, ref), pat

    def test_empty_pattern(self, code, random_words):
        ref = encoded(code, random_words)
        work = ref.copy()
        code.decode(work, [])
        assert np.array_equal(work, ref)


class TestUpdate:
    def test_always_two_parity_writes(self, code, random_words):
        buf = encoded(code, random_words)
        for col in range(code.k):
            assert code.update(buf, col, 1, random_words(buf[col, 1].shape)) == 2
        assert code.verify(buf)

    def test_parity_target_rejected(self, code, random_words):
        buf = encoded(code, random_words)
        with pytest.raises(IndexError):
            code.update(buf, code.q_col, 0, random_words(buf[0, 0].shape))
