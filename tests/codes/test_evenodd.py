"""Tests specific to the EVENODD implementation."""

import itertools

import numpy as np
import pytest

from repro.codes import EvenOddCode
from repro.codes.theory import EVENODD_MODEL


def direct_encode(code, bits):
    """Reference encoder straight from the Blaum et al. definitions."""
    p, k, mod = code.p, code.k, code.mod
    out = bits.copy()
    s = 0
    for j in range(1, k):
        i = (p - 1 - j) % p
        if i != p - 1:
            s ^= int(bits[j, i])
    for i in range(p - 1):
        acc = 0
        for j in range(k):
            acc ^= int(bits[j, i])
        out[code.p_col, i] = acc
    for d in range(p - 1):
        acc = s
        for j in range(k):
            i = mod(d - j)
            if i != p - 1:
                acc ^= int(bits[j, i])
        out[code.q_col, d] = acc
    return out


class TestEncoding:
    @pytest.mark.parametrize("p,k", [(3, 2), (5, 3), (5, 5), (7, 7), (11, 8)])
    def test_matches_textbook_definition(self, p, k, random_bits):
        code = EvenOddCode(k, p=p)
        bits = random_bits(code.total_cols, code.rows)
        expect = direct_encode(code, bits)
        got = bits.copy()
        code.encode_bits(got)
        assert np.array_equal(got[: k + 2], expect[: k + 2])

    @pytest.mark.parametrize("p,k", [(5, 4), (7, 7), (11, 8), (31, 23)])
    def test_xor_count_closed_form(self, p, k):
        code = EvenOddCode(k, p=p)
        assert code.encoding_xors() == (p - 1) * (2 * k - 1) - 1
        assert code.encoding_complexity() == pytest.approx(
            EVENODD_MODEL.encoding_complexity(p, k)
        )

    def test_rows_is_p_minus_1(self):
        assert EvenOddCode(4, p=5).rows == 4

    def test_k_up_to_p(self):
        EvenOddCode(5, p=5)  # k = p is legal for EVENODD
        with pytest.raises(ValueError):
            EvenOddCode(6, p=5)


class TestDecoding:
    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 11)])
    def test_two_chain_structure_covers_all_pairs(self, p, k, random_bits, rng):
        code = EvenOddCode(k, p=p)
        bits = random_bits(code.total_cols, code.rows)
        code.encode_bits(bits)
        for l, r in itertools.combinations(range(k), 2):
            dmg = bits.copy()
            dmg[l, :] = rng.integers(0, 2, code.rows)
            dmg[r, :] = rng.integers(0, 2, code.rows)
            code.decode_bits(dmg, [l, r])
            assert np.array_equal(dmg[: k + 2], bits[: k + 2]), (l, r)

    def test_decode_complexity_near_k_per_bit(self):
        """Table I: EVENODD decode ~= k XORs per missing bit."""
        p = k = 11
        code = EvenOddCode(k, p=p)
        pairs = list(itertools.combinations(range(k), 2))
        avg = sum(code.decoding_xors(pr) for pr in pairs) / len(pairs)
        per_bit = avg / (2 * code.rows)
        assert k - 1 < per_bit < k + 1.5

    def test_scratch_column_used_only_by_decode(self):
        code = EvenOddCode(5, p=7)
        enc_cols = {c for (c, _r) in code.encode_schedule().destinations()}
        assert code.n_cols not in enc_cols
        dec = code.build_decode_schedule((0, 2))
        dec_cols = {c for (c, _r) in dec.destinations()}
        assert code.n_cols in dec_cols  # the S adjuster home


class TestUpdate:
    def test_adjuster_diagonal_fans_out(self, random_words):
        """A write on the S diagonal must touch every Q element."""
        p, k = 7, 7
        code = EvenOddCode(k, p=p, element_size=8)
        buf = code.alloc_stripe()
        buf[:k] = random_words(buf[:k].shape)
        code.encode(buf)
        # Cell (p-1-j, j) is on the adjuster diagonal for j >= 1.
        j = 3
        row = p - 1 - j
        n = code.update(buf, j, row, random_words(buf[j, row].shape))
        assert n == 1 + (p - 1)
        assert code.verify(buf)

    def test_average_near_three(self, random_words):
        code = EvenOddCode(10, p=11, element_size=8)
        buf = code.alloc_stripe()
        buf[:10] = random_words(buf[:10].shape)
        code.encode(buf)
        total = sum(
            code.update(buf, c, r, random_words(buf[c, r].shape))
            for c in range(10)
            for r in range(code.rows)
        )
        avg = total / (10 * code.rows)
        assert avg == pytest.approx(EVENODD_MODEL.update_complexity(11, 10))
        assert 2.5 < avg < 3.2
