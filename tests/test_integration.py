"""Cross-subsystem integration scenarios.

Each test threads several subsystems together the way a deployment
would: journaled arrays on declustered layouts, growth followed by
failures, CLI pipelines at realistic parameters, trace replay on
degraded arrays.
"""

import json

import numpy as np
import pytest

from repro.array import (
    CrashPoint,
    JournaledRAID6Array,
    RAID6Array,
    Scrubber,
    SimulatedCrash,
)
from repro.array.layout import DeclusteredLayout
from repro.array.replay import parse_trace, replay, synthesize_trace
from repro.array.workloads import payload, sequential_fill
from repro.cli import main as cli_main
from repro.codes import make_code


class TestJournalOnDeclustered:
    def test_crash_recovery_on_wide_pool(self):
        code = make_code("liberation-optimal", 4, p=5, element_size=16)
        layout = DeclusteredLayout(4, 5, 16, 20, n_pool=10, seed=3)
        arr = JournaledRAID6Array(code, layout=layout)
        data = payload(arr.capacity, seed=1)
        arr.write(0, data)
        arr.arm_crash(CrashPoint(2))
        with pytest.raises(SimulatedCrash):
            arr.write(100, payload(48, seed=2))
        arr.arm_crash(None)
        arr.recover()
        for s in range(20):
            assert arr.code.verify(arr.read_stripe(s))
        # Then lose two pool disks and rebuild.
        arr.fail_disk(1)
        arr.fail_disk(8)
        arr.rebuild()
        assert Scrubber(arr).scrub().healthy


class TestGrowthThenFailures:
    def test_grow_fail_rebuild_scrub(self):
        code = make_code("liberation-optimal", 4, p=11, element_size=16)
        arr = RAID6Array(code, n_stripes=6)
        data = b""
        for op in sequential_fill(arr.capacity, arr.layout.stripe_data_bytes, seed=4):
            arr.write(op.offset, op.data)
            data += op.data
        translate = arr.grow_data_disk()
        translate2 = arr.grow_data_disk()
        # Old data still addressable after two growths.
        old_sdb = 4 * code.strip_bytes
        for s in range(6):
            off = translate2(translate(s * old_sdb))
            assert arr.read(off, old_sdb) == data[s * old_sdb : (s + 1) * old_sdb]
        # Failures + silent corruption on the grown array.
        arr.fail_disk(0)
        arr.rebuild()
        arr.disks[2].corrupt(1, seed=9)
        assert Scrubber(arr).scrub().stripes_corrected == 1


class TestTraceReplayDegraded:
    def test_uniform_trace_survives_double_failure(self):
        code = make_code("liberation-optimal", 6, p=7, element_size=64)
        arr = RAID6Array(code, n_stripes=10)
        arr.write(0, payload(arr.capacity, seed=5))
        arr.fail_disk(2)
        arr.fail_disk(5)
        trace = synthesize_trace("uniform", arr.capacity, n_ops=60, io_size=64,
                                 read_fraction=0.6, seed=6)
        stats = replay(arr, parse_trace(trace))
        assert stats.ops == 60
        assert stats.degraded_reads > 0
        arr.rebuild()
        assert Scrubber(arr).scrub().healthy


class TestCliAtPaperScale:
    def test_p31_roundtrip(self, tmp_path):
        src = tmp_path / "blob.bin"
        src.write_bytes(payload(200_000, seed=7))
        assert cli_main([
            "encode", str(src), "--k", "23", "--p", "31",
            "--element-size", "64", "--out-dir", str(tmp_path / "s"),
        ]) == 0
        manifest = tmp_path / "s" / "blob.bin.manifest.json"
        meta = json.loads(manifest.read_text())
        assert meta["p"] == 31 and meta["k"] == 23
        (tmp_path / "s" / "blob.bin.d11").unlink()
        (tmp_path / "s" / "blob.bin.d22").unlink()
        out = tmp_path / "out.bin"
        assert cli_main(["decode", str(manifest), "-o", str(out)]) == 0
        assert out.read_bytes() == src.read_bytes()

    def test_cauchy_cli(self, tmp_path):
        src = tmp_path / "c.bin"
        src.write_bytes(payload(10_000, seed=8))
        assert cli_main([
            "encode", str(src), "--k", "5", "--code", "cauchy-rs",
            "--element-size", "64", "--out-dir", str(tmp_path / "s"),
        ]) == 0
        manifest = tmp_path / "s" / "c.bin.manifest.json"
        (tmp_path / "s" / "c.bin.p").unlink()
        (tmp_path / "s" / "c.bin.d0").unlink()
        out = tmp_path / "o.bin"
        assert cli_main(["decode", str(manifest), "-o", str(out)]) == 0
        assert out.read_bytes() == src.read_bytes()


class TestErrorCorrectionBehindScrubberAtScale:
    def test_p31_scrub(self):
        code = make_code("liberation-optimal", 23, p=31, element_size=16)
        arr = RAID6Array(code, n_stripes=3)
        data = payload(arr.capacity, seed=11)
        arr.write(0, data)
        arr.disks[7].corrupt(1, seed=12)
        arr.disks[20].corrupt(2, seed=13)
        report = Scrubber(arr).scrub()
        assert report.stripes_corrected == 2
        assert arr.read(0, arr.capacity) == data
