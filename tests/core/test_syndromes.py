"""Tests for Algorithm 3 (syndrome computation)."""

import itertools

import numpy as np
import pytest

from repro.core.encoder import encode_schedule
from repro.core.geometry import LiberationGeometry
from repro.core.syndromes import syndrome_schedule
from repro.engine.executor import execute_bits


def reference_syndromes(geo, bits, l, r):
    """Paper-definition syndromes computed naively.

    S_i^P / S_i^Q = XOR of the surviving bits of the constraint,
    excluding surviving members of unknown common expressions, plus the
    stored parity bit.
    """
    p, k = geo.p, geo.k
    erased = {l, r}
    excluded = set()
    for ce in geo.common_expressions:
        if erased & {ce.left_col, ce.right_col}:
            # Unknown pair: BOTH roles of both members leave the syndromes.
            excluded.add((ce.left, "P"))
            excluded.add((ce.left, "Q"))
            excluded.add((ce.right, "P"))
            # right's own native Q role is distinct from its extra role
            # and is NOT excluded.
    s_p = np.zeros(p, dtype=np.uint8)
    s_q = np.zeros(p, dtype=np.uint8)
    for i in range(p):
        acc = int(bits[geo.p_col, i])
        for (row, col) in geo.row_cells(i):
            if col in erased or ((row, col), "P") in excluded:
                continue
            acc ^= int(bits[col, row])
        s_p[i] = acc
        acc = int(bits[geo.q_col, i])
        for (row, col) in geo.anti_diag_cells(i):
            if col in erased or ((row, col), "Q") in excluded:
                continue
            acc ^= int(bits[col, row])
        extra = geo.extra_bit(i)
        if extra is not None and extra[1] not in erased:
            # The extra-bit role enters only through a *known* pair.
            ce = geo.common_expression(extra[1])
            if not (erased & {ce.left_col, ce.right_col}):
                acc ^= int(bits[extra[1], extra[0]])
        s_q[i] = acc
    return s_p, s_q


class TestAgainstReference:
    @pytest.mark.parametrize("p,k", [(5, 5), (5, 3), (7, 7), (7, 4), (11, 11), (11, 6)])
    def test_all_data_pairs(self, p, k, random_bits):
        geo = LiberationGeometry(p, k)
        bits = random_bits(k + 2, p)
        execute_bits(encode_schedule(p, k), bits)
        for l, r in itertools.permutations(range(k), 2):
            expect_p, expect_q = reference_syndromes(geo, bits, l, r)
            work = bits.copy()
            execute_bits(syndrome_schedule(geo, l, r), work)
            assert np.array_equal(work[l], expect_p), (l, r, "P")
            # Anti-diagonal syndrome i is stored at row <i+r> of col r.
            stored_q = np.array(
                [work[r, (i + r) % p] for i in range(p)], dtype=np.uint8
            )
            assert np.array_equal(stored_q, expect_q), (l, r, "Q")


class TestPaperExampleSyndromes:
    """The corrected §III-C example (p=5, l=3, r=1 after exchange).

    The printed S3Q / S4Q drop the terms b(2,4) and b(1,2); the
    corrected equations (verified numerically in
    tests/test_paper_examples.py) are what Algorithm 3 produces.
    """

    def test_s_values(self, random_bits):
        p = k = 5
        geo = LiberationGeometry(p, k)
        bits = random_bits(k + 2, p)
        execute_bits(encode_schedule(p, k), bits)
        b = lambda i, j: int(bits[j, i])
        work = bits.copy()
        execute_bits(syndrome_schedule(geo, 3, 1), work)  # l=3, r=1
        s_p = [work[3, i] for i in range(5)]
        s_q = [work[1, (i + 1) % 5] for i in range(5)]
        assert s_p[0] == b(0, 0) ^ b(0, 4) ^ b(0, 5)
        assert s_p[1] == b(1, 0) ^ b(1, 2) ^ b(1, 5)
        assert s_p[2] == b(2, 2) ^ b(2, 4) ^ b(2, 5)
        assert s_p[3] == b(3, 0) ^ b(3, 4) ^ b(3, 5)
        assert s_p[4] == b(4, 0) ^ b(4, 2) ^ b(4, 4) ^ b(4, 5)
        assert s_q[0] == b(0, 0) ^ b(2, 2) ^ b(4, 4) ^ b(0, 6)
        assert s_q[1] == b(1, 0) ^ b(0, 4) ^ b(1, 6)
        assert s_q[2] == b(4, 2) ^ b(1, 4) ^ b(2, 6)
        assert s_q[3] == b(3, 0) ^ b(0, 2) ^ b(2, 4) ^ b(3, 6)  # erratum: + b(2,4)
        assert s_q[4] == b(4, 0) ^ b(3, 4) ^ b(1, 2) ^ b(4, 6)  # erratum: + b(1,2)


class TestValidation:
    def test_same_column_rejected(self):
        geo = LiberationGeometry(5, 5)
        with pytest.raises(ValueError):
            syndrome_schedule(geo, 2, 2)

    def test_out_of_range_rejected(self):
        geo = LiberationGeometry(5, 3)
        with pytest.raises(ValueError):
            syndrome_schedule(geo, 0, 3)

    def test_writes_only_erased_columns(self):
        geo = LiberationGeometry(7, 7)
        sched = syndrome_schedule(geo, 2, 5)
        assert {c for (c, _r) in sched.destinations()} == {2, 5}

    def test_k2_degenerate(self, random_bits):
        """With k=2 both data columns die: syndromes are the parities."""
        geo = LiberationGeometry(5, 2)
        bits = random_bits(4, 5)
        execute_bits(encode_schedule(5, 2), bits)
        work = bits.copy()
        execute_bits(syndrome_schedule(geo, 0, 1), work)
        assert np.array_equal(work[0], bits[2])  # row syndromes = P
