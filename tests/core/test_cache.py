"""Tests for schedule memoisation."""

from repro.core.cache import (
    cached_decode_schedule,
    cached_encode_schedule,
    clear_schedule_caches,
)


class TestEncodeCache:
    def test_identity_on_repeat(self):
        clear_schedule_caches()
        a = cached_encode_schedule(7, 5)
        b = cached_encode_schedule(7, 5)
        assert a is b

    def test_distinct_keys_distinct_objects(self):
        assert cached_encode_schedule(7, 5) is not cached_encode_schedule(7, 6)

    def test_matches_uncached(self):
        from repro.core.encoder import encode_schedule

        cached = cached_encode_schedule(11, 8)
        fresh = encode_schedule(11, 8)
        assert cached.n_xors == fresh.n_xors
        assert [op for op in cached.ops] == [op for op in fresh.ops]


class TestDecodeCache:
    def test_tuple_key(self):
        clear_schedule_caches()
        a = cached_decode_schedule(7, 5, (1, 3))
        assert a is cached_decode_schedule(7, 5, (1, 3))
        assert a is not cached_decode_schedule(7, 5, (1, 4))

    def test_clear(self):
        a = cached_decode_schedule(5, 5, (0, 1))
        clear_schedule_caches()
        assert a is not cached_decode_schedule(5, 5, (0, 1))

    def test_matches_uncached(self):
        from repro.core.decoder import decode_schedule

        assert (
            cached_decode_schedule(13, 9, (2, 6)).n_xors
            == decode_schedule(13, 9, (2, 6)).n_xors
        )
