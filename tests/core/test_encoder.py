"""Tests for Algorithm 1 (optimal encoding)."""

import numpy as np
import pytest

from repro.bitmatrix.builder import liberation_bitmatrix
from repro.bitmatrix.schedule import dumb_schedule
from repro.core.encoder import encode_schedule
from repro.core.geometry import LiberationGeometry
from repro.engine.executor import execute_bits
from repro.utils.primes import primes_up_to

ALL_PK = [(p, k) for p in primes_up_to(17) if p != 2 for k in range(2, p + 1)]


class TestXorCount:
    @pytest.mark.parametrize("p,k", ALL_PK)
    def test_meets_lower_bound_exactly(self, p, k):
        """The paper's headline: 2p(k-1) XORs == (k-1) per parity bit."""
        assert encode_schedule(p, k).n_xors == 2 * p * (k - 1)

    def test_paper_example_40_xors(self):
        """§III-B: the p=5 worked example uses exactly 40 XORs."""
        assert encode_schedule(5, 5).n_xors == 40

    def test_beats_original_by_paper_margin(self):
        """Fig. 5: the original costs (k-1)/2p more per parity bit."""
        for p, k in [(3, 2), (5, 5), (7, 7), (31, 23)]:
            g = liberation_bitmatrix(p, k)
            orig = dumb_schedule(g, p, k).n_xors
            opt = encode_schedule(p, k).n_xors
            assert orig - opt == k - 1


class TestCorrectness:
    @pytest.mark.parametrize("p,k", ALL_PK)
    def test_matches_bitmatrix_encoder(self, p, k, random_bits):
        bits = random_bits(k + 2, p)
        a = bits.copy()
        execute_bits(encode_schedule(p, k), a)
        b = bits.copy()
        execute_bits(dumb_schedule(liberation_bitmatrix(p, k), p, k), b)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 11)])
    def test_matches_defining_equations(self, p, k, random_bits):
        """Direct check against equations (1)-(2)."""
        geo = LiberationGeometry(p, k)
        bits = random_bits(k + 2, p)
        out = bits.copy()
        execute_bits(encode_schedule(p, k), out)
        for i in range(p):
            expect_p = 0
            for t in range(k):
                expect_p ^= int(bits[t, i])
            assert out[k, i] == expect_p
            expect_q = 0
            for (row, col) in geo.q_constraint_cells(i):
                expect_q ^= int(bits[col, row])
            assert out[k + 1, i] == expect_q

    def test_zero_data_zero_parity(self):
        bits = np.zeros((7, 5), dtype=np.uint8)
        execute_bits(encode_schedule(5, 5), bits)
        assert not bits.any()

    def test_single_bit_update_footprint(self):
        """Flipping one data bit flips exactly its 2 (or 3) parity bits
        -- the update-optimality property of Table I."""
        p, k = 7, 7
        geo = LiberationGeometry(p, k)
        base = np.zeros((k + 2, p), dtype=np.uint8)
        execute_bits(encode_schedule(p, k), base)
        for col in range(k):
            for row in range(p):
                bits = np.zeros((k + 2, p), dtype=np.uint8)
                bits[col, row] = 1
                execute_bits(encode_schedule(p, k), bits)
                flips = int(bits[k].sum() + bits[k + 1].sum())
                is_extra = geo.extra_bit_of_column(col) == (row, col)
                assert flips == (3 if is_extra else 2), (col, row)


class TestScheduleStructure:
    def test_writes_only_parity_columns(self):
        sched = encode_schedule(7, 5)
        for op in sched:
            assert op.dst_col in (5, 6)

    def test_data_cells_never_written(self):
        sched = encode_schedule(11, 8)
        assert all(dst[0] >= 8 for dst in sched.destinations())

    def test_every_parity_cell_written(self):
        p, k = 11, 4
        dsts = encode_schedule(p, k).destinations()
        assert {(k, i) for i in range(p)} <= dsts
        assert {(k + 1, i) for i in range(p)} <= dsts

    def test_copy_count(self):
        """Exactly one copy per parity cell: the k-1 pair seeds plus
        their k-1 Q mirrors replace the 2(k-1) first-touch copies those
        cells would otherwise need, so the total stays 2p."""
        for p, k in [(5, 5), (7, 4), (13, 13)]:
            assert encode_schedule(p, k).n_copies == 2 * p
