"""Tests for Algorithm 2 (starting-point search)."""

import itertools

import numpy as np
import pytest

from repro.core.encoder import encode_schedule
from repro.core.geometry import LiberationGeometry
from repro.core.starting_point import (
    StartingPoint,
    choose_starting_point,
    find_starting_point,
)
from repro.engine.executor import execute_bits
from repro.utils.primes import primes_up_to


class TestPaperExample:
    """§III-C, p=5, columns 1 and 3 erased."""

    def test_first_orientation_fails(self):
        """Algorithm 2 on (l=1, r=3) returns x = -1; the paper then
        exchanges l and r (Algorithm 4 lines 2-5)."""
        assert find_starting_point(5, 1, 3) is None
        sp = choose_starting_point(5, 1, 3)
        assert (sp.l, sp.r) == (3, 1)

    def test_exchanged_orientation_matches_paper(self):
        sp = find_starting_point(5, 3, 1)
        assert sp is not None
        assert sp.x == 3  # starting point b[3, 1]
        assert set(sp.s_p) == {0, 2}  # S0P ^ S2P
        assert set(sp.s_q) == {2, 4}  # S2Q ^ S4Q
        assert sp.n_xors == 3


class TestOrientationRules:
    def test_r_zero_invalid(self):
        """Column 0 has no extra bit: it cannot be the chain's r side."""
        for p in [5, 7, 11]:
            for l in range(1, p):
                assert find_starting_point(p, l, 0) is None

    def test_l_zero_always_succeeds(self):
        for p in [5, 7, 11, 13]:
            for r in range(1, p):
                assert find_starting_point(p, 0, r) is not None

    def test_same_column_rejected(self):
        with pytest.raises(ValueError):
            find_starting_point(7, 3, 3)

    def test_choose_picks_cheaper(self):
        for p in [7, 11, 13]:
            for l, r in itertools.combinations(range(1, p), 2):
                a = find_starting_point(p, l, r)
                b = find_starting_point(p, r, l)
                best = choose_starting_point(p, l, r)
                costs = [sp.n_xors for sp in (a, b) if sp is not None]
                assert best.n_xors == min(costs)


class TestAlgebraicValidity:
    """The defining property: XORing the selected parity constraints
    over a valid codeword isolates exactly the bit b[x, r]."""

    @pytest.mark.parametrize("p", [p for p in primes_up_to(13) if p != 2])
    def test_constraint_subset_isolates_single_bit(self, p, random_bits):
        k = p
        geo = LiberationGeometry(p, k)
        bits = random_bits(k + 2, p)
        execute_bits(encode_schedule(p, k), bits)
        for l, r in itertools.combinations(range(k), 2):
            sp = choose_starting_point(p, l, r)
            acc = 0
            for i in sp.s_p:
                acc ^= int(bits[k, i])
                for (row, col) in geo.row_cells(i):
                    if col not in (sp.l, sp.r):
                        acc ^= int(bits[col, row])
            for i in sp.s_q:
                acc ^= int(bits[k + 1, i])
                for (row, col) in geo.q_constraint_cells(i):
                    if col not in (sp.l, sp.r):
                        acc ^= int(bits[col, row])
            assert acc == int(bits[sp.r, sp.x]), (p, l, r, sp)

    def test_own_syndrome_membership(self):
        """Algorithm 4 accumulates in place: the starting cell's own
        anti-diagonal syndrome must belong to S_Q."""
        for p in [5, 7, 11, 13]:
            for l, r in itertools.combinations(range(p), 2):
                sp = choose_starting_point(p, l, r)
                assert (sp.x - sp.r) % p in sp.s_q


class TestStartingPointDataclass:
    def test_cost_formula(self):
        sp = StartingPoint(l=3, r=1, x=3, s_p=(0, 2), s_q=(2, 4))
        assert sp.n_xors == 3

    def test_sets_always_nonempty(self):
        for p in [5, 7, 11]:
            for l, r in itertools.combinations(range(p), 2):
                sp = choose_starting_point(p, l, r)
                assert sp.s_p and sp.s_q
