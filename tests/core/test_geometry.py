"""Tests for the geometric presentation (paper §III-A, Figs. 2-3)."""

import pytest

from repro.bitmatrix.builder import liberation_parity_cells
from repro.core.geometry import LiberationGeometry


@pytest.fixture
def geo5():
    return LiberationGeometry(5, 5)


class TestConstraintGeometry:
    def test_anti_diag_of(self, geo5):
        assert geo5.anti_diag_of(0, 0) == 0
        assert geo5.anti_diag_of(0, 1) == 4  # Fig. 2: cell (0,1) is 'E'
        assert geo5.anti_diag_of(2, 1) == 1  # Fig. 2: cell (2,1) is 'B'

    def test_anti_diag_cells_closed_form(self, geo5):
        for d in range(5):
            for (row, col) in geo5.anti_diag_cells(d):
                assert (row - col) % 5 == d

    def test_row_cells(self):
        geo = LiberationGeometry(7, 4)
        assert geo.row_cells(3) == [(3, t) for t in range(4)]

    def test_q_constraint_includes_extra(self, geo5):
        cells = geo5.q_constraint_cells(4)
        assert (0, 2) in cells  # 'E' has extra bit at b(0,2) per Fig. 2
        assert len(cells) == 6

    def test_q0_has_no_extra(self, geo5):
        assert geo5.extra_bit(0) is None
        assert len(geo5.q_constraint_cells(0)) == 5


class TestExtraBits:
    def test_figure2_extras(self, geo5):
        """Fig. 2 (p=5): a_1=b(3,3), a_2=b(2,1), a_3=b(1,4), a_4=b(0,2)."""
        assert geo5.extra_bit(1) == (3, 3)
        assert geo5.extra_bit(2) == (2, 1)
        assert geo5.extra_bit(3) == (1, 4)
        assert geo5.extra_bit(4) == (0, 2)

    def test_extra_in_phantom_column_dropped(self):
        geo = LiberationGeometry(5, 2)
        # Extras live in columns 1..p-1; only column 1's survives k=2.
        extras = [geo.extra_bit(d) for d in range(5)]
        kept = [e for e in extras if e is not None]
        assert all(col < 2 for (_r, col) in kept)
        assert len(kept) == 1

    def test_extra_bit_of_column(self, geo5):
        assert geo5.extra_bit_of_column(0) is None
        for col in range(1, 5):
            cell = geo5.extra_bit_of_column(col)
            d = geo5.extra_diag_of_column(col)
            assert geo5.extra_bit(d) == cell
            assert cell[1] == col

    def test_every_nonzero_column_hosts_one_extra(self):
        for p, k in [(7, 7), (11, 11), (13, 13)]:
            geo = LiberationGeometry(p, k)
            hosted = {geo.extra_bit(d)[1] for d in range(1, p)}
            assert hosted == set(range(1, p))

    def test_extra_bit_of_column_bounds(self, geo5):
        with pytest.raises(IndexError):
            geo5.extra_bit_of_column(5)

    def test_extra_lies_on_half_slope_diagonal(self):
        """The extra of Q_i sits on the (p-1)-th diagonal of slope (p-1)/2."""
        for p in [5, 7, 11]:
            geo = LiberationGeometry(p, p)
            m = geo.mod.half_minus
            for d in range(1, p):
                row, col = geo.extra_bit(d)
                assert (row + m * col) % p == p - 1
                # ... and on the (d-1)-th anti-diagonal.
                assert geo.anti_diag_of(row, col) == (d - 1) % p


class TestCommonExpressions:
    def test_figure3_pairs(self, geo5):
        """Fig. 3: E's at rows 2,0,3,1 for pairs (0,1),(1,2),(2,3),(3,4)."""
        rows = [geo5.common_expression(j).row for j in range(1, 5)]
        assert rows == [2, 0, 3, 1]

    def test_q_index_mirrors_row(self, geo5):
        for j in range(1, 5):
            ce = geo5.common_expression(j)
            assert ce.q_index == 5 - 1 - ce.row

    def test_members_share_row_and_constraints(self):
        """Both members are in P_row; left is native to Q_{q_index} and
        right is exactly that constraint's extra bit."""
        for p, k in [(5, 5), (7, 6), (11, 11), (13, 8)]:
            geo = LiberationGeometry(p, k)
            for ce in geo.common_expressions:
                assert ce.left == (ce.row, ce.right_col - 1)
                assert geo.anti_diag_of(*ce.left) == ce.q_index
                assert geo.extra_bit(ce.q_index) == ce.right

    def test_rows_distinct(self):
        for p, k in [(5, 5), (7, 7), (13, 13)]:
            geo = LiberationGeometry(p, k)
            rows = [ce.row for ce in geo.common_expressions]
            assert len(set(rows)) == len(rows)

    def test_index_bounds(self, geo5):
        with pytest.raises(IndexError):
            geo5.common_expression(0)
        with pytest.raises(IndexError):
            geo5.common_expression(5)


class TestMemberPredicates:
    def test_members_detected(self):
        for p, k in [(5, 5), (7, 5), (11, 11)]:
            geo = LiberationGeometry(p, k)
            lefts = {ce.left for ce in geo.common_expressions}
            rights = {ce.right for ce in geo.common_expressions}
            for i in range(p):
                for j in range(k):
                    assert geo.is_left_member(i, j) == ((i, j) in lefts), (p, k, i, j)
                    assert geo.is_right_member(i, j) == ((i, j) in rights), (p, k, i, j)

    def test_last_column_not_left_member_when_k_lt_p(self):
        """The paper's condition assumes k=p; for k<p the pair (k-1, k)
        does not exist and its would-be left member must stay live."""
        geo = LiberationGeometry(7, 4)
        assert not any(geo.is_left_member(i, 3) for i in range(7))

    def test_column0_never_right_member(self):
        for p in [5, 7, 11]:
            geo = LiberationGeometry(p, p)
            assert not any(geo.is_right_member(i, 0) for i in range(p))


class TestAgreementWithBitmatrixDefinition:
    """The geometry and the bitmatrix builder must describe one code."""

    @pytest.mark.parametrize("p,k", [(3, 2), (5, 4), (5, 5), (7, 7), (11, 6)])
    def test_q_constraints_match(self, p, k):
        geo = LiberationGeometry(p, k)
        _p_rows, q_rows = liberation_parity_cells(p, k)
        for d in range(p):
            expect = {(r, c) for (r, c) in q_rows[d]}
            got = {cell for cell in geo.q_constraint_cells(d) if cell[1] < k}
            assert got == expect


class TestMisc:
    def test_columns(self, geo5):
        assert geo5.n_cols == 7 and geo5.p_col == 5 and geo5.q_col == 6

    def test_repr(self, geo5):
        assert "p=5" in repr(geo5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LiberationGeometry(4, 3)
        with pytest.raises(ValueError):
            LiberationGeometry(5, 7)
