"""Property-based locator drills over the ISSUE's prime menu.

Hypothesis explores the paper's single-column error-correction
procedure across every geometry in p ∈ {5, 7, 11, 13}: any single
corrupted column -- data, P or Q, any non-empty row pattern -- must be
located and repaired bit-exactly, and corruption spread over *two*
columns must be flagged UNCORRECTABLE, never silently miscorrected.

The two-column patterns are dense (every row takes an independent
random 64-bit delta): Liberation codes have Hamming distance 3, so a
carefully sparse two-column pattern can masquerade as a different
single-column error -- that is a property of the code, not a bug in
the locator.  Dense random deltas keep the masquerade probability
negligible (~2^-64 per row).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes import LiberationOptimal
from repro.core.error_correction import ScanStatus, locate_and_correct

#: The ISSUE's prime menu.
PRIMES = (5, 7, 11, 13)


@st.composite
def single_column_case(draw):
    p = draw(st.sampled_from(PRIMES))
    k = draw(st.integers(2, p))
    column = draw(st.integers(0, k + 1))  # data columns, P, or Q
    row_mask = draw(st.integers(1, 2**p - 1))  # non-empty row subset
    seed = draw(st.integers(0, 2**31 - 1))
    return p, k, column, row_mask, seed


@st.composite
def double_column_case(draw):
    p = draw(st.sampled_from(PRIMES))
    k = draw(st.integers(2, p))
    cols = draw(
        st.lists(st.integers(0, k + 1), min_size=2, max_size=2, unique=True)
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return p, k, tuple(sorted(cols)), seed


def build_stripe(p, k, seed):
    code = LiberationOptimal(k, p=p, element_size=8)
    rng = np.random.default_rng(seed)
    buf = code.alloc_stripe()
    buf[:k] = rng.integers(0, 2**64, buf[:k].shape, dtype=np.uint64)
    code.encode(buf)
    return code, buf, rng


def corrupt(rng, buf, column, rows):
    """XOR an independent non-zero random delta into each given row."""
    for r in rows:
        buf[column, r] ^= rng.integers(
            1, 2**64, buf[column, r].shape, dtype=np.uint64
        )


class TestSingleColumnProperty:
    @settings(max_examples=120, deadline=None)
    @given(case=single_column_case())
    def test_any_single_column_corruption_repairs_bit_exactly(self, case):
        p, k, column, row_mask, seed = case
        code, buf, rng = build_stripe(p, k, seed)
        ref = buf.copy()
        rows = [r for r in range(p) if (row_mask >> r) & 1]
        corrupt(rng, buf, column, rows)

        result = locate_and_correct(code.geometry, buf)

        assert result.status is ScanStatus.CORRECTED
        assert result.column == column
        assert result.elements == len(rows)
        assert np.array_equal(buf, ref)  # bit-exact repair


class TestDoubleColumnProperty:
    @settings(max_examples=120, deadline=None)
    @given(case=double_column_case())
    def test_two_column_corruption_is_flagged_not_miscorrected(self, case):
        p, k, (a, b), seed = case
        code, buf, rng = build_stripe(p, k, seed)
        ref = buf.copy()
        corrupt(rng, buf, a, range(p))
        corrupt(rng, buf, b, range(p))
        damaged = buf.copy()

        result = locate_and_correct(code.geometry, buf)

        assert result.status is ScanStatus.UNCORRECTABLE
        assert result.column is None
        # The scan must not have "repaired" anything on the way out.
        assert np.array_equal(buf, damaged)
        assert not np.array_equal(buf, ref)
