"""Tests for Algorithm 4 and the easy-case decoders."""

import itertools

import numpy as np
import pytest

from repro.core.decoder import (
    decode_schedule,
    parity_schedule,
    single_data_erasure_schedule,
    two_data_erasures_schedule,
)
from repro.core.encoder import encode_schedule
from repro.core.geometry import LiberationGeometry
from repro.engine.executor import execute_bits
from repro.utils.primes import primes_up_to

from tests.conftest import SMALL_PK, erasure_patterns


def encoded(p, k, random_bits):
    bits = random_bits(k + 2, p)
    execute_bits(encode_schedule(p, k), bits)
    return bits


class TestExhaustiveCorrectness:
    @pytest.mark.parametrize("p,k", SMALL_PK)
    def test_every_pattern_recovers(self, p, k, random_bits, rng):
        ref = encoded(p, k, random_bits)
        for pat in erasure_patterns(k):
            dmg = ref.copy()
            for c in pat:
                dmg[c, :] = rng.integers(0, 2, p)  # garbage, not zeros
            execute_bits(decode_schedule(p, k, pat), dmg)
            assert np.array_equal(dmg, ref), (p, k, pat)

    @pytest.mark.parametrize("p", [17, 19])
    def test_larger_primes_all_data_pairs(self, p, random_bits, rng):
        k = p
        ref = encoded(p, k, random_bits)
        for pat in itertools.combinations(range(k), 2):
            dmg = ref.copy()
            for c in pat:
                dmg[c, :] = rng.integers(0, 2, p)
            execute_bits(decode_schedule(p, k, pat), dmg)
            assert np.array_equal(dmg, ref), (p, k, pat)

    def test_empty_pattern_is_noop(self, random_bits):
        ref = encoded(7, 5, random_bits)
        work = ref.copy()
        execute_bits(decode_schedule(7, 5, []), work)
        assert np.array_equal(work, ref)


class TestXorCounts:
    def test_paper_example_corrected_count(self):
        """§III-C example (p=5, cols {1,3}): 41 XORs with the two
        erratum terms restored (the paper prints 39 because its S3Q and
        S4Q drop one surviving cell each; see tests/test_paper_examples)."""
        assert decode_schedule(5, 5, [1, 3]).n_xors == 41

    @pytest.mark.parametrize("p", [p for p in primes_up_to(19) if p != 2])
    def test_near_lower_bound(self, p):
        """Fig. 7: average two-column decode within a few % of k-1."""
        k = p
        pairs = list(itertools.combinations(range(k), 2))
        total = sum(decode_schedule(p, k, pr).n_xors for pr in pairs)
        norm = total / len(pairs) / (2 * p) / (k - 1)
        assert 1.0 <= norm < 1.08, (p, norm)

    def test_fixed_p31_band(self):
        """Fig. 8: 0-2.5% over the bound for k >= 8 at p=31."""
        p = 31
        for k in [8, 14, 20, 23]:
            pairs = list(itertools.combinations(range(k), 2))[:40]
            total = sum(decode_schedule(p, k, pr).n_xors for pr in pairs)
            norm = total / len(pairs) / (2 * p) / (k - 1)
            assert norm < 1.045, (k, norm)

    def test_beats_original_smart_decode(self):
        """The 15-20% reduction claim vs bit-matrix scheduling."""
        from repro.bitmatrix import liberation_bitmatrix, bitmatrix_decode_schedule

        p = k = 13
        g = liberation_bitmatrix(p, k)
        pairs = list(itertools.combinations(range(k), 2))
        opt = sum(decode_schedule(p, k, pr).n_xors for pr in pairs)
        orig = sum(bitmatrix_decode_schedule(g, p, k, pr).n_xors for pr in pairs)
        reduction = 1 - opt / orig
        assert 0.12 < reduction < 0.25, reduction

    def test_single_data_erasure_optimal(self):
        """One data column via rows: exactly k-1 XORs per missing bit."""
        for p, k in [(5, 5), (7, 4), (11, 11)]:
            sched = decode_schedule(p, k, [1])
            assert sched.n_xors == p * (k - 1)

    def test_parity_only_reencode_optimal(self):
        for p, k in [(5, 5), (11, 7)]:
            assert decode_schedule(p, k, [k, k + 1]).n_xors == 2 * p * (k - 1)


class TestEasyCases:
    @pytest.mark.parametrize("p,k", [(5, 5), (7, 4), (11, 11), (13, 6)])
    def test_single_column_all_positions(self, p, k, random_bits, rng):
        ref = encoded(p, k, random_bits)
        for c in range(k + 2):
            dmg = ref.copy()
            dmg[c, :] = rng.integers(0, 2, p)
            execute_bits(decode_schedule(p, k, [c]), dmg)
            assert np.array_equal(dmg, ref), c

    def test_q_based_single_column(self, random_bits, rng):
        """The use_q path used when P is dead."""
        for p, k in [(5, 5), (7, 6), (11, 4)]:
            geo = LiberationGeometry(p, k)
            ref = encoded(p, k, random_bits)
            for col in range(k):
                dmg = ref.copy()
                dmg[col, :] = rng.integers(0, 2, p)
                execute_bits(single_data_erasure_schedule(geo, col, use_q=True), dmg)
                assert np.array_equal(dmg, ref), (p, k, col)

    def test_parity_schedule_rejects_garbage(self):
        geo = LiberationGeometry(5, 5)
        with pytest.raises(ValueError):
            parity_schedule(geo, (2,))


class TestScheduleHygiene:
    @pytest.mark.parametrize("p,k", [(7, 7), (11, 8)])
    def test_never_reads_unwritten_erased_cells(self, p, k):
        """Erased columns hold garbage; any read of them must follow a
        write in schedule order."""
        for pat in erasure_patterns(k):
            if not pat:
                continue
            sched = decode_schedule(p, k, pat)
            written = set()
            for op in sched:
                if op.src_col in pat:
                    assert op.src in written, (pat, op)
                written.add(op.dst)

    def test_writes_confined_to_erased_columns(self):
        p, k = 11, 11
        for pat in [(0, 5), (3,), (2, k), (4, k + 1), (k, k + 1)]:
            sched = decode_schedule(p, k, pat)
            assert {c for (c, _r) in sched.destinations()} <= set(pat)

    def test_two_data_uses_cheaper_orientation(self):
        """The chosen orientation's starting point cost is minimal."""
        from repro.core.starting_point import find_starting_point

        p = k = 11
        geo = LiberationGeometry(p, k)
        for l, r in itertools.combinations(range(1, k), 2):
            a = find_starting_point(p, l, r)
            b = find_starting_point(p, r, l)
            best = min(sp.n_xors for sp in (a, b) if sp)
            # Rebuild via the public entry and compare total against
            # swapping: schedule must not exceed the alternative.
            sched_lr = two_data_erasures_schedule(geo, l, r)
            assert sched_lr.n_xors <= two_data_erasures_schedule(geo, r, l).n_xors + 0
            del best
