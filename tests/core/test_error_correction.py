"""Tests for single-column error correction (silent corruption)."""

import numpy as np
import pytest

from repro.codes import LiberationOptimal
from repro.core.error_correction import (
    ScanStatus,
    compute_syndromes,
    locate_and_correct,
)


@pytest.fixture(params=[(5, 5), (7, 4), (11, 11), (13, 6)], ids=str)
def stripe(request, random_words):
    p, k = request.param
    code = LiberationOptimal(k, p=p, element_size=16)
    buf = code.alloc_stripe()
    buf[:k] = random_words(buf[:k].shape)
    code.encode(buf)
    return code, buf


class TestSyndromes:
    def test_clean_stripe_zero_syndromes(self, stripe):
        code, buf = stripe
        s_p, s_q = compute_syndromes(code.geometry, buf)
        assert not s_p.any() and not s_q.any()

    def test_data_error_pattern_appears_in_p(self, stripe, rng):
        code, buf = stripe
        delta = rng.integers(1, 2**64, buf[0, 2].shape, dtype=np.uint64)
        buf[1, 2] ^= delta
        s_p, _ = compute_syndromes(code.geometry, buf)
        assert np.array_equal(s_p[2], delta)
        assert not s_p[[i for i in range(code.p) if i != 2]].any()


class TestCleanAndParityCases:
    def test_clean(self, stripe):
        code, buf = stripe
        res = locate_and_correct(code.geometry, buf)
        assert res.status is ScanStatus.CLEAN and res.column is None

    def test_p_column_corruption(self, stripe, rng):
        code, buf = stripe
        ref = buf.copy()
        buf[code.p_col, 0] ^= np.uint64(0xDEAD)
        res = locate_and_correct(code.geometry, buf)
        assert res.status is ScanStatus.CORRECTED
        assert res.column == code.p_col and res.elements == 1
        assert np.array_equal(buf, ref)

    def test_q_column_corruption(self, stripe, rng):
        code, buf = stripe
        ref = buf.copy()
        for r in range(min(3, code.p)):
            buf[code.q_col, r] ^= np.uint64(7 + r)
        res = locate_and_correct(code.geometry, buf)
        assert res.status is ScanStatus.CORRECTED
        assert res.column == code.q_col and res.elements == min(3, code.p)
        assert np.array_equal(buf, ref)


class TestDataColumnCases:
    def test_every_column_every_weight(self, stripe, rng):
        code, buf = stripe
        p = code.p
        for col in range(code.k):
            for weight in (1, 2, p):
                dmg = buf.copy()
                rows = rng.choice(p, size=min(weight, p), replace=False)
                for r in rows:
                    dmg[col, r] ^= rng.integers(
                        1, 2**64, dmg[col, r].shape, dtype=np.uint64
                    )
                res = locate_and_correct(code.geometry, dmg)
                assert res.status is ScanStatus.CORRECTED, (col, weight)
                assert res.column == col
                assert np.array_equal(dmg, buf), (col, weight)

    def test_extra_bit_cell_corruption(self, stripe, rng):
        """The extra-bit cell feeds two Q constraints -- the locator
        must still pin the right column."""
        code, buf = stripe
        geo = code.geometry
        for col in range(1, code.k):
            row, _ = geo.extra_bit_of_column(col)
            dmg = buf.copy()
            dmg[col, row] ^= np.uint64(0x1234)
            res = locate_and_correct(geo, dmg)
            assert res.status is ScanStatus.CORRECTED and res.column == col
            assert np.array_equal(dmg, buf)


class TestUncorrectable:
    def test_two_distinct_deltas_same_row(self, stripe, rng):
        """Two corrupt data columns with inconsistent syndromes."""
        code, buf = stripe
        dmg = buf.copy()
        dmg[0, 0] ^= np.uint64(0xA)
        dmg[1, 0] ^= np.uint64(0x5)
        res = locate_and_correct(code.geometry, dmg)
        assert res.status is ScanStatus.UNCORRECTABLE

    def test_random_two_column_corruption(self, stripe, rng):
        code, buf = stripe
        dmg = buf.copy()
        for col in (0, 2):
            dmg[col] ^= rng.integers(1, 2**64, dmg[col].shape, dtype=np.uint64)
        res = locate_and_correct(code.geometry, dmg)
        assert res.status is ScanStatus.UNCORRECTABLE

    def test_aliased_two_column_corruption_is_fundamental(self):
        """Equal deltas landing on one anti-diagonal mimic a P-column
        error: the scan *must* mis-classify this (distance-3 limit).
        Documented behaviour, not a bug."""
        code = LiberationOptimal(5, p=5, element_size=8)
        buf = code.alloc_stripe()
        buf[:5] = 1
        code.encode(buf)
        dmg = buf.copy()
        dmg[0, 0] ^= np.uint64(1)  # anti-diagonal 0
        dmg[1, 1] ^= np.uint64(1)  # anti-diagonal 0, same delta
        res = locate_and_correct(code.geometry, dmg)
        assert res.status is ScanStatus.CORRECTED
        assert res.column == code.p_col  # plausible—but wrong—diagnosis
