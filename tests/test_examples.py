"""Smoke tests: every shipped example must run to completion.

Examples are executed in-process (importing their ``main``) so failures
carry real tracebacks and coverage is attributed.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    mod = load_module(path)
    assert hasattr(mod, "main"), f"{path.name} lacks a main()"
    mod.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"


def test_all_examples_covered():
    """At least the three required example categories exist."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
