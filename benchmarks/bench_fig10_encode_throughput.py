"""Fig. 10 -- encoding throughput, p varying with k (4KB and 8KB).

Paper shape: both encoders slow with k; the optimal algorithm stays
ahead of the original at every k (the gap the paper attributes to
bit-matrix overhead plus the eliminated XORs).
"""

import pytest

from repro.bench.throughput import encode_throughput_series, make_bench_code

from conftest import emit, filled_stripe

K_VALUES = [4, 7, 10, 13, 16, 19, 22]


@pytest.fixture(scope="module", params=[4096, 8192], ids=["4KB", "8KB"])
def series(request):
    rows = encode_throughput_series(
        K_VALUES, element_size=request.param, inner=8, repeats=5
    )
    return request.param, rows


def test_fig10_series(benchmark, series):
    elem, rows = series
    benchmark(lambda: None)
    emit(
        f"fig10_encode_throughput_{elem // 1024}KB",
        rows,
        f"Fig. 10: encode GB/s, p varying with k (element {elem // 1024}KB)",
    )
    # The optimal encoder's advantage (~2-10% in op count) is close
    # to scheduler noise on a shared machine, so assert the aggregate:
    # summed across the sweep it must not lose to the original.
    opt = sum(r["liberation-optimal"] for r in rows)
    orig = sum(r["liberation-original"] for r in rows)
    assert opt > 0.95 * orig, (opt, orig)


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
@pytest.mark.parametrize("k", [4, 13, 22])
def test_encode_kernel(benchmark, filled_stripe, name, k):
    code = make_bench_code(name, k, None, 4096)
    buf = filled_stripe(code)
    benchmark(code.encode, buf)
