"""Fig. 12 -- decoding throughput, p varying with k (4KB and 8KB).

Paper shape: the proposed decoder's advantage grows with k, reaching
~2x (8KB) / ~2.5x (4KB) in the paper.  In this reproduction the gap is
larger still because the original's per-decode matrix inversion and
scheduling run in Python (see EXPERIMENTS.md) -- the mechanism is the
same one the paper identifies.
"""

import pytest

from repro.bench.throughput import decode_throughput_series, make_bench_code

from conftest import emit, filled_stripe

K_VALUES = [5, 11, 17, 23]


@pytest.fixture(scope="module", params=[4096, 8192], ids=["4KB", "8KB"])
def series(request):
    rows = decode_throughput_series(
        K_VALUES, element_size=request.param, max_pairs=4, inner=2, repeats=2
    )
    return request.param, rows


def test_fig12_series(benchmark, series):
    elem, rows = series
    benchmark(lambda: None)
    emit(
        f"fig12_decode_throughput_{elem // 1024}KB",
        rows,
        f"Fig. 12: decode GB/s, p varying with k (element {elem // 1024}KB)",
    )
    for row in rows:
        assert row["liberation-optimal"] > row["liberation-original"], row


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
@pytest.mark.parametrize("k", [5, 17])
def test_decode_kernel(benchmark, filled_stripe, name, k):
    code = make_bench_code(name, k, None, 4096)
    buf = filled_stripe(code)
    benchmark(code.decode, buf, (0, k // 2))
