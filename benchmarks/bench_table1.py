"""Table I -- characteristics of the representative RAID-6 codes.

Regenerates the table from *measured* schedule costs (k = 10, minimal
p per code) and benchmarks the planning kernels (schedule construction)
for each family.
"""

import pytest

from repro.bench.complexity import table1_rows
from repro.codes import make_code

from conftest import emit


@pytest.fixture(scope="module")
def table():
    return table1_rows(k=10)


def test_table1_series(benchmark, table):
    benchmark(table1_rows, k=4)  # small instance as the timed kernel
    emit("table1", table, "Table I: measured characteristics (k=10, minimal p)")
    rows = {r["code"]: r for r in table}
    assert rows["liberation-optimal"]["encoding"] == pytest.approx(9.0)
    assert rows["liberation-optimal"]["update"] < rows["rdp"]["update"]


@pytest.mark.parametrize(
    "name", ["liberation-optimal", "liberation-original", "evenodd", "rdp"]
)
def test_encode_plan_construction(benchmark, name):
    """Planning cost per family (the matrix-free property of Alg. 1)."""
    code = make_code(name, 10)
    benchmark(code.build_encode_schedule)
