"""Extension: degraded-read (single data column) throughput.

Single-column reconstruction is the *common* recovery case (§II-B:
"reconstruction (including degraded reads)").  The optimal path rebuilds
each element from its row constraint at exactly ``k-1`` XORs per
element with no planning cost; the original bit-matrix path still
inverts a ``kw x kw`` survivors matrix per call, so the paper's decode
overhead story applies to degraded reads as well.
"""

import time

import numpy as np
import pytest

from repro.bench.throughput import make_bench_code

from conftest import emit, filled_stripe


@pytest.fixture(scope="module")
def series():
    rows = []
    for k, p in [(6, 7), (10, 11), (16, 17), (23, 31)]:
        row = {"k": k, "p": p}
        for name in ("liberation-original", "liberation-optimal"):
            code = make_bench_code(name, k, p, 4096)
            rng = np.random.default_rng(0)
            buf = code.alloc_stripe()
            buf[:k] = rng.integers(0, 2**64, buf[:k].shape, dtype=np.uint64)
            code.encode(buf)
            col = k // 2
            code.decode(buf, [col])  # warm (no-op for uncached original)
            t0 = time.perf_counter()
            for _ in range(4):
                code.decode(buf, [col])
            sec = (time.perf_counter() - t0) / 4
            row[name] = code.data_bytes / sec / 1e9
        rows.append(row)
    return rows


def test_degraded_read_series(benchmark, series):
    benchmark(lambda: None)
    emit(
        "degraded_read_throughput",
        series,
        "Extension: single-column (degraded read) decode GB/s, 4KB elements",
    )
    for row in series:
        assert row["liberation-optimal"] > 2 * row["liberation-original"], row


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
def test_degraded_read_kernel(benchmark, filled_stripe, name):
    code = make_bench_code(name, 10, 11, 4096)
    buf = filled_stripe(code)
    benchmark(code.decode, buf, (4,))


def test_single_column_xor_optimality(benchmark):
    """The optimal single-column path is exactly k-1 XORs per element."""
    from repro.core.decoder import decode_schedule

    benchmark(decode_schedule, 11, 10, (4,))
    for p, k in [(7, 6), (11, 10), (31, 23)]:
        sched = decode_schedule(p, k, (k // 2,))
        assert sched.n_xors == p * (k - 1)
