#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Standalone alternative to ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/run_figures.py [--quick]

Writes paper-format text series under ``results/`` and prints them;
the same data also lands machine-readable in
``results/BENCH_figures.json`` so the performance trajectory is
diffable across runs.  ``--quick`` shrinks sweeps for a fast smoke run.
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import sys
import time

from repro.bench.complexity import (
    decoding_complexity_series,
    encoding_complexity_series,
    table1_rows,
)
from repro.bench.report import format_table, save_json_report, save_series
from repro.bench.throughput import (
    decode_throughput_series,
    element_size_series,
    encode_throughput_series,
)

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Every series emitted by this run, accumulated for the JSON report.
_SERIES: list[dict] = []


def emit(name: str, rows, title: str) -> None:
    print(format_table(rows, title=title))
    save_series(name, rows, title=title, base=RESULTS)
    _SERIES.append({"name": name, "title": title, "rows": list(rows)})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweeps")
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.quick:
        k_enc = [2, 6, 10, 14]
        k_dec = [4, 8, 12]
        k_tp = [4, 10, 16]
        k_dtp = [5, 11]
        elems = [4096]
        log2s = (12, 14)
        pairs = 3
    else:
        k_enc = list(range(2, 23))
        k_dec = list(range(2, 23, 2))
        k_tp = [4, 7, 10, 13, 16, 19, 22]
        k_dtp = [5, 11, 17, 23]
        elems = [4096, 8192]
        log2s = (12, 13, 14, 15, 16)
        pairs = 4

    emit("table1", table1_rows(k=10), "Table I: measured characteristics (k=10)")

    emit(
        "fig05_encoding_complexity",
        encoding_complexity_series(k_enc),
        "Fig. 5: normalized encoding complexity (p varying with k)",
    )
    emit(
        "fig06_encoding_complexity_p31",
        encoding_complexity_series([k for k in k_enc if k <= 23], p=31),
        "Fig. 6: normalized encoding complexity (p = 31)",
    )
    emit(
        "fig07_decoding_complexity",
        decoding_complexity_series(k_dec, max_pairs=66),
        "Fig. 7: normalized decoding complexity (p varying with k)",
    )
    emit(
        "fig08_decoding_complexity_p31",
        decoding_complexity_series(k_dec, p=31, max_pairs=40),
        "Fig. 8: normalized decoding complexity (p = 31)",
    )

    es = element_size_series(log2_sizes=log2s, inner=5, repeats=3)
    for p, rows in es.items():
        emit(f"fig09_elemsize_p{p}", rows, f"Fig. 9: encode GB/s vs element size, p={p}")

    for elem in elems:
        kb = elem // 1024
        emit(
            f"fig10_encode_throughput_{kb}KB",
            encode_throughput_series(k_tp, element_size=elem, inner=8, repeats=3),
            f"Fig. 10: encode GB/s, p varying with k ({kb}KB)",
        )
        emit(
            f"fig11_encode_throughput_p31_{kb}KB",
            encode_throughput_series(
                [k for k in k_tp if k <= 23], p=31, element_size=elem, inner=8, repeats=3
            ),
            f"Fig. 11: encode GB/s, p = 31 ({kb}KB)",
        )
        emit(
            f"fig12_decode_throughput_{kb}KB",
            decode_throughput_series(
                k_dtp, element_size=elem, max_pairs=pairs, inner=2, repeats=2
            ),
            f"Fig. 12: decode GB/s, p varying with k ({kb}KB)",
        )
        emit(
            f"fig13_decode_throughput_p31_{kb}KB",
            decode_throughput_series(
                k_dtp, p=31, element_size=elem, max_pairs=pairs, inner=2, repeats=2
            ),
            f"Fig. 13: decode GB/s, p = 31 ({kb}KB)",
        )

    json_path = save_json_report(
        "BENCH_figures.json",
        _SERIES,
        base=RESULTS,
        quick=args.quick,
        elapsed_s=round(time.time() - t0, 2),
        python=platform.python_version(),
        machine=platform.machine(),
    )
    print(f"done in {time.time() - t0:.1f}s; series under {RESULTS}/, "
          f"machine-readable report at {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
