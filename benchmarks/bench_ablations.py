"""Ablations over the reproduction's design choices.

1. **Decode-plan caching** -- quantifies how much of the original
   decoder's deficit is the per-call matrix inversion + scheduling
   (Jerasure semantics) vs. the XOR count itself: with caching forced
   on, the baseline's remaining gap is just its extra XORs.
2. **Smart vs dumb bit-matrix decode scheduling** -- reproduces why
   Plank's scheduling exists at all (~2.5x fewer decode XORs than the
   naive lowering), and how far Algorithm 4 goes beyond it.
3. **Fused vs streaming execution** -- the two word-level executors on
   the same schedule: fusion is the production-speed path, streaming
   the measurement-fidelity path.
"""

import itertools

import numpy as np
import pytest

from repro.bitmatrix import liberation_bitmatrix, bitmatrix_decode_schedule
from repro.codes import LiberationOptimal, LiberationOriginal
from repro.core.decoder import decode_schedule

from conftest import emit, filled_stripe


@pytest.fixture(scope="module")
def plan_cache_rows():
    rows = []
    for k, p in [(6, 7), (10, 11), (23, 31)]:
        opt = LiberationOptimal(k, p=p, element_size=4096, execution="streaming")
        lazy = LiberationOriginal(k, p=p, element_size=4096, execution="streaming")
        cached = LiberationOriginal(k, p=p, element_size=4096, execution="streaming")
        cached.cache_decode_plans = True

        import time

        def gbps(code, warm):
            buf = code.alloc_stripe()
            rng = np.random.default_rng(0)
            buf[:k] = rng.integers(0, 2**64, buf[:k].shape, dtype=np.uint64)
            code.encode(buf)
            pair = (1, k - 1)
            if warm:
                code.decode(buf, pair)
            best = float("inf")
            for _ in range(4):  # best-of windows: robust to load spikes
                t0 = time.perf_counter()
                for _ in range(2):
                    code.decode(buf, pair)
                best = min(best, (time.perf_counter() - t0) / 2)
            return code.data_bytes / best / 1e9

        rows.append(
            {
                "k": k,
                "p": p,
                "optimal": gbps(opt, True),
                "original-lazy(jerasure)": gbps(lazy, False),
                "original-cached": gbps(cached, True),
            }
        )
    return rows


def test_ablation_plan_cache(benchmark, plan_cache_rows):
    benchmark(lambda: None)
    emit(
        "ablation_plan_cache",
        plan_cache_rows,
        "Ablation: decode GB/s -- per-call planning (Jerasure) vs cached plans",
    )
    for row in plan_cache_rows:
        # Caching the baseline's plan removes most of its deficit...
        assert row["original-cached"] > 3 * row["original-lazy(jerasure)"]
        # ...but the optimal algorithm still wins on XOR count.
        assert row["optimal"] > row["original-cached"] * 0.9


@pytest.fixture(scope="module")
def scheduling_rows():
    rows = []
    for k, p in [(7, 7), (11, 11), (13, 13)]:
        g = liberation_bitmatrix(p, k)
        pairs = list(itertools.combinations(range(k), 2))
        dumb = sum(
            bitmatrix_decode_schedule(g, p, k, pr, smart=False).n_xors for pr in pairs
        ) / len(pairs)
        smart = sum(
            bitmatrix_decode_schedule(g, p, k, pr, smart=True).n_xors for pr in pairs
        ) / len(pairs)
        opt = sum(decode_schedule(p, k, pr).n_xors for pr in pairs) / len(pairs)
        denom = 2 * p * (k - 1)
        rows.append(
            {
                "k": k,
                "dumb": dumb / denom,
                "smart(plank)": smart / denom,
                "optimal(alg4)": opt / denom,
            }
        )
    return rows


def test_ablation_decode_scheduling(benchmark, scheduling_rows):
    benchmark(lambda: None)
    emit(
        "ablation_decode_scheduling",
        scheduling_rows,
        "Ablation: normalized decode XORs -- dumb vs smart vs Algorithm 4",
    )
    for row in scheduling_rows:
        assert row["dumb"] > 2.0  # naive lowering is catastrophic
        assert 1.1 < row["smart(plank)"] < 1.35
        assert row["optimal(alg4)"] < 1.05


@pytest.mark.parametrize("mode", ["fused", "streaming"])
def test_ablation_executor_mode(benchmark, filled_stripe, mode):
    code = LiberationOptimal(10, p=11, element_size=4096, execution=mode)
    buf = filled_stripe(code)
    benchmark(code.encode, buf)
