"""Fig. 5 -- normalized encoding complexity, p varying with k.

Paper series: EVENODD and the original Liberation sit above the bound
(~1 + 1/2(k-1) and 1 + 1/2p respectively), RDP touches 1.0 at its
sweet spots, and the proposed algorithm is exactly 1.0 for every k.
"""

import pytest

from repro.bench.complexity import encoding_complexity_series
from repro.core.encoder import encode_schedule

from conftest import emit

K_VALUES = list(range(2, 23))


@pytest.fixture(scope="module")
def series():
    return encoding_complexity_series(K_VALUES)


def test_fig05_series(benchmark, series):
    benchmark(encoding_complexity_series, [4, 8])
    emit(
        "fig05_encoding_complexity",
        series,
        "Fig. 5: normalized encoding complexity (p varying with k)",
    )
    for row in series:
        assert row["liberation-optimal"] == pytest.approx(1.0)
        assert row["liberation-original"] > 1.0


@pytest.mark.parametrize("k", [4, 10, 16, 22])
def test_optimal_schedule_build(benchmark, k):
    """Algorithm 1 planning cost across the figure's x-axis."""
    from repro.utils.primes import prime_for_k

    p = prime_for_k(k)
    benchmark(encode_schedule, p, k)
