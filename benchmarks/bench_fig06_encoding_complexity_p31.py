"""Fig. 6 -- normalized encoding complexity at fixed p = 31.

Paper series: EVENODD/RDP degrade substantially as k shrinks away from
p; both Liberation curves stay flat (the scalability argument), with
the optimal one exactly at the bound.
"""

import pytest

from repro.bench.complexity import encoding_complexity_series

from conftest import emit

K_VALUES = list(range(2, 24))


@pytest.fixture(scope="module")
def series():
    return encoding_complexity_series(K_VALUES, p=31)


def test_fig06_series(benchmark, series):
    benchmark(encoding_complexity_series, [4, 8], p=31)
    emit(
        "fig06_encoding_complexity_p31",
        series,
        "Fig. 6: normalized encoding complexity (p = 31)",
    )
    small_k, large_k = series[2], series[-1]
    assert small_k["evenodd"] > large_k["evenodd"]  # degradation
    assert small_k["rdp"] > large_k["rdp"]
    libs = [r["liberation-original"] for r in series]
    assert max(libs) - min(libs) < 1e-6  # flat
    assert all(r["liberation-optimal"] == pytest.approx(1.0) for r in series)
