"""Fig. 8 -- normalized decoding complexity at fixed p = 31.

Paper series: EVENODD/RDP decoding degrades dramatically as k shrinks;
original Liberation runs 10-15% over the bound; the proposed decoder
stays within 0-2.5% (for all but the smallest k).
"""

import pytest

from repro.bench.complexity import decoding_complexity_series

from conftest import emit

K_VALUES = list(range(2, 24, 3))
MAX_PAIRS = 40


@pytest.fixture(scope="module")
def series():
    return decoding_complexity_series(K_VALUES, p=31, max_pairs=MAX_PAIRS)


def test_fig08_series(benchmark, series):
    benchmark(decoding_complexity_series, [5], p=31, max_pairs=4)
    emit(
        "fig08_decoding_complexity_p31",
        series,
        "Fig. 8: normalized decoding complexity (p = 31)",
    )
    for row in series:
        k = row["k"]
        if k >= 8:
            assert row["liberation-optimal"] < 1.045, row
        if 4 <= k <= 23:
            assert 1.10 < row["liberation-original"] < 1.30, row
    # EVENODD/RDP blow up at small k relative to large k.
    first = next(r for r in series if r["k"] >= 5)
    last = series[-1]
    assert first["evenodd"] > last["evenodd"]
