"""Shared helpers for the figure/table benchmarks.

Every benchmark module both (a) registers pytest-benchmark kernels for
the operations the paper times and (b) regenerates the corresponding
table/figure series, printing it and persisting it under ``results/``.
Series generation happens once per module via session-cached fixtures
so ``--benchmark-only`` runs stay reasonable.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.bench.report import format_table, save_series

RESULTS_BASE = pathlib.Path(__file__).resolve().parent.parent / "results"


def emit(name: str, rows, title: str) -> None:
    """Print a series in paper-row format and persist it."""
    text = format_table(rows, title=title)
    print("\n" + text)
    save_series(name, rows, title=title, base=RESULTS_BASE)


@pytest.fixture
def filled_stripe():
    """Factory: a code plus an encoded random stripe."""

    def make(code, seed=0):
        rng = np.random.default_rng(seed)
        buf = code.alloc_stripe()
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code.encode(buf)
        return buf

    return make
