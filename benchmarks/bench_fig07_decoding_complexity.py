"""Fig. 7 -- normalized decoding complexity, p varying with k.

Averaged over two-data-column erasure patterns (exhaustive up to 66
pairs, evenly-strided subsample beyond, as noted in EXPERIMENTS.md).
Paper series: the proposed decoder sits within ~3% of the bound while
the original bit-matrix-scheduled decoder runs 15-20% higher.
"""

import pytest

from repro.bench.complexity import decoding_complexity_series
from repro.core.decoder import decode_schedule

from conftest import emit

K_VALUES = list(range(2, 23, 2))
MAX_PAIRS = 66


@pytest.fixture(scope="module")
def series():
    return decoding_complexity_series(K_VALUES, max_pairs=MAX_PAIRS)


def test_fig07_series(benchmark, series):
    benchmark(decoding_complexity_series, [6], max_pairs=6)
    emit(
        "fig07_decoding_complexity",
        series,
        "Fig. 7: normalized decoding complexity (p varying with k)",
    )
    for row in series:
        if row["k"] < 4:
            continue
        assert row["liberation-optimal"] < 1.05
        reduction = 1 - row["liberation-optimal"] / row["liberation-original"]
        assert 0.10 < reduction < 0.25, row


@pytest.mark.parametrize("k", [6, 12, 22])
def test_decode_plan_construction(benchmark, k):
    """Algorithms 2-4 planning cost (matrix-free, unlike the original)."""
    from repro.utils.primes import prime_for_k

    p = prime_for_k(k)
    benchmark(decode_schedule, p, k, (1, k - 1))
