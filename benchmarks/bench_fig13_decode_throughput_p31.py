"""Fig. 13 -- decoding throughput at fixed p = 31 (4KB and 8KB).

Paper shape: at large fixed p the original decoder's matrix work is at
its most expensive, giving the proposed algorithm its biggest win (the
paper's "at most 155%" headline comes from this configuration).
"""

import pytest

from repro.bench.throughput import decode_throughput_series, make_bench_code

from conftest import emit, filled_stripe

K_VALUES = [5, 11, 17, 23]


@pytest.fixture(scope="module", params=[4096, 8192], ids=["4KB", "8KB"])
def series(request):
    rows = decode_throughput_series(
        K_VALUES, p=31, element_size=request.param, max_pairs=4, inner=2, repeats=2
    )
    return request.param, rows


def test_fig13_series(benchmark, series):
    elem, rows = series
    benchmark(lambda: None)
    emit(
        f"fig13_decode_throughput_p31_{elem // 1024}KB",
        rows,
        f"Fig. 13: decode GB/s, p = 31 (element {elem // 1024}KB)",
    )
    for row in rows:
        ratio = row["liberation-optimal"] / row["liberation-original"]
        assert ratio > 1.5, row  # paper: up to 2.55x; ours is larger


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
def test_decode_kernel_k23(benchmark, filled_stripe, name):
    code = make_bench_code(name, 23, 31, 4096)
    buf = filled_stripe(code)
    benchmark(code.decode, buf, (3, 17))
