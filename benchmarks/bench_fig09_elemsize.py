"""Fig. 9 -- encoding throughput vs element size (p = 5, 7, 11, k = p).

Sweeps element sizes 4KB..64KB and times both Liberation encoders on
the streaming (Jerasure-model) executor.  The paper picks 8KB/4KB as
the operating points for Figs. 10-13 from this sweep.
"""

import pytest

from repro.bench.throughput import element_size_series, make_bench_code

from conftest import emit, filled_stripe

P_VALUES = (5, 7, 11)
LOG2_SIZES = (12, 13, 14, 15, 16)


@pytest.fixture(scope="module")
def series():
    return element_size_series(
        p_values=P_VALUES, log2_sizes=LOG2_SIZES, inner=5, repeats=3
    )


def test_fig09_series(benchmark, series):
    benchmark(lambda: None)  # series measured by the harness itself
    for p in P_VALUES:
        emit(
            f"fig09_elemsize_p{p}",
            series[p],
            f"Fig. 9({'abc'[P_VALUES.index(p)]}): encode GB/s vs element size, p={p}",
        )
        for row in series[p]:
            assert row["liberation-optimal"] > 0
            assert row["liberation-original"] > 0


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
@pytest.mark.parametrize("log2_elem", [12, 14, 16])
def test_encode_kernel(benchmark, filled_stripe, name, log2_elem):
    code = make_bench_code(name, 7, 7, 2**log2_elem)
    buf = filled_stripe(code)
    benchmark(code.encode, buf)
