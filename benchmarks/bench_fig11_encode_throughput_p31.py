"""Fig. 11 -- encoding throughput at fixed p = 31 (4KB and 8KB)."""

import pytest

from repro.bench.throughput import encode_throughput_series, make_bench_code

from conftest import emit, filled_stripe

K_VALUES = [4, 8, 12, 16, 20, 23]


@pytest.fixture(scope="module", params=[4096, 8192], ids=["4KB", "8KB"])
def series(request):
    rows = encode_throughput_series(
        K_VALUES, p=31, element_size=request.param, inner=8, repeats=5
    )
    return request.param, rows


def test_fig11_series(benchmark, series):
    elem, rows = series
    benchmark(lambda: None)
    emit(
        f"fig11_encode_throughput_p31_{elem // 1024}KB",
        rows,
        f"Fig. 11: encode GB/s, p = 31 (element {elem // 1024}KB)",
    )
    opt = sum(r["liberation-optimal"] for r in rows)
    orig = sum(r["liberation-original"] for r in rows)
    assert opt > 0.95 * orig, (opt, orig)  # see fig10 noise note


@pytest.mark.parametrize("name", ["liberation-original", "liberation-optimal"])
def test_encode_kernel_k23(benchmark, filled_stripe, name):
    code = make_bench_code(name, 23, 31, 4096)
    buf = filled_stripe(code)
    benchmark(code.encode, buf)
