"""Extension study: decode cost vs erasure positions.

The paper states the proposed decoder is "either optimal or near
optimal, depending on the positions of the failed disks" without
mapping which positions are which.  This study does: adjacent-column
pairs decode at exactly the ``k-1`` bound (their chain consumes every
unknown common expression for free), while widely separated pairs --
especially those involving column 0, which hosts no extra bit -- pay
the most syndrome-set overhead.
"""

import pytest

from repro.bench.complexity import decoding_pair_profile

from conftest import emit


@pytest.fixture(scope="module")
def profiles():
    return [
        decoding_pair_profile("liberation-optimal", k, p)
        for k, p in [(7, 7), (11, 11), (16, 17), (23, 31)]
    ]


def test_pair_position_study(benchmark, profiles):
    benchmark(decoding_pair_profile, "liberation-optimal", 5, 5)
    rows = [
        {
            "k": pr["k"],
            "min": pr["min"],
            "mean": pr["mean"],
            "max": pr["max"],
            "optimal_share": pr["optimal_share"],
            "worst_pair": str(pr["worst_pair"]),
        }
        for pr in profiles
    ]
    emit(
        "pair_position_study",
        rows,
        "Extension: Liberation(optimal) decode cost by erasure positions",
    )
    for pr in profiles:
        # Some pairs are exactly optimal...
        assert pr["min"] == pytest.approx(1.0)
        assert pr["optimal_share"] > 0
        # ... and the worst pair's excess stays under one extra XOR
        # per missing element (~1/(k-1) normalized).
        assert pr["max"] < 1 + 1.0 / (pr["k"] - 1)
        # Adjacent pairs are always optimal.
        per = pr["per_pair"]
        for l in range(1, pr["k"] - 1):
            assert per[(l, l + 1)] == pytest.approx(1.0), (pr["k"], l)


def test_worst_pairs_involve_column_zero(benchmark, profiles):
    benchmark(lambda: None)
    for pr in profiles:
        assert 0 in pr["worst_pair"], pr["worst_pair"]
