"""Extension: batch-coding thread scaling.

Encodes a batch of stripes with 1..N worker threads.  NumPy's XOR
kernels drop the GIL on the element buffers, so the outer
stripe-parallel loop scales on multi-core machines; the emitted series
records what this host actually delivers.
"""

import os
import time

import numpy as np
import pytest

from repro.codes import make_code
from repro.parallel import BatchCoder, alloc_batch

from conftest import emit

N_STRIPES = 64
WORKERS = [1, 2, 4]


@pytest.fixture(scope="module")
def series():
    code = make_code("liberation-optimal", 10, p=11, element_size=8192)
    rng = np.random.default_rng(0)
    batch = alloc_batch(code, N_STRIPES)
    batch[:, : code.k] = rng.integers(
        0, 2**64, batch[:, : code.k].shape, dtype=np.uint64
    )
    BatchCoder(code).encode(batch)  # warm plans
    rows = []
    data_bytes = code.data_bytes * N_STRIPES
    for w in WORKERS:
        coder = BatchCoder(code, workers=w)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            coder.encode(batch)
            best = min(best, time.perf_counter() - t0)
        rows.append({"workers": w, "GB/s": data_bytes / best / 1e9})
    return rows


def test_parallel_scaling_series(benchmark, series):
    benchmark(lambda: None)
    emit(
        "parallel_scaling",
        series,
        f"Extension: batch encode GB/s vs worker threads "
        f"({N_STRIPES} stripes, k=10, p=11, 8KB; host has "
        f"{os.cpu_count()} CPUs)",
    )
    base = series[0]["GB/s"]
    # Threads must never make it catastrophically slower; genuine
    # speedup depends on the host's core count and load.
    for row in series:
        assert row["GB/s"] > 0.5 * base


@pytest.mark.parametrize("workers", WORKERS)
def test_batch_encode_kernel(benchmark, workers):
    code = make_code("liberation-optimal", 10, p=11, element_size=8192)
    rng = np.random.default_rng(1)
    batch = alloc_batch(code, 16)
    batch[:, :10] = rng.integers(0, 2**64, batch[:, :10].shape, dtype=np.uint64)
    coder = BatchCoder(code, workers=workers)
    coder.encode(batch)
    benchmark(coder.encode, batch)
