"""Kernel data plane vs the paper's streaming executor.

Not a paper figure: this measures the repo's own fast path -- the
levelized bulk-XOR ``KernelPlan`` over a word-packed batch of stripes
-- against the streaming executor that the figure benches model the
paper with, at the bench gate's acceptance geometries (fig. 10 encode
``k=10 p=11`` and fig. 12 decode ``k=11 p=11``, 4 KB elements).

The emitted series mirrors ``results/BENCH_perf.json``'s trajectory
block so the checked-in gate numbers can be re-derived locally with
``pytest benchmarks/bench_kernel_dataplane.py -q``.
"""

import pytest

from repro.bench.throughput import measure_decode, measure_encode

from conftest import emit

#: The gate's operating point: 8 stripes word-packed per plan call.
BATCH = 8

GEOMETRIES = [
    ("encode", 10),
    ("decode", 11),
]


def _measure(op: str, k: int, execution: str, batch: int):
    if op == "encode":
        return measure_encode(
            "liberation-optimal", k, element_size=4096,
            inner=4, repeats=8, execution=execution, batch=batch,
        )
    return measure_decode(
        "liberation-optimal", k, element_size=4096, max_pairs=3,
        inner=3, repeats=6, execution=execution, batch=batch,
    )


@pytest.fixture(scope="module")
def series():
    rows = []
    for op, k in GEOMETRIES:
        streaming = _measure(op, k, "streaming", 1)
        kernel = _measure(op, k, "kernel", BATCH)
        rows.append(
            {
                "op": op,
                "k": k,
                "streaming": streaming.gbps,
                "kernel": kernel.gbps,
                "speedup": kernel.gbps / streaming.gbps,
            }
        )
    return rows


def test_kernel_dataplane_series(benchmark, series):
    benchmark(lambda: None)
    emit(
        "kernel_dataplane",
        series,
        f"Kernel data plane: GB/s at p=11, 4KB elements, batch={BATCH}",
    )
    # The gate enforces >= 5x against frozen pre-kernel baselines; the
    # in-run comparison only asserts a sane margin, so a noisy shared
    # machine cannot fail the figure run itself.
    for row in series:
        assert row["speedup"] > 2.0, row


@pytest.mark.parametrize("op,k", GEOMETRIES)
@pytest.mark.parametrize("execution", ["streaming", "kernel"])
def test_dataplane_kernel(benchmark, op, k, execution):
    batch = BATCH if execution == "kernel" else 1
    benchmark(lambda: _measure(op, k, execution, batch))
