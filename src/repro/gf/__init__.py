"""Finite-field substrates.

* :mod:`repro.gf.gf2` -- dense GF(2) (bit) matrix algebra used by the
  Jerasure-style bit-matrix coding path: multiplication, Gaussian
  inversion, rank.  This is what the *original* Liberation implementation
  is built on, and what the generic two-erasure decoder uses to derive
  decoding matrices.
* :mod:`repro.gf.gf256` -- GF(2^8) table arithmetic used by the
  Reed-Solomon P+Q reference code (the scheme the Linux kernel RAID-6
  driver uses), fully vectorised over NumPy arrays.
"""

from repro.gf.gf2 import (
    gf2_mul,
    gf2_matvec,
    gf2_inverse,
    gf2_rank,
    gf2_identity,
    gf2_is_invertible,
    gf2_solve,
)
from repro.gf.gf256 import GF256
from repro.gf.gf2w import GF2w, element_bitmatrix
from repro.gf.ring import PolyRing

__all__ = [
    "gf2_mul",
    "gf2_matvec",
    "gf2_inverse",
    "gf2_rank",
    "gf2_identity",
    "gf2_is_invertible",
    "gf2_solve",
    "GF256",
    "GF2w",
    "element_bitmatrix",
    "PolyRing",
]
