"""Dense GF(2) matrix algebra on NumPy ``uint8`` arrays.

Bit-matrices are represented as 2-D ``uint8`` arrays containing 0/1.
For the sizes array codes need (at most a few thousand square) dense
vectorised arithmetic is far faster and simpler than any sparse scheme:
a GF(2) matrix product is an integer matmul followed by ``& 1``, and
Gaussian elimination vectorises row updates with a boolean mask XOR
(per the HPC guides: replace inner loops with whole-array operations).

These routines back the Jerasure-style substrate:

* building generator bit-matrices (``repro.bitmatrix.builder``),
* inverting the surviving-rows submatrix to derive decoding matrices
  (``repro.bitmatrix.decode``),
* verifying the MDS property of code constructions in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_gf2",
    "gf2_identity",
    "gf2_mul",
    "gf2_matvec",
    "gf2_inverse",
    "gf2_rank",
    "gf2_is_invertible",
    "gf2_solve",
]


def as_gf2(m: np.ndarray) -> np.ndarray:
    """Coerce an array-like to a C-contiguous 0/1 ``uint8`` matrix."""
    arr = np.ascontiguousarray(m, dtype=np.uint8)
    if arr.max(initial=0) > 1:
        arr = arr & 1
    return arr


def gf2_identity(n: int) -> np.ndarray:
    """The ``n x n`` identity over GF(2)."""
    return np.eye(n, dtype=np.uint8)


def gf2_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2).

    Uses an integer matmul (exact for the sizes involved) reduced mod 2;
    this is a single BLAS-backed call instead of a Python triple loop.
    """
    a = as_gf2(a)
    b = as_gf2(b)
    # uint64 accumulator: inner dimension < 2**63 always holds here.
    prod = a.astype(np.uint64) @ b.astype(np.uint64)
    return (prod & 1).astype(np.uint8)


def gf2_matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2)."""
    a = as_gf2(a)
    v = as_gf2(v).ravel()
    return ((a.astype(np.uint64) @ v.astype(np.uint64)) & 1).astype(np.uint8)


def _eliminate(aug: np.ndarray, n_rows: int, n_cols: int) -> int:
    """In-place forward elimination to reduced row echelon form.

    Returns the rank.  ``aug`` may be wider than ``n_cols``; the extra
    columns (e.g. an appended identity during inversion) are carried
    along by the row operations.
    """
    rank = 0
    for col in range(n_cols):
        if rank >= n_rows:
            break
        # Find a pivot at or below `rank`.
        pivots = np.nonzero(aug[rank:, col])[0]
        if pivots.size == 0:
            continue
        piv = rank + int(pivots[0])
        if piv != rank:
            aug[[rank, piv]] = aug[[piv, rank]]
        # Zero this column everywhere else with one masked XOR.
        mask = aug[:, col].astype(bool).copy()
        mask[rank] = False
        if mask.any():
            aug[mask] ^= aug[rank]
        rank += 1
    return rank


def gf2_rank(m: np.ndarray) -> int:
    """Rank of a GF(2) matrix."""
    work = as_gf2(m).copy()
    if work.size == 0:
        return 0
    return _eliminate(work, work.shape[0], work.shape[1])


def gf2_is_invertible(m: np.ndarray) -> bool:
    """Whether a square GF(2) matrix is invertible."""
    m = as_gf2(m)
    return m.shape[0] == m.shape[1] and gf2_rank(m) == m.shape[0]


def gf2_inverse(m: np.ndarray) -> np.ndarray:
    """Inverse of a square GF(2) matrix via Gauss-Jordan elimination.

    Raises :class:`numpy.linalg.LinAlgError` if singular -- a singular
    surviving submatrix would mean the code is not MDS for that erasure
    pattern, which the tests assert never happens for valid parameters.
    """
    m = as_gf2(m)
    n = m.shape[0]
    if m.ndim != 2 or m.shape[1] != n:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    aug = np.hstack([m.copy(), gf2_identity(n)])
    rank = _eliminate(aug, n, n)
    if rank != n:
        raise np.linalg.LinAlgError(
            f"GF(2) matrix of shape {m.shape} is singular (rank {rank})"
        )
    return np.ascontiguousarray(aug[:, n:])


def gf2_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over GF(2) for square invertible ``a``."""
    inv = gf2_inverse(a)
    b = as_gf2(b)
    if b.ndim == 1:
        return gf2_matvec(inv, b)
    return gf2_mul(inv, b)
