"""GF(2^8) arithmetic for the Reed-Solomon P+Q reference code.

The Linux kernel's RAID-6 driver (the paper's §I reference point for
"conventional" RAID-6) computes

* ``P = d_0 + d_1 + ... + d_{k-1}``           (XOR parity), and
* ``Q = g^0 d_0 + g^1 d_1 + ... + g^{k-1} d_{k-1}``

over GF(2^8) with the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D) and generator ``g = 2``.  This module provides that field with
log/antilog table lookups fully vectorised over NumPy ``uint8`` arrays,
so multiplying a whole strip by a constant is two table gathers and an
add -- no Python-level loops on the datapath.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF256", "PRIMITIVE_POLY"]

#: The Linux RAID-6 field polynomial, x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D


class GF256:
    """The field GF(2^8) with vectorised table arithmetic.

    Instances are cheap singletons per polynomial; tables are built once
    at construction (512-entry exp table avoids a mod-255 per lookup).
    """

    def __init__(self, poly: int = PRIMITIVE_POLY, generator: int = 2) -> None:
        self.poly = int(poly)
        self.generator = int(generator)
        exp = np.zeros(512, dtype=np.uint8)
        log = np.zeros(256, dtype=np.int32)
        x = 1
        for i in range(255):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & 0x100:
                x ^= self.poly
        if x != 1:
            raise ValueError(f"0x{poly:X} is not primitive over GF(2^8)")
        exp[255:510] = exp[:255]
        self._exp = exp
        self._log = log

    # -- scalar/elementwise ops -------------------------------------------

    def add(self, a, b):
        """Field addition (= XOR); works on scalars and arrays."""
        return np.bitwise_xor(a, b)

    sub = add  # characteristic 2: subtraction is addition

    def mul(self, a, b):
        """Elementwise field multiplication of arrays/scalars.

        Vectorised: two log gathers, an integer add, one exp gather,
        with a zero mask applied at the end.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        out = self._exp[self._log[a] + self._log[b]]
        zero = (a == 0) | (b == 0)
        if np.ndim(out) == 0:
            return np.uint8(0) if zero else out
        return np.where(zero, np.uint8(0), out)

    def inverse(self, a):
        """Multiplicative inverse; raises on zero input."""
        a_arr = np.asarray(a, dtype=np.uint8)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("0 has no inverse in GF(2^8)")
        return self._exp[255 - self._log[a_arr]]

    def div(self, a, b):
        """Elementwise division ``a / b``."""
        return self.mul(a, self.inverse(b))

    def pow(self, a: int, n: int):
        """Scalar exponentiation ``a ** n``."""
        a = int(a)
        if a == 0:
            return 0 if n else 1
        return int(self._exp[(int(self._log[a]) * (n % 255)) % 255])

    def gen_pow(self, n: int) -> int:
        """``generator ** n`` -- the Q-parity coefficient of column ``n``."""
        return self.pow(self.generator, n)

    # -- strip-level helpers ----------------------------------------------

    def mul_strip(self, coeff: int, strip: np.ndarray) -> np.ndarray:
        """Multiply every byte of a strip by a constant coefficient.

        ``strip`` may have any shape/dtype; it is processed as raw bytes
        (the byte is the coding symbol for RS RAID-6).
        """
        data = np.ascontiguousarray(strip).view(np.uint8)
        coeff = int(coeff) & 0xFF
        if coeff == 0:
            return np.zeros_like(data).view(strip.dtype).reshape(strip.shape)
        if coeff == 1:
            return strip.copy()
        shift = int(self._log[coeff])
        out = np.zeros_like(data)
        nz = data != 0
        out[nz] = self._exp[self._log[data[nz]] + shift]
        return out.view(strip.dtype).reshape(strip.shape)

    def vandermonde(self, rows: int, cols: int) -> np.ndarray:
        """``rows x cols`` matrix with entry ``g^(i*j)`` -- RS generator."""
        out = np.zeros((rows, cols), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = self.pow(self.generator, i * j)
        return out

    def mat_inverse(self, m: np.ndarray) -> np.ndarray:
        """Invert a small GF(2^8) matrix by Gauss-Jordan elimination."""
        m = np.array(m, dtype=np.uint8)
        n = m.shape[0]
        if m.ndim != 2 or m.shape[1] != n:
            raise ValueError(f"expected square matrix, got {m.shape}")
        aug = np.concatenate([m, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            piv = next((r for r in range(col, n) if aug[r, col]), None)
            if piv is None:
                raise np.linalg.LinAlgError("singular GF(2^8) matrix")
            if piv != col:
                aug[[col, piv]] = aug[[piv, col]]
            aug[col] = self.mul(aug[col], self.inverse(aug[col, col]))
            for r in range(n):
                if r != col and aug[r, col]:
                    aug[r] = self.add(aug[r], self.mul(aug[r, col], aug[col]))
        return aug[:, n:]
