"""Small-field GF(2^w) arithmetic for Cauchy Reed-Solomon coding.

Cauchy RS (Blaum-Roth '93 construction, as shipped in Jerasure's
``cauchy.c``) works over GF(2^w) with ``k + m <= 2^w`` and projects
field elements to ``w x w`` bit-matrices.  ``w`` stays tiny (4 or 8 for
any realistic RAID-6 group), so full log/antilog tables are the right
representation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF2w", "PRIMITIVE_POLYS", "element_bitmatrix"]

#: Standard primitive polynomials (Jerasure/galois.c choices), by w.
PRIMITIVE_POLYS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,  # 0x11D
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
}


class GF2w:
    """GF(2^w), table-based, for small ``w``."""

    def __init__(self, w: int) -> None:
        if w not in PRIMITIVE_POLYS:
            raise ValueError(f"unsupported field width w={w}")
        self.w = w
        self.size = 1 << w
        poly = PRIMITIVE_POLYS[w]
        exp = np.zeros(2 * self.size, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        if x != 1:
            raise AssertionError(f"polynomial for w={w} is not primitive")
        exp[self.size - 1 : 2 * (self.size - 1)] = exp[: self.size - 1]
        self._exp = exp
        self._log = log

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return int(self._exp[(self.size - 1) - self._log[a]])

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inverse(b))

    def add(self, a: int, b: int) -> int:
        return a ^ b


def element_bitmatrix(gf: GF2w, e: int) -> np.ndarray:
    """The ``w x w`` GF(2) matrix of multiplication by ``e``.

    Column ``c`` holds the bit representation of ``e * 2^c`` (the image
    of the ``c``-th basis vector), so ``M @ bits(x) = bits(e * x)`` --
    the projection that turns a Cauchy matrix over GF(2^w) into an XOR
    code (Blaum & Roth; Jerasure's ``cauchy.c``).
    """
    w = gf.w
    m = np.zeros((w, w), dtype=np.uint8)
    for c in range(w):
        col = gf.mul(e, 1 << c)
        for r in range(w):
            m[r, c] = (col >> r) & 1
    return m
