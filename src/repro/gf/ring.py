"""The polynomial ring R_p = GF(2)[x] / M_p(x) behind Blaum-Roth codes.

``M_p(x) = 1 + x + ... + x^(p-1)`` for odd prime ``p``; the quotient
ring has dimension ``w = p - 1`` over GF(2).  Two facts drive
everything:

* ``x^p = 1`` in R_p (since ``x^p - 1 = (x - 1) M_p(x)``), so powers of
  ``x`` are indexed mod ``p``;
* ``x^(p-1) = 1 + x + ... + x^(p-2)`` (directly from ``M_p = 0``).

``1 + x^d`` is invertible for ``1 <= d <= p-1`` (``gcd(1 + x^d, M_p) = 1``
for prime ``p``), which is exactly what makes the Blaum-Roth generator
MDS.  Tests verify that invertibility computationally.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_prime_p

__all__ = ["PolyRing"]


class PolyRing:
    """GF(2)[x] / M_p(x): vectors of length ``p - 1`` over GF(2)."""

    def __init__(self, p: int) -> None:
        self.p = check_prime_p(p)
        self.w = p - 1

    def x_power(self, e: int) -> np.ndarray:
        """Coefficient vector of ``x^e`` in R_p."""
        e %= self.p
        v = np.zeros(self.w, dtype=np.uint8)
        if e < self.w:
            v[e] = 1
        else:  # x^(p-1) = sum of all lower powers
            v[:] = 1
        return v

    def mul_by_x(self, v: np.ndarray) -> np.ndarray:
        """Multiply an element by ``x``."""
        v = np.asarray(v, dtype=np.uint8)
        out = np.zeros_like(v)
        out[1:] = v[:-1]
        if v[self.w - 1]:  # x * x^(p-2) = x^(p-1) = all-ones
            out ^= 1
        return out

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full ring product (used by tests; codes only need x-powers)."""
        a = np.asarray(a, dtype=np.uint8)
        acc = np.zeros(self.w, dtype=np.uint8)
        term = np.array(b, dtype=np.uint8)
        for c in range(self.w):
            if a[c]:
                acc ^= term
            term = self.mul_by_x(term)
        return acc

    def power_matrix(self, e: int) -> np.ndarray:
        """The ``w x w`` GF(2) matrix of multiplication by ``x^e``.

        Column ``c`` is ``x^(e+c)``; with ``x^p = 1`` this is a cyclic
        structure with one dense (all-ones) column when ``e + c`` wraps
        onto ``p - 1``.
        """
        m = np.zeros((self.w, self.w), dtype=np.uint8)
        for c in range(self.w):
            m[:, c] = self.x_power(e + c)
        return m

    def is_invertible(self, v: np.ndarray) -> bool:
        """Whether an element is a unit (its multiplication matrix is
        invertible over GF(2))."""
        from repro.gf.gf2 import gf2_is_invertible

        m = np.zeros((self.w, self.w), dtype=np.uint8)
        col = np.array(v, dtype=np.uint8)
        for c in range(self.w):
            m[:, c] = col
            col = self.mul_by_x(col)
        return gf2_is_invertible(m)
