"""Admission control: bounded in-flight work, queue-depth shedding.

An asyncio service without backpressure converts overload into
unbounded queueing: every request is eventually served, but the tail
latency grows without limit and memory with it.  The gateway instead
bounds both dimensions explicitly:

* at most ``max_inflight`` requests hold an execution slot;
* at most ``max_queue`` more may *wait* for a slot; arrivals beyond
  that are **shed** immediately with the typed :class:`Overloaded`
  error (cheap for the client to retry against another replica, and
  cheap for us -- no state was queued);
* a waiter that has queued longer than ``queue_timeout`` (measured on
  the injectable clock, so simulated time works) is shed too, which
  caps the latency of *admitted* work at roughly
  ``queue_timeout + service_time`` no matter the arrival rate.

The result, asserted by the overload test on a virtual clock: under
arrival rates far beyond capacity, throughput holds at the service
limit, excess load turns into ``Overloaded`` errors, and the p99 of
admitted requests stays bounded.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import Clock, RealClock

__all__ = ["Overloaded", "AdmissionController"]


class Overloaded(Exception):
    """Load was shed: the gateway is at its admission limit.

    Deliberately *not* a :class:`~repro.cluster.client.ClusterError`
    subclass -- nothing is wrong with the cluster; the front door is
    full.  Callers should back off and retry; nothing was executed and
    no state changed.
    """


class AdmissionController:
    """Semaphore with a bounded wait queue and queue-age shedding."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        *,
        queue_timeout: float | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout = queue_timeout
        self.clock = clock if clock is not None else RealClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        return sum(1 for f in self._waiters if not f.done())

    def _gauges(self) -> None:
        self.metrics.gauge("gateway_inflight").set(self.inflight)
        self.metrics.gauge("gateway_queue_depth").set(self.queued)

    async def acquire(self) -> None:
        """Take a slot; raises :class:`Overloaded` instead of queueing
        past ``max_queue`` waiters or ``queue_timeout`` seconds."""
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self.metrics.counter("gateway_admitted").inc()
            self._gauges()
            return
        if self.queued >= self.max_queue:
            self.metrics.counter("gateway_shed_queue_full").inc()
            raise Overloaded(
                f"admission queue full ({self.max_queue} waiting, "
                f"{self.inflight} in flight)"
            )
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        self._gauges()
        try:
            if self.queue_timeout is None:
                await fut
            else:
                await self.clock.wait_for(self._granted(fut), self.queue_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            # The timer fired -- unless the grant had already landed,
            # in which case the slot must go back; otherwise the
            # waiter entry is dead and must never be granted.
            if fut.done() and not fut.cancelled():
                self.release()
            else:
                fut.cancel()
            self._waiters_prune()
            self.metrics.counter("gateway_shed_timeout").inc()
            self._gauges()
            raise Overloaded(
                f"queued longer than {self.queue_timeout}s"
            ) from None
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                self.release()  # caller died holding a fresh grant
            else:
                fut.cancel()
            self._waiters_prune()
            self._gauges()
            raise
        self.metrics.counter("gateway_admitted").inc()
        self._gauges()

    @staticmethod
    async def _granted(fut: asyncio.Future) -> None:
        # wait_for() cancels this wrapper on timeout; shielding the
        # bare future keeps an already-delivered grant observable.
        await asyncio.shield(fut)

    def _waiters_prune(self) -> None:
        while self._waiters and self._waiters[0].done():
            self._waiters.popleft()

    def release(self) -> None:
        """Give the slot back, waking the oldest live waiter."""
        self.inflight -= 1
        while self._waiters:
            fut = self._waiters.popleft()
            if fut.done():
                continue
            fut.set_result(None)
            self.inflight += 1
            break
        self._gauges()

    @contextlib.asynccontextmanager
    async def slot(self):
        """``async with controller.slot():`` -- acquire/release pair."""
        await self.acquire()
        try:
            yield
        finally:
            self.release()
