"""Admission control: bounded in-flight work, queue-depth shedding.

An asyncio service without backpressure converts overload into
unbounded queueing: every request is eventually served, but the tail
latency grows without limit and memory with it.  The gateway instead
bounds both dimensions explicitly:

* at most ``max_inflight`` requests hold an execution slot;
* at most ``max_queue`` more may *wait* for a slot; arrivals beyond
  that are **shed** immediately with the typed :class:`Overloaded`
  error (cheap for the client to retry against another replica, and
  cheap for us -- no state was queued);
* a waiter that has queued longer than ``queue_timeout`` (measured on
  the injectable clock, so simulated time works) is shed too, which
  caps the latency of *admitted* work at roughly
  ``queue_timeout + service_time`` no matter the arrival rate.

The result, asserted by the overload test on a virtual clock: under
arrival rates far beyond capacity, throughput holds at the service
limit, excess load turns into ``Overloaded`` errors, and the p99 of
admitted requests stays bounded.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import Clock, RealClock

__all__ = ["Overloaded", "AdmissionController"]


class Overloaded(Exception):
    """Load was shed: the gateway is at its admission limit.

    Deliberately *not* a :class:`~repro.cluster.client.ClusterError`
    subclass -- nothing is wrong with the cluster; the front door is
    full.  Callers should back off and retry; nothing was executed and
    no state changed.

    ``retry_after`` is the server's backoff hint in seconds: the
    estimated time for the current backlog to drain one queue slot
    (queue depth x observed mean service time / parallelism).  ``None``
    when the controller has no service-time observations yet; clients
    without better information should sleep roughly this long before
    retrying instead of hammering a full queue.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Semaphore with a bounded wait queue and queue-age shedding."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        *,
        queue_timeout: float | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout = queue_timeout
        self.clock = clock if clock is not None else RealClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()
        #: EWMA of observed service times, fed by :meth:`slot`; the
        #: basis of the ``retry_after`` hint on shed requests
        self._service_ewma: float | None = None

    @property
    def queued(self) -> int:
        return sum(1 for f in self._waiters if not f.done())

    def retry_after_hint(self) -> float | None:
        """Backoff advice for a shed request, from queue depth.

        Time for one queue slot to open up: everyone ahead (the whole
        queue plus our would-be place in it) must be served across
        ``max_inflight`` lanes at the observed mean service time.
        """
        if self._service_ewma is None:
            return None
        ahead = self.queued + 1
        return ahead * self._service_ewma / self.max_inflight

    def observe_service_time(self, seconds: float) -> None:
        alpha = 0.2
        if self._service_ewma is None:
            self._service_ewma = float(seconds)
        else:
            self._service_ewma += alpha * (float(seconds) - self._service_ewma)

    def _gauges(self) -> None:
        self.metrics.gauge("gateway_inflight").set(self.inflight)
        self.metrics.gauge("gateway_queue_depth").set(self.queued)

    async def acquire(self) -> None:
        """Take a slot; raises :class:`Overloaded` instead of queueing
        past ``max_queue`` waiters or ``queue_timeout`` seconds."""
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self.metrics.counter("gateway_admitted").inc()
            self._gauges()
            return
        if self.queued >= self.max_queue:
            self.metrics.counter("gateway_shed_queue_full").inc()
            raise Overloaded(
                f"admission queue full ({self.max_queue} waiting, "
                f"{self.inflight} in flight)",
                retry_after=self.retry_after_hint(),
            )
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        self._gauges()
        try:
            if self.queue_timeout is None:
                await fut
            else:
                await self.clock.wait_for(self._granted(fut), self.queue_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            # The timer fired -- unless the grant had already landed,
            # in which case the slot must go back; otherwise the
            # waiter entry is dead and must never be granted.
            if fut.done() and not fut.cancelled():
                self.release()
            else:
                fut.cancel()
            self._waiters_prune()
            self.metrics.counter("gateway_shed_timeout").inc()
            self._gauges()
            raise Overloaded(
                f"queued longer than {self.queue_timeout}s",
                retry_after=self.retry_after_hint(),
            ) from None
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                self.release()  # caller died holding a fresh grant
            else:
                fut.cancel()
            self._waiters_prune()
            self._gauges()
            raise
        self.metrics.counter("gateway_admitted").inc()
        self._gauges()

    @staticmethod
    async def _granted(fut: asyncio.Future) -> None:
        # wait_for() cancels this wrapper on timeout; shielding the
        # bare future keeps an already-delivered grant observable.
        await asyncio.shield(fut)

    def _waiters_prune(self) -> None:
        while self._waiters and self._waiters[0].done():
            self._waiters.popleft()

    def release(self) -> None:
        """Give the slot back, waking the oldest live waiter."""
        self.inflight -= 1
        while self._waiters:
            fut = self._waiters.popleft()
            if fut.done():
                continue
            fut.set_result(None)
            self.inflight += 1
            break
        self._gauges()

    @contextlib.asynccontextmanager
    async def slot(self):
        """``async with controller.slot():`` -- acquire/release pair.

        Also times the slot's occupancy, feeding the service-time EWMA
        behind :meth:`retry_after_hint`.
        """
        await self.acquire()
        t0 = self.clock.time()
        try:
            yield
        finally:
            self.observe_service_time(self.clock.time() - t0)
            self.release()
