"""Open-loop object workload driver: zipfian keys, measured load.

The harness that turns "heavy traffic" into numbers.  A seeded
generator draws an **open-loop** arrival process -- requests are
issued on a fixed schedule (``rate`` per second) whether or not
earlier ones have finished, the way independent clients behave, so
overload actually builds queues instead of politely self-throttling
the way closed-loop (request-after-response) drivers do.  Keys follow
a zipfian popularity law (a few hot objects take most traffic), the
op mix is a configurable read/overwrite/small-update blend, and every
latency is recorded into log2 histograms reported as interpolated
p50/p90/p99 (:func:`repro.obs.metrics.quantiles_from_buckets`).

The same driver runs in two modes through the usual seams:

* :func:`run_sim_bench` -- :class:`~repro.sim.clock.VirtualClock` +
  :class:`~repro.sim.transport.MemoryTransport`, with a deterministic
  per-request service latency injected via
  :class:`~repro.array.faults.NetworkFaultPlan`.  Virtual seconds cost
  no wall time, every latency is an exact function of the seed, and
  the run folds into a byte-stable :attr:`WorkloadReport.digest`
  (same seed => same digest, across runs and machines) -- the smoke
  check CI replays.
* :func:`run_socket_bench` -- real loopback TCP and the event-loop
  clock.  Latencies are now measurements, so the digest covers only
  the deterministic op stream (kinds, keys, payload CRCs), and the
  report's throughput/percentiles feed ``BENCH_perf.json`` through
  the regression gate.

Timing inside the driver comes exclusively from the injected clock
(never the wall clock directly), which is what lets one code path
serve both modes and keeps the sim-seam AST lint clean over
``repro.gateway``.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field

from repro.array.faults import NetworkFaultPlan
from repro.cluster.client import ClusterError, RetryPolicy
from repro.cluster.local import LocalCluster
from repro.codes import make_code
from repro.gateway.admission import Overloaded
from repro.gateway.objstore import GatewayError, ObjectGateway
from repro.obs.metrics import Histogram
from repro.sim.clock import Clock, RealClock, VirtualClock
from repro.sim.transport import MemoryTransport

__all__ = [
    "WorkloadConfig",
    "WorkloadReport",
    "ZipfKeys",
    "run_workload",
    "run_sim_bench",
    "run_socket_bench",
]

#: Quantiles every latency report carries.
REPORT_QUANTILES = (0.50, 0.90, 0.99)


class ZipfKeys:
    """Seed-deterministic zipfian sampler over ``n`` keys.

    Key ``i`` (0-based popularity rank) is drawn with probability
    proportional to ``1 / (i + 1) ** theta``; ``theta = 0`` degrades
    to uniform, the classic YCSB default is 0.99.  Sampling is a CDF
    bisect, so draws are O(log n) and a pure function of the supplied
    ``random.Random``.
    """

    def __init__(self, n: int, theta: float) -> None:
        if n <= 0:
            raise ValueError("need at least one key")
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        total = sum(weights)
        acc, cdf = 0.0, []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # float-sum drift must not lose the last key
        self._cdf = cdf

    def draw(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


@dataclass
class WorkloadConfig:
    """One measured-load campaign, fully determined by its fields."""

    seed: int = 0
    n_objects: int = 24
    object_size: int = 1024
    n_ops: int = 300
    rate: float = 2000.0  # arrivals per second (open loop)
    read_fraction: float = 0.8
    update_bytes: int = 64
    zipf_theta: float = 0.99

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_objects": self.n_objects,
            "object_size": self.object_size,
            "n_ops": self.n_ops,
            "rate": self.rate,
            "read_fraction": self.read_fraction,
            "update_bytes": self.update_bytes,
            "zipf_theta": self.zipf_theta,
        }


@dataclass
class WorkloadReport:
    """What one driver run measured."""

    mode: str  # "sim" or "socket"
    config: WorkloadConfig
    ok: int = 0
    shed: int = 0
    errors: int = 0
    retried: int = 0  # ops that slept a server retry_after hint and retried
    elapsed_s: float = 0.0
    throughput_ops: float = 0.0  # completed (admitted, successful) ops/s
    latency: dict = field(default_factory=dict)  # kind -> {p50,p90,p99,mean,count}
    digest: str = ""

    @property
    def shed_rate(self) -> float:
        """Fraction of the op stream that was ultimately shed."""
        total = self.ok + self.shed + self.errors
        return self.shed / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "config": self.config.to_dict(),
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "retried": self.retried,
            "shed_rate": round(self.shed_rate, 6),
            "elapsed_s": self.elapsed_s,
            "throughput_ops": self.throughput_ops,
            "latency": self.latency,
            "digest": self.digest,
        }

    def rows(self) -> list[dict]:
        """Per-op-kind table rows for ``repro.bench.report.format_table``."""
        out = []
        for kind in sorted(self.latency):
            stats = self.latency[kind]
            out.append({
                "op": kind,
                "count": stats["count"],
                "mean_ms": round(stats["mean"] * 1e3, 3),
                "p50_ms": round(stats["p50"] * 1e3, 3),
                "p90_ms": round(stats["p90"] * 1e3, 3),
                "p99_ms": round(stats["p99"] * 1e3, 3),
            })
        return out


def _payload(seed: int, length: int) -> bytes:
    """Deterministic pseudo-random object bytes (no ambient RNG)."""
    out = bytearray()
    state = (seed * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF
    while len(out) < length:
        state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        out += state.to_bytes(8, "little")
    return bytes(out[:length])


def _draw_ops(cfg: WorkloadConfig) -> list[tuple[str, str, int, int]]:
    """The deterministic op stream: ``(kind, key, seed, offset)`` rows.

    Drawn up front, before any I/O, so the stream is a pure function
    of the config no matter how execution interleaves.
    """
    rng = random.Random(cfg.seed ^ 0x0B7EC7)
    zipf = ZipfKeys(cfg.n_objects, cfg.zipf_theta)
    ops: list[tuple[str, str, int, int]] = []
    for i in range(cfg.n_ops):
        key = f"obj{zipf.draw(rng):05d}"
        roll = rng.random()
        op_seed = rng.getrandbits(31)
        if roll < cfg.read_fraction:
            ops.append(("get", key, op_seed, 0))
        elif roll < cfg.read_fraction + (1.0 - cfg.read_fraction) / 2:
            ops.append(("put", key, op_seed, 0))
        else:
            span = max(1, min(cfg.update_bytes, cfg.object_size))
            offset = rng.randrange(max(1, cfg.object_size - span + 1))
            ops.append(("update", key, op_seed, offset))
    return ops


async def run_workload(
    gateway: ObjectGateway,
    cfg: WorkloadConfig,
    *,
    clock: Clock,
    deterministic: bool,
) -> WorkloadReport:
    """Preload the keyspace, then drive the open-loop op stream.

    ``deterministic`` marks a virtual-clock run: timestamps and
    latencies then join the digest (byte-stable replay); on real
    clocks they are measurements and stay out of it.
    """
    for i in range(cfg.n_objects):
        await gateway.put(f"obj{i:05d}", _payload(cfg.seed ^ i, cfg.object_size))

    ops = _draw_ops(cfg)
    hists = {kind: Histogram(kind, base=1e-5) for kind in ("get", "put", "update")}
    records: list = [None] * len(ops)
    counts = {"ok": 0, "shed": 0, "error": 0, "retried": 0}

    async def one_op(i: int, kind: str, key: str, op_seed: int, offset: int) -> None:
        record: dict = {"i": i, "op": kind, "key": key}
        t0 = clock.time()
        retried = False
        while True:
            try:
                if kind == "get":
                    data = await gateway.get(key)
                    record["crc"] = zlib.crc32(data) & 0xFFFFFFFF
                elif kind == "put":
                    data = _payload(op_seed, cfg.object_size)
                    await gateway.put(key, data)
                    record["crc"] = zlib.crc32(data) & 0xFFFFFFFF
                else:
                    span = max(1, min(cfg.update_bytes, cfg.object_size))
                    await gateway.update(key, offset, _payload(op_seed, span))
                    record["offset"] = offset
            except Overloaded as exc:
                # Honour the server's backoff hint once: sleep out the
                # estimated queue-drain time, then re-offer the op.  A
                # hintless shed (no service-time data yet) or a second
                # rejection counts as shed for good.
                if exc.retry_after is not None and not retried:
                    retried = True
                    counts["retried"] += 1
                    record["retried"] = True
                    await clock.sleep(exc.retry_after)
                    continue
                record["outcome"] = "shed"
                counts["shed"] += 1
            except (GatewayError, ClusterError) as exc:
                record["outcome"] = type(exc).__name__
                counts["error"] += 1
            else:
                record["outcome"] = "ok"
                counts["ok"] += 1
                hists[kind].observe(clock.time() - t0)
            break
        if deterministic:
            record["t"] = round(t0, 9)
            record["lat"] = round(clock.time() - t0, 9)
        records[i] = record

    t_start = clock.time()
    interarrival = 1.0 / cfg.rate
    tasks = []
    for i, (kind, key, op_seed, offset) in enumerate(ops):
        tasks.append(asyncio.ensure_future(one_op(i, kind, key, op_seed, offset)))
        await clock.sleep(interarrival)
    await asyncio.gather(*tasks)
    elapsed = max(clock.time() - t_start, 1e-9)

    latency = {}
    for kind, hist in hists.items():
        if hist.total == 0:
            continue
        p50, p90, p99 = hist.quantiles(REPORT_QUANTILES)
        latency[kind] = {
            "count": hist.total, "mean": hist.mean,
            "p50": p50, "p90": p90, "p99": p99,
        }

    trace = {"config": cfg.to_dict(), "records": records}
    digest = hashlib.sha256(
        json.dumps(trace, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return WorkloadReport(
        mode="sim" if deterministic else "socket",
        config=cfg,
        ok=counts["ok"],
        shed=counts["shed"],
        errors=counts["error"],
        retried=counts["retried"],
        elapsed_s=elapsed,
        throughput_ops=counts["ok"] / elapsed,
        latency=latency,
        digest=digest,
    )


#: Geometry shared by both harnesses: k=3, p=5, 64-byte elements gives
#: 960-byte stripe payloads -- small objects pack several per stripe,
#: the default 1 KiB object spans stripe boundaries.
def _bench_code(k: int = 3, p: int = 5, element_size: int = 64):
    return make_code("liberation-optimal", k, p=p, element_size=element_size)


def _bench_policy(deadline: float | None) -> RetryPolicy:
    return RetryPolicy(
        attempts=2, timeout=1.0, backoff=0.005, max_backoff=0.05, deadline=deadline
    )


def run_sim_bench(
    cfg: WorkloadConfig,
    *,
    n_stripes: int = 96,
    service_latency: float = 0.0005,
    max_inflight: int = 16,
    max_queue: int = 64,
    queue_timeout: float | None = 0.25,
    cache_stripes: int = 16,
    deadline: float | None = 2.0,
) -> WorkloadReport:
    """The deterministic harness: virtual clock, in-memory transport.

    ``service_latency`` seconds are charged (virtually) to every node
    request via :class:`NetworkFaultPlan`, so queueing behaviour under
    a given arrival rate is modelled, not just measured as zero.
    """

    async def main() -> WorkloadReport:
        clock = VirtualClock()
        transport = MemoryTransport()
        cluster = LocalCluster(
            _bench_code(), n_stripes, transport=transport, clock=clock
        )
        async with cluster:
            for node in cluster.nodes:
                node.faults = NetworkFaultPlan(latency=service_latency)
            array = cluster.array(
                policy=_bench_policy(deadline), rng=random.Random(cfg.seed)
            )
            gateway = ObjectGateway(
                array,
                cache_stripes=cache_stripes,
                max_inflight=max_inflight,
                max_queue=max_queue,
                queue_timeout=queue_timeout,
            )
            return await run_workload(gateway, cfg, clock=clock, deterministic=True)

    return asyncio.run(main())


def run_socket_bench(
    cfg: WorkloadConfig,
    *,
    n_stripes: int = 96,
    max_inflight: int = 32,
    max_queue: int = 128,
    queue_timeout: float | None = 1.0,
    cache_stripes: int = 16,
    deadline: float | None = 5.0,
) -> WorkloadReport:
    """The measured harness: real loopback sockets, event-loop clock."""

    async def main() -> WorkloadReport:
        clock = RealClock()
        cluster = LocalCluster(_bench_code(), n_stripes)
        async with cluster:
            array = cluster.array(
                policy=_bench_policy(deadline), rng=random.Random(cfg.seed)
            )
            gateway = ObjectGateway(
                array,
                cache_stripes=cache_stripes,
                max_inflight=max_inflight,
                max_queue=max_queue,
                queue_timeout=queue_timeout,
            )
            return await run_workload(gateway, cfg, clock=clock, deterministic=False)

    return asyncio.run(main())
