"""Hot-stripe cache: LRU over stripe payloads, write-through invalidation.

The gateway's read path assembles objects from stripe payloads; under
a zipfian key distribution a handful of stripes serve most requests,
so caching whole payloads (the ``k * strip_bytes`` user span, parity
excluded) converts the hot tail of reads into memory copies.

Consistency is by *write-through invalidation*: every gateway write
goes straight to the cluster and then drops the touched stripe from
the cache, so the cache never holds bytes the cluster has superseded.
Population and invalidation both happen under the gateway's per-stripe
lock, which closes the read-stale-then-cache race (a payload read
before a write cannot be inserted after it).

Scrub repairs and rebuilds restore exactly the bytes that were
written, so they never invalidate -- a cached payload stays correct
across the whole self-healing vocabulary.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry

__all__ = ["StripeCache"]


class StripeCache:
    """Bounded LRU of ``stripe -> payload bytes``.

    ``capacity`` counts stripes, not bytes: every entry is exactly one
    stripe payload, so byte budgeting is ``capacity * stripe_bytes``.
    ``capacity == 0`` disables caching (every ``get`` misses, ``put``
    is a no-op), which the bench driver uses to measure the uncached
    baseline.
    """

    def __init__(self, capacity: int, *, metrics: MetricsRegistry | None = None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = int(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: OrderedDict[int, bytes] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, stripe: int) -> bool:
        return stripe in self._entries

    def get(self, stripe: int) -> bytes | None:
        """The cached payload (refreshing recency), or None on a miss."""
        payload = self._entries.get(stripe)
        if payload is None:
            self.metrics.counter("cache_misses").inc()
            return None
        self._entries.move_to_end(stripe)
        self.metrics.counter("cache_hits").inc()
        return payload

    def peek(self, stripe: int) -> bytes | None:
        """Like :meth:`get` but without touching counters or recency --
        for double-checked lookups that already counted their miss."""
        return self._entries.get(stripe)

    def put(self, stripe: int, payload: bytes) -> None:
        """Insert/refresh a payload, evicting the least-recent entry."""
        if self.capacity == 0:
            return
        self._entries[stripe] = payload
        self._entries.move_to_end(stripe)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.counter("cache_evictions").inc()

    def invalidate(self, stripe: int) -> None:
        """Drop one stripe (the write-through half of consistency)."""
        if self._entries.pop(stripe, None) is not None:
            self.metrics.counter("cache_invalidations").inc()

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"StripeCache({len(self._entries)}/{self.capacity} stripes)"
