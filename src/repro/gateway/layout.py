"""Object -> stripe layout: extents, packing, and the segment allocator.

The cluster's unit of durability is the stripe (``k * strip_bytes``
user bytes protected by P and Q), but object traffic arrives in
arbitrary sizes.  :class:`StripeAllocator` bridges the two with a
byte-granular segment allocator over the array's stripes:

* **Small objects pack.**  An allocation smaller than a stripe is
  placed best-fit into the smallest free segment that holds it,
  preferring *partially used* stripes over opening a fresh one -- so
  many small objects share a stripe and its parity overhead, instead
  of each burning ``2 * strip_bytes`` of parity for a few bytes of
  data.
* **Large objects span.**  An allocation larger than a stripe takes
  whole free stripes first (those writes hit the full-stripe encode
  path, no read-modify-write) and packs only its tail.
* **Extents never cross a stripe boundary**, so every extent maps to
  exactly one stripe's read-modify-write and the gateway can lock and
  cache at stripe granularity.

The allocator is deterministic: given the same call sequence it
returns the same extents (candidates are scanned in stripe order, ties
broken toward the lowest stripe and offset), which is what lets the
simulated workload driver replay byte-identically from a seed.

Free space is tracked as per-stripe free-segment lists, coalesced on
release.  Because allocations split across as many segments as needed,
*any* request no larger than the total free byte count succeeds --
fragmentation costs extents (seek-shaped overhead), never capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Extent", "ObjectMeta", "StripeAllocator", "NoSpaceError"]


class NoSpaceError(Exception):
    """The array has fewer free bytes than the allocation needs."""


@dataclass(frozen=True)
class Extent:
    """One contiguous run of object bytes inside a single stripe.

    ``start`` and ``length`` are byte offsets into the stripe's *data*
    payload (the ``k * strip_bytes`` user-visible span), never into
    parity.
    """

    stripe: int
    start: int
    length: int

    def to_dict(self) -> dict:
        return {"stripe": self.stripe, "start": self.start, "length": self.length}

    @classmethod
    def from_dict(cls, d: dict) -> "Extent":
        return cls(int(d["stripe"]), int(d["start"]), int(d["length"]))


@dataclass
class ObjectMeta:
    """Directory entry for one object.

    ``crc`` is the zlib CRC-32 of the full object contents, computed
    when the bytes enter the gateway and verified when they leave it --
    the end-to-end integrity check that rides *above* the cluster's
    per-frame and per-strip checksums.
    """

    name: str
    size: int
    crc: int
    extents: list[Extent]
    version: int = 1

    @property
    def stripes(self) -> list[int]:
        """Stripes this object touches, sorted, deduplicated."""
        return sorted({e.stripe for e in self.extents})

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "size": self.size,
            "crc": self.crc,
            "version": self.version,
            "extents": [e.to_dict() for e in self.extents],
        }


class StripeAllocator:
    """Deterministic best-fit segment allocator over stripe payloads."""

    def __init__(self, n_stripes: int, stripe_bytes: int) -> None:
        if n_stripes <= 0 or stripe_bytes <= 0:
            raise ValueError("allocator needs positive geometry")
        self.n_stripes = int(n_stripes)
        self.stripe_bytes = int(stripe_bytes)
        #: per-stripe sorted list of free ``(start, length)`` segments
        self._free: list[list[tuple[int, int]]] = [
            [(0, self.stripe_bytes)] for _ in range(self.n_stripes)
        ]
        self._free_bytes = self.n_stripes * self.stripe_bytes

    # -- bookkeeping views --------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self._free_bytes

    @property
    def capacity(self) -> int:
        return self.n_stripes * self.stripe_bytes

    def stripe_free(self, stripe: int) -> int:
        """Free bytes within one stripe."""
        return sum(length for _, length in self._free[stripe])

    # -- allocation ---------------------------------------------------------

    def allocate(self, size: int) -> list[Extent]:
        """Carve ``size`` bytes into extents (empty list for size 0).

        Raises :class:`NoSpaceError` -- leaving the free map untouched
        -- when fewer than ``size`` bytes are free in total.
        """
        if size < 0:
            raise ValueError("allocation size must be >= 0")
        if size == 0:
            return []
        if size > self._free_bytes:
            raise NoSpaceError(
                f"need {size} bytes, {self._free_bytes} free of {self.capacity}"
            )
        out: list[Extent] = []
        remaining = size
        while remaining:
            stripe, start, seg_len = self._pick(remaining)
            take = min(remaining, seg_len)
            self._carve(stripe, start, take)
            out.append(Extent(stripe, start, take))
            remaining -= take
        return out

    def _pick(self, remaining: int) -> tuple[int, int, int]:
        """Choose the next ``(stripe, start, length)`` segment to carve.

        Stripe-or-larger remainders prefer a fully free stripe (the
        full-stripe write path); sub-stripe remainders prefer the
        tightest fitting segment of a *partially used* stripe (packing).
        Either way the fallback is the largest segment anywhere, which
        splits the object across one more extent.
        """
        if remaining >= self.stripe_bytes:
            for stripe in range(self.n_stripes):
                segs = self._free[stripe]
                if len(segs) == 1 and segs[0] == (0, self.stripe_bytes):
                    return stripe, 0, self.stripe_bytes
            return self._largest()
        best: tuple[int, int, int, int] | None = None  # sort key + segment
        for stripe in range(self.n_stripes):
            fully_free = self._free[stripe] == [(0, self.stripe_bytes)]
            for seg_start, seg_len in self._free[stripe]:
                if seg_len < remaining:
                    continue
                key = (int(fully_free), seg_len, stripe, seg_start)
                if best is None or key < best:
                    best = key
        if best is not None:
            _fully_free, seg_len, stripe, seg_start = best
            return stripe, seg_start, seg_len
        return self._largest()

    def _largest(self) -> tuple[int, int, int]:
        stripe_best, start_best, len_best = -1, -1, 0
        for stripe in range(self.n_stripes):
            for seg_start, seg_len in self._free[stripe]:
                if seg_len > len_best:
                    stripe_best, start_best, len_best = stripe, seg_start, seg_len
        if len_best == 0:  # pragma: no cover - guarded by the free_bytes check
            raise NoSpaceError("no free segment available")
        return stripe_best, start_best, len_best

    def _carve(self, stripe: int, start: int, length: int) -> None:
        segs = self._free[stripe]
        for i, (seg_start, seg_len) in enumerate(segs):
            if seg_start <= start and start + length <= seg_start + seg_len:
                del segs[i]
                if seg_start < start:
                    segs.insert(i, (seg_start, start - seg_start))
                    i += 1
                tail = (seg_start + seg_len) - (start + length)
                if tail:
                    segs.insert(i, (start + length, tail))
                self._free_bytes -= length
                return
        raise ValueError(
            f"stripe {stripe}: [{start}, {start + length}) is not free"
        )

    # -- release / reserve --------------------------------------------------

    def release(self, extents: list[Extent]) -> None:
        """Return extents to the free map (coalescing neighbours)."""
        for ext in extents:
            segs = self._free[ext.stripe]
            segs.append((ext.start, ext.length))
            segs.sort()
            merged: list[tuple[int, int]] = []
            for seg_start, seg_len in segs:
                if merged and merged[-1][0] + merged[-1][1] == seg_start:
                    merged[-1] = (merged[-1][0], merged[-1][1] + seg_len)
                else:
                    merged.append((seg_start, seg_len))
            self._free[ext.stripe] = merged
            self._free_bytes += ext.length

    def reserve(self, extents: list[Extent]) -> None:
        """Claim specific extents (rebuilding a directory, undo paths).

        Every extent must currently be free; raises ``ValueError``
        otherwise, with nothing claimed.
        """
        claimed: list[Extent] = []
        try:
            for ext in extents:
                self._carve(ext.stripe, ext.start, ext.length)
                claimed.append(ext)
        except ValueError:
            self.release(claimed)
            raise

    def __repr__(self) -> str:
        return (
            f"StripeAllocator(stripes={self.n_stripes}, "
            f"stripe_bytes={self.stripe_bytes}, free={self._free_bytes})"
        )
