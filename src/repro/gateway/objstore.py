"""The object gateway: a keyed object API in front of :class:`ClusterArray`.

Production traffic speaks objects -- named blobs, read whole and
updated at arbitrary offsets -- while the cluster speaks stripes.
:class:`ObjectGateway` is the translation layer:

* **Layout.**  An in-memory directory maps each name to an
  :class:`~repro.gateway.layout.ObjectMeta` (size, CRC-32, extents);
  the :class:`~repro.gateway.layout.StripeAllocator` packs small
  objects together in shared stripes and spans large ones across
  whole stripes (full-stripe encode path for the bulk, packed tail).
* **Writes are shadowed.**  ``put`` over an existing name allocates the
  new extents *first*, writes them, and only then swaps the directory
  entry and frees the old extents -- a failed write leaves the old
  object intact and readable.
* **Small updates are RMW.**  ``update`` rewrites only the byte range
  it touches; sub-stripe spans ride the cluster's existing
  read-modify-write partial-write path.  Per-stripe asyncio locks
  serialise writers of a shared stripe, so two packed neighbours can
  be updated concurrently without RMW lost-updates.
* **End-to-end integrity.**  The CRC-32 of the full object is computed
  when bytes enter and re-verified when they leave
  (:class:`IntegrityError` on mismatch) -- above and independent of
  the wire-frame CRCs and the scrubber's per-strip sidecars, closing
  the gap both leave (a correctly-stored wrong byte, e.g. a layout
  bug, is caught here).
* **Backpressure.**  Every data op passes the
  :class:`~repro.gateway.admission.AdmissionController`; overload
  sheds with :class:`~repro.gateway.admission.Overloaded` rather than
  queueing without bound, and the underlying
  :class:`~repro.cluster.client.RetryPolicy` ``deadline`` caps how
  long an admitted request can hold its slot in retries.

Latency histograms (``gateway_<op>_latency_s``, queue wait included)
and tracer spans (``gateway.<op>``) land in the array's metrics
registry and tracer, so the observability stack covers the object
path with no extra wiring.
"""

from __future__ import annotations

import asyncio
import contextlib
import zlib
from dataclasses import dataclass

from repro.cluster.client import ClusterArray
from repro.gateway.admission import AdmissionController, Overloaded
from repro.gateway.cache import StripeCache
from repro.gateway.layout import Extent, NoSpaceError, ObjectMeta, StripeAllocator

__all__ = [
    "GatewayError",
    "ObjectNotFoundError",
    "IntegrityError",
    "ObjectStat",
    "ObjectGateway",
    "NoSpaceError",
    "Overloaded",
]


class GatewayError(Exception):
    """Base class for object-gateway failures."""


class ObjectNotFoundError(GatewayError, KeyError):
    """No object with that name exists."""


class IntegrityError(GatewayError):
    """Assembled object bytes fail their end-to-end CRC."""


@dataclass(frozen=True)
class ObjectStat:
    """Directory view of one object (what ``stat``/``list`` return)."""

    name: str
    size: int
    crc: int
    version: int
    n_extents: int
    stripes: tuple[int, ...]


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class ObjectGateway:
    """Asyncio object store over a :class:`ClusterArray`."""

    def __init__(
        self,
        array: ClusterArray,
        *,
        cache_stripes: int = 16,
        max_inflight: int = 32,
        max_queue: int = 128,
        queue_timeout: float | None = None,
    ) -> None:
        self.array = array
        self.metrics = array.metrics
        self.tracer = array.tracer
        self.clock = array.clock
        self.stripe_bytes = array.stripe_data_bytes
        self.index: dict[str, ObjectMeta] = {}
        self.allocator = StripeAllocator(array.n_stripes, self.stripe_bytes)
        self.cache = StripeCache(cache_stripes, metrics=self.metrics)
        self.admission = AdmissionController(
            max_inflight,
            max_queue,
            queue_timeout=queue_timeout,
            clock=self.clock,
            metrics=self.metrics,
        )
        self._name_locks: dict[str, asyncio.Lock] = {}
        self._stripe_locks: dict[int, asyncio.Lock] = {}
        self._version = 0

    # -- locking ------------------------------------------------------------

    def _name_lock(self, name: str) -> asyncio.Lock:
        lock = self._name_locks.get(name)
        if lock is None:
            lock = self._name_locks[name] = asyncio.Lock()
        return lock

    def _stripe_lock(self, stripe: int) -> asyncio.Lock:
        lock = self._stripe_locks.get(stripe)
        if lock is None:
            lock = self._stripe_locks[stripe] = asyncio.Lock()
        return lock

    @contextlib.asynccontextmanager
    async def _admitted(self, op: str):
        """Admission + latency histogram + span around one data op.

        The latency timer starts *before* admission, so queue wait is
        part of what the histograms (and the overload test's p99
        bound) see.  Shed requests never reach the timer's observe.
        """
        t0 = self.clock.time()
        async with self.admission.slot():
            if self.tracer is None:
                yield
            else:
                with self.tracer.span(f"gateway.{op}"):
                    yield
        self.metrics.histogram(f"gateway_{op}_latency_s").observe(
            self.clock.time() - t0
        )
        self.metrics.counter(f"gateway_{op}_ops").inc()

    # -- extent I/O ---------------------------------------------------------

    async def _stripe_payload(self, stripe: int) -> bytes:
        """One stripe's user payload, through the hot-stripe cache."""
        hit = self.cache.get(stripe)
        if hit is not None:
            return hit
        async with self._stripe_lock(stripe):
            hit = self.cache.peek(stripe)  # filled while we waited?
            if hit is not None:
                return hit
            payload = await self.array.read(
                stripe * self.stripe_bytes, self.stripe_bytes
            )
            self.cache.put(stripe, payload)
            return payload

    async def _read_extents(self, extents: list[Extent]) -> bytes:
        parts = []
        for ext in extents:
            payload = await self._stripe_payload(ext.stripe)
            parts.append(payload[ext.start : ext.start + ext.length])
        return b"".join(parts)

    async def _write_extent(self, ext: Extent, chunk: bytes) -> None:
        """Write one extent's bytes: through the stripe lock (RMW on a
        shared stripe must not interleave) with write-through cache
        invalidation."""
        async with self._stripe_lock(ext.stripe):
            await self.array.write(
                ext.stripe * self.stripe_bytes + ext.start, chunk
            )
            self.cache.invalidate(ext.stripe)

    async def _write_object_bytes(self, extents: list[Extent], data: bytes) -> None:
        pos = 0
        for ext in extents:
            await self._write_extent(ext, data[pos : pos + ext.length])
            pos += ext.length

    # -- the object API -----------------------------------------------------

    async def put(self, name: str, data: bytes) -> ObjectStat:
        """Create or replace ``name`` with ``data`` (whole-object write).

        Replacement is shadow-style: new extents are written before the
        directory swaps and the old extents free, so a mid-write
        failure leaves the previous version fully readable.
        """
        async with self._admitted("put"), self._name_lock(name):
            old = self.index.get(name)
            extents = self.allocator.allocate(len(data))
            try:
                await self._write_object_bytes(extents, data)
            except BaseException:
                self.allocator.release(extents)
                raise
            self._version += 1
            self.index[name] = ObjectMeta(
                name=name,
                size=len(data),
                crc=_crc(data),
                extents=extents,
                version=self._version,
            )
            if old is not None:
                self.allocator.release(old.extents)
            self.metrics.counter("gateway_bytes_in").inc(len(data))
            return self._stat(self.index[name])

    async def get(self, name: str) -> bytes:
        """The full object, CRC-verified end to end."""
        async with self._admitted("get"), self._name_lock(name):
            meta = self._meta(name)
            data = await self._read_extents(meta.extents)
            if _crc(data) != meta.crc:
                self.metrics.counter("gateway_integrity_errors").inc()
                raise IntegrityError(
                    f"object {name!r}: CRC mismatch "
                    f"(stored {meta.crc:#010x}, read {_crc(data):#010x})"
                )
            self.metrics.counter("gateway_bytes_out").inc(len(data))
            return data

    async def update(self, name: str, offset: int, data: bytes) -> ObjectStat:
        """Overwrite ``data`` at ``offset`` inside an existing object.

        Only the touched extents are rewritten (sub-stripe spans use
        the cluster's RMW partial-write path); the object keeps its
        size.  The CRC is recomputed over the patched contents -- the
        untouched remainder is read back through the hot-stripe cache,
        which the zipfian workload keeps warm for exactly the objects
        that are updated often.
        """
        if offset < 0:
            raise ValueError("update offset must be >= 0")
        async with self._admitted("update"), self._name_lock(name):
            meta = self._meta(name)
            if offset + len(data) > meta.size:
                raise ValueError(
                    f"update [{offset}, {offset + len(data)}) exceeds object "
                    f"size {meta.size} (use put to grow an object)"
                )
            if not data:
                return self._stat(meta)
            current = await self._read_extents(meta.extents)
            blob = bytearray(current)
            blob[offset : offset + len(data)] = data
            # Rewrite only the extents the span touches.
            pos = 0
            for ext in meta.extents:
                lo = max(pos, offset)
                hi = min(pos + ext.length, offset + len(data))
                if lo < hi:
                    await self._write_extent(
                        Extent(ext.stripe, ext.start + (lo - pos), hi - lo),
                        bytes(blob[lo:hi]),
                    )
                pos += ext.length
            self._version += 1
            meta.crc = _crc(bytes(blob))
            meta.version = self._version
            self.metrics.counter("gateway_bytes_in").inc(len(data))
            self.metrics.counter("gateway_rmw_updates").inc()
            return self._stat(meta)

    async def delete(self, name: str) -> None:
        """Remove an object and free its extents."""
        async with self._admitted("delete"), self._name_lock(name):
            meta = self._meta(name)
            del self.index[name]
            self.allocator.release(meta.extents)
        # Name locks are deliberately kept after delete: a waiter that
        # queued on the old lock object must still exclude later ops on
        # the same name.  The map is bounded by the distinct-name count.

    async def stat(self, name: str) -> ObjectStat:
        """Directory metadata (no data I/O, not admission-gated)."""
        return self._stat(self._meta(name))

    async def list_objects(self) -> list[ObjectStat]:
        """All objects, sorted by name (no data I/O)."""
        return [self._stat(self.index[name]) for name in sorted(self.index)]

    # -- internals ----------------------------------------------------------

    def _meta(self, name: str) -> ObjectMeta:
        meta = self.index.get(name)
        if meta is None:
            raise ObjectNotFoundError(name)
        return meta

    def _stat(self, meta: ObjectMeta) -> ObjectStat:
        return ObjectStat(
            name=meta.name,
            size=meta.size,
            crc=meta.crc,
            version=meta.version,
            n_extents=len(meta.extents),
            stripes=tuple(meta.stripes),
        )

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_bytes

    def stats(self) -> dict:
        """Gateway-level snapshot: directory + space + admission.

        Over an elastic array the snapshot also carries the membership
        epoch the gateway is routing by -- every extent I/O resolves
        (stripe, column) through the array's placement map, so the
        epoch pins which routing generation served the numbers.
        """
        out = {
            "objects": len(self.index),
            "bytes_stored": sum(m.size for m in self.index.values()),
            "free_bytes": self.allocator.free_bytes,
            "capacity": self.allocator.capacity,
            "cached_stripes": len(self.cache),
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
        }
        membership = getattr(self.array, "membership", None)
        if membership is not None:
            out["epoch"] = membership.epoch
        return out
