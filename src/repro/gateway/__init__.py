"""repro.gateway: object-store front-end over the RAID-6 cluster.

The package that gives the cluster a production-shaped surface: a
keyed object API (:class:`ObjectGateway`) with partial-stripe packing
(:class:`StripeAllocator`), a hot-stripe LRU (:class:`StripeCache`),
admission control with typed shedding (:class:`AdmissionController`,
:class:`Overloaded`), and a measured-load workload harness
(:mod:`repro.gateway.bench`) that runs identically under the sim seams
and real sockets.
"""

from repro.gateway.admission import AdmissionController, Overloaded
from repro.gateway.bench import (
    WorkloadConfig,
    WorkloadReport,
    ZipfKeys,
    run_sim_bench,
    run_socket_bench,
    run_workload,
)
from repro.gateway.cache import StripeCache
from repro.gateway.layout import Extent, NoSpaceError, ObjectMeta, StripeAllocator
from repro.gateway.objstore import (
    GatewayError,
    IntegrityError,
    ObjectGateway,
    ObjectNotFoundError,
    ObjectStat,
)

__all__ = [
    "AdmissionController",
    "Overloaded",
    "WorkloadConfig",
    "WorkloadReport",
    "ZipfKeys",
    "run_sim_bench",
    "run_socket_bench",
    "run_workload",
    "StripeCache",
    "Extent",
    "NoSpaceError",
    "ObjectMeta",
    "StripeAllocator",
    "GatewayError",
    "IntegrityError",
    "ObjectGateway",
    "ObjectNotFoundError",
    "ObjectStat",
]
