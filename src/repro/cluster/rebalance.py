"""Background stripe migration: drain/fill nodes under a throttle.

The rebalancer converges :attr:`ElasticArray.locations` (where stripes
*are*) toward :class:`~repro.cluster.placement.PlacementMap` (where the
current membership epoch says they *should* be).  One stripe's
migration is a small two-phase transaction per moving column, reusing
the node's intent log and idempotent ``commit`` verb:

1. **Assemble** -- read the stripe through the decode path (dead or
   faulty sources are reconstructed like any degraded read) and
   re-encode parity, so the migrated image is internally consistent
   even when the source copy was stale.
2. **Stage** -- ``migrate-in`` logs the strip image as an intent on the
   target; the reply's CRC-32 must match the locally computed one, so
   a frame mangled in flight dies here, before anything is durable.
3. **Commit** -- the target applies + retires the intent (the existing
   2PC crash points cover this step), then a ``scrub-read`` proves the
   landed copy's sidecar matches the bytes we sent.
4. **Flip** -- ``locations[stripe]`` switches to the new holders and
   the epoch bumps: the atomic commit point.  A crash anywhere before
   this leaves the sources authoritative (all-old); after it, the
   verified targets serve (all-new).  Never split, never lost.
5. **Verify + release** -- the stripe is re-read through the *new*
   route and compared byte-for-byte (the decode-path check), then each
   source strip is released, fenced by the CRC the source currently
   advertises.

Transaction ids are deterministic -- ``mig-<stripe>-<crc>`` --
so a coordinator that crashes and re-runs finds its own half-done work
(already-staged intents restage idempotently, already-committed strips
answer ``committed``) instead of forking a second copy; the payload
CRC inside the id means changed bytes get a fresh transaction.

Migration traffic is a guest, not a tenant: every staged payload passes
through a :class:`TokenBucket` (injectable clock, so throttling works
in virtual time), and an optional ``foreground_gate`` callable pauses
the migrator entirely while foreground pressure is high (e.g. the
gateway's queue depth).
"""

from __future__ import annotations

import asyncio
import contextlib
import zlib

import numpy as np

from repro.cluster.client import ClusterArray, ClusterError
from repro.cluster.elastic import ElasticArray
from repro.cluster.membership import MembershipError, NodeState
from repro.cluster.txn import TxnCrashPoint
from repro.sim.clock import Clock

__all__ = ["RebalanceError", "TokenBucket", "Rebalancer"]


class RebalanceError(ClusterError):
    """A migration could not complete (verification or protocol failure)."""


class TokenBucket:
    """Debt-model token bucket on an injectable clock.

    ``take(n)`` always succeeds immediately in accounting terms but
    sleeps long enough afterwards to pay any overdraft back at ``rate``
    tokens/second, so a single oversized strip cannot starve forever
    and sustained throughput converges to ``rate`` exactly.
    """

    def __init__(self, rate: float, burst: float, clock: Clock) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._last = clock.time()

    def _refill(self) -> None:
        now = self.clock.time()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    async def take(self, n: float) -> float:
        """Consume ``n`` tokens; returns the seconds slept paying debt."""
        self._refill()
        self._tokens -= float(n)
        if self._tokens >= 0:
            return 0.0
        delay = -self._tokens / self.rate
        await self.clock.sleep(delay)
        self._refill()
        return delay


class Rebalancer:
    """Throttled stripe migrator for one :class:`ElasticArray`.

    Drive it with :meth:`run_until_converged` (tests, drains) or the
    background loop (:meth:`start` / :meth:`stop`).  ``crash`` is a
    :class:`~repro.cluster.txn.TxnCrashPoint` counting this
    coordinator's protocol RPCs, so tests sweep coordinator-crash
    positions exactly like the 2PC writer's sweep.
    """

    def __init__(
        self,
        array: ElasticArray,
        *,
        rate_bytes: float | None = None,
        burst_bytes: float | None = None,
        foreground_gate=None,
        gate_backoff: float = 0.05,
        verify_reads: bool = True,
        crash: TxnCrashPoint | None = None,
    ) -> None:
        self.array = array
        self.clock = array.clock
        self.throttle = (
            None
            if rate_bytes is None
            else TokenBucket(
                rate_bytes,
                rate_bytes if burst_bytes is None else burst_bytes,
                array.clock,
            )
        )
        #: callable -> truthy while foreground traffic should win;
        #: checked between stripes, never mid-migration
        self.foreground_gate = foreground_gate
        self.gate_backoff = float(gate_backoff)
        self.verify_reads = bool(verify_reads)
        self.crash = crash if crash is not None else TxnCrashPoint()
        self._task: asyncio.Task | None = None

    # -- protocol plumbing ---------------------------------------------------

    async def _rpc(
        self, node_id: str, verb: str, header: dict, payload: bytes = b""
    ) -> dict:
        self.crash.step()
        reply, _ = await self.array.client_for_node(node_id).request(
            verb, header, payload
        )
        if reply.get("status") != "ok":
            raise RebalanceError(
                f"{verb} on {node_id}: {reply.get('error')}: {reply.get('detail')}"
            )
        return reply

    # -- planning ------------------------------------------------------------

    def targets(self, stripe: int) -> tuple[str, ...]:
        return self.array.placement.nodes_for(stripe)

    def misplaced(self) -> list[int]:
        """Stripes whose current holders differ from placement."""
        return [
            s
            for s in range(self.array.n_stripes)
            if self.array.holders(s) != self.targets(s)
        ]

    def strips_on(self, node_id: str) -> int:
        """How many strips currently route to ``node_id`` (drain progress)."""
        return sum(
            1
            for s in range(self.array.n_stripes)
            if node_id in self.array.holders(s)
        )

    # -- one stripe ----------------------------------------------------------

    async def _stage(
        self, node_id: str, stripe: int, payload, crc: int
    ) -> tuple[str, bool]:
        """Stage one strip image on its target; returns ``(txn, landed)``.

        Walks a deterministic salt sequence past transactions a prior
        recovery pass aborted; ``landed`` means an earlier run already
        committed these exact bytes, so commit can be skipped.
        """
        base = f"mig-{stripe}-{crc:08x}"
        for salt in range(8):
            txn = base if salt == 0 else f"{base}-r{salt}"
            reply = await self._rpc(
                node_id, "migrate-in", {"txn": txn, "stripe": stripe}, payload
            )
            state = reply.get("state")
            if state == "pending":
                if int(reply.get("crc", -1)) == crc:
                    return txn, False
                # Bytes mangled between us and the intent log: drop the
                # poisoned intent and restage under the next salt.
                self.array.metrics.counter("migration_stage_corrupt").inc()
                await self._rpc(node_id, "abort", {"txn": txn, "stripe": stripe})
                continue
            if state == "committed" and int(reply.get("crc", -1)) == crc:
                return txn, True
            # aborted tombstone or a committed different image: next salt
        raise RebalanceError(
            f"stripe {stripe}: could not stage on {node_id} (salt budget spent)"
        )

    async def migrate_stripe(self, stripe: int) -> bool:
        """Migrate one stripe to its placement targets; True if it moved.

        Holds the stripe lock end to end, so foreground writes order
        entirely before or after the migration and the staged image can
        never go stale mid-protocol.
        """
        array = self.array
        async with array.stripe_lock(stripe):
            current = array.holders(stripe)
            target = self.targets(stripe)
            if current == target:
                return False
            moving = [c for c in range(array.code.n_cols) if current[c] != target[c]]
            cm = (
                contextlib.nullcontext()
                if array.tracer is None
                else array.tracer.span(
                    "rebalance.migrate", stripe=stripe, strips=len(moving)
                )
            )
            # Readers of this stripe wait on the lock from here on: a
            # target that is *also* a current holder (at another
            # column) gets its disk slot overwritten at commit, before
            # the flip -- a reader racing that window would fetch the
            # wrong column's bytes.
            array.migrating.add(stripe)
            try:
                with cm:
                    await self._migrate_locked(stripe, current, target, moving)
            finally:
                array.migrating.discard(stripe)
            return True

    async def _migrate_locked(
        self,
        stripe: int,
        current: tuple[str, ...],
        target: tuple[str, ...],
        moving: list[int],
    ) -> None:
        array = self.array
        code = array.code

        # 1. assemble through the decode path, re-encode for parity
        # consistency (read_stripe leaves unfetched parity columns
        # zero).  The base-class read bypasses the elastic override's
        # migration gate -- we hold this stripe's lock ourselves.
        # Columns on the dirty list answered their last write stale, so
        # they join the erasure set: the decode recovers their fresh
        # strips instead of copying old bytes into the new placement.
        stale = set(array.dirty_stripes.get(stripe, ()))
        if stale:
            buf = code.alloc_stripe()
            missing = await array._gather_columns(
                stripe, list(range(code.n_cols)), buf
            )
            erasures = sorted(set(missing) | stale)
            if len(erasures) > 2:
                raise RebalanceError(
                    f"stripe {stripe}: columns {erasures} lost or stale; "
                    "RAID-6 tolerates 2"
                )
            for col in erasures:
                buf[col] = 0
            code.decode(buf, erasures)
            array.metrics.counter("decodes").inc()
        else:
            buf = await ClusterArray.read_stripe(array, stripe)
        code.encode(buf)

        payloads: dict[int, bytes] = {}
        crcs: dict[int, int] = {}
        for col in moving:
            payload = bytes(np.ascontiguousarray(buf[col]).data)
            payloads[col] = payload
            crcs[col] = zlib.crc32(payload)

        # throttle on the bytes about to move (before they move, so a
        # drained bucket delays the copy, not the release)
        if self.throttle is not None:
            await self.throttle.take(sum(len(p) for p in payloads.values()))

        # 2. stage on every target, end-to-end CRC checked
        txns: dict[int, str] = {}
        landed: dict[int, bool] = {}
        for col in moving:
            txns[col], landed[col] = await self._stage(
                target[col], stripe, payloads[col], crcs[col]
            )

        # 3. commit + sidecar verification on every target
        for col in moving:
            if not landed[col]:
                reply = await self._rpc(
                    target[col], "commit", {"txn": txns[col], "stripe": stripe}
                )
                if reply.get("state") != "committed":
                    raise RebalanceError(
                        f"stripe {stripe}: commit on {target[col]} answered "
                        f"{reply.get('state')!r}"
                    )
            probe = await self._rpc(target[col], "scrub-read", {"stripe": stripe})
            if not probe.get("match") or int(probe.get("crc_stored", -1)) != crcs[col]:
                raise RebalanceError(
                    f"stripe {stripe}: landed copy on {target[col]} failed "
                    f"CRC verification"
                )

        # 4. flip: the atomic commit point of the whole migration
        array.locations[stripe] = tuple(target)
        # Every column just landed a freshly encoded strip, so any
        # stale-column marks from degraded writes are now satisfied.
        array.dirty_stripes.pop(stripe, None)
        array.membership.bump()
        array.metrics.counter("stripes_migrated").inc()
        array.metrics.counter("migration_bytes").inc(
            sum(len(p) for p in payloads.values())
        )

        # 5. decode-path verification through the new route, then release
        if self.verify_reads:
            check = await ClusterArray.read_stripe(array, stripe)
            if bytes(array._stripe_payload(check)) != bytes(
                array._stripe_payload(buf)
            ):
                # The new copies verified strip-by-strip but the stripe
                # does not read back: revert routing and fail loudly.
                array.locations[stripe] = tuple(current)
                array.membership.bump()
                raise RebalanceError(
                    f"stripe {stripe}: post-flip read-back diverged"
                )
        await self._release_sources(stripe, current, target, moving)

    async def _release_sources(
        self,
        stripe: int,
        current: tuple[str, ...],
        target: tuple[str, ...],
        moving: list[int],
    ) -> None:
        """Release the old copies, fenced by each source's own CRC.

        Best effort by design: an unreachable or dead source keeps its
        (now unrouted) strip, which is garbage, not a hazard -- the
        flip already happened.  A source that still ends up a holder of
        this stripe on another column (pool smaller than 2 * n_cols)
        is skipped.
        """
        array = self.array
        still_holding = set(target)
        for col in moving:
            node_id = current[col]
            if node_id in still_holding:
                continue
            entry = array.membership.nodes.get(node_id)
            if entry is None or entry.state not in (
                NodeState.LIVE, NodeState.DRAINING
            ):
                continue
            try:
                probe = await self._rpc(node_id, "scrub-read", {"stripe": stripe})
                await self._rpc(
                    node_id,
                    "release",
                    {"stripe": stripe, "crc": int(probe["crc_stored"])},
                )
            except ClusterError:
                continue

    # -- convergence ---------------------------------------------------------

    async def _yield_to_foreground(self) -> None:
        while self.foreground_gate is not None and self.foreground_gate():
            self.array.metrics.counter("rebalance_yields").inc()
            await self.clock.sleep(self.gate_backoff)

    async def run_until_converged(self, *, max_rounds: int = 16) -> int:
        """Migrate until no stripe is misplaced; returns stripes moved.

        Per-stripe failures (an unreachable target, a verification
        refusal) are retried on later rounds; a full round with zero
        progress and outstanding work raises :class:`RebalanceError`
        so callers never spin silently.
        """
        array = self.array
        moved = 0
        for _ in range(max_rounds):
            todo = self.misplaced()
            array.metrics.gauge("rebalance_misplaced").set(len(todo))
            if not todo:
                return moved
            progressed = False
            failures: list[str] = []
            for stripe in todo:
                await self._yield_to_foreground()
                try:
                    if await self.migrate_stripe(stripe):
                        moved += 1
                        progressed = True
                except ClusterError as exc:
                    failures.append(f"stripe {stripe}: {exc}")
            if not progressed:
                raise RebalanceError(
                    f"rebalance stalled with {len(todo)} stripes misplaced: "
                    + "; ".join(failures[:3])
                )
        remaining = self.misplaced()
        array.metrics.gauge("rebalance_misplaced").set(len(remaining))
        if remaining:
            raise RebalanceError(
                f"rebalance did not converge in {max_rounds} rounds; "
                f"{len(remaining)} stripes still misplaced"
            )
        return moved

    async def drain(self, node_id: str, *, remove: bool = True) -> int:
        """Gracefully empty one node; returns the stripes migrated.

        Marks the node DRAINING (it keeps serving reads and strip
        writes throughout), refuses to start if the remaining LIVE
        pool could not host every column, converges, proves the node
        holds no routed strip, and finally tombstones it.
        """
        array = self.array
        table = array.membership
        pool = set(table.placement_pool())
        if len(pool - {node_id}) < array.code.n_cols:
            raise MembershipError(
                f"draining {node_id!r} would leave "
                f"{len(pool - {node_id})} live nodes < {array.code.n_cols} columns"
            )
        if table.state_of(node_id) is not NodeState.DRAINING:
            table.drain(node_id)
        total = self.strips_on(node_id)
        array.metrics.gauge("drain_remaining").set(total)
        moved = await self.run_until_converged()
        left = self.strips_on(node_id)
        array.metrics.gauge("drain_remaining").set(left)
        if left:
            raise RebalanceError(
                f"drain of {node_id!r} finished rebalance but {left} strips "
                f"still route there"
            )
        if remove:
            table.remove(node_id)
        return moved

    async def recover(self) -> int:
        """Abort orphaned migration intents left by crashed coordinators.

        Safe because a re-run migration walks a salt sequence past
        aborted transaction ids; returns the intents aborted.  Strips
        whose migration had already committed are untouched -- the
        deterministic txn id lets the re-run recognise them as landed.
        """
        array = self.array
        aborted = 0
        for node_id in array.membership.serving():
            try:
                reply, _ = await array.client_for_node(node_id).request("intents")
            except ClusterError:
                continue
            for rec in reply.get("txns", ()):
                txn = str(rec["txn"])
                if not txn.startswith("mig-"):
                    continue
                try:
                    await self._rpc(
                        node_id, "abort", {"txn": txn, "stripe": rec.get("stripe")}
                    )
                    aborted += 1
                except ClusterError:
                    continue
        if aborted:
            array.metrics.counter("migration_intents_aborted").inc(aborted)
        return aborted

    # -- background driving --------------------------------------------------

    def start(self, *, interval: float = 1.0) -> asyncio.Task:
        """Converge-on-change loop: poll for misplacement, migrate, sleep."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("rebalance loop already running")

        async def loop() -> None:
            while True:
                try:
                    if self.misplaced():
                        await self.run_until_converged()
                except (ClusterError, MembershipError):
                    pass  # transient (mid-churn); next round retries
                await self.clock.sleep(interval)

        self._task = asyncio.get_running_loop().create_task(loop())
        return self._task

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
