"""Background rebuild of a lost column onto a replacement node.

The distributed analogue of :meth:`repro.array.raid6.RAID6Array.rebuild`:
stripes are streamed in bounded windows (``repro.parallel.iter_batches``)
through a :class:`~repro.parallel.BatchCoder` -- the same batch decode
path the throughput benchmarks exercise, optionally multi-threaded --
and the reconstructed strips are pushed to a fresh node.  Because the
scheduler is an ordinary asyncio task, the array keeps serving reads
and writes while the rebuild drains in the background; progress is
visible live through the ``rebuild_*`` counters.

A rebuild tolerates a *second* concurrent loss: whatever columns turn
out to be unreachable while fetching a window are simply added to that
window's erasure pattern, up to the code's two-column budget.
"""

from __future__ import annotations

import asyncio

from repro.cluster.client import (
    ClusterArray,
    ClusterDegradedError,
    NodeUnavailableError,
    RemoteDiskError,
)
from repro.parallel import BatchCoder, alloc_batch, iter_batches

__all__ = ["RebuildScheduler"]


class RebuildScheduler:
    """Streams a column rebuild through batch decodes.

    ``batch_stripes`` bounds memory (one window of stripe buffers);
    ``workers`` is handed to :class:`~repro.parallel.BatchCoder`, so a
    window's decodes can spread across threads while the event loop
    keeps serving traffic.
    """

    def __init__(
        self, array: ClusterArray, *, batch_stripes: int = 16, workers: int = 1
    ) -> None:
        self.array = array
        self.batch_stripes = int(batch_stripes)
        self.coder = BatchCoder(array.code, workers=workers)
        self._task: asyncio.Task | None = None

    # -- progress ----------------------------------------------------------

    @property
    def progress(self) -> tuple[int, int]:
        """``(stripes_done, stripes_total)`` of the current/last rebuild."""
        m = self.array.metrics
        return m.get("rebuild_stripes_done"), m.get("rebuild_stripes_total")

    # -- background driving ------------------------------------------------

    def start(self, column: int, address: tuple[str, int]) -> asyncio.Task:
        """Launch ``rebuild_column`` as a background task."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("a rebuild is already running")
        self._task = asyncio.get_running_loop().create_task(
            self.rebuild_column(column, address)
        )
        return self._task

    async def wait(self) -> int:
        """Await the background rebuild; returns stripes rebuilt."""
        if self._task is None:
            raise RuntimeError("no rebuild was started")
        return await self._task

    # -- the rebuild proper ------------------------------------------------

    async def rebuild_column(
        self,
        column: int,
        address: tuple[str, int] | None = None,
        *,
        target_provider=None,
    ) -> int:
        """Reconstruct ``column`` onto a replacement node.

        The target is either a fixed ``address`` or, when ``address``
        is None, whatever the async ``target_provider(column)``
        callable picks at rebuild time -- the hook that lets healing
        choose placement-driven targets (a spare pool, the membership
        table's join queue) instead of a hard-wired spare.  The
        replacement node must already be listening (a blank
        :class:`~repro.cluster.node.StripNode` of the same geometry).
        On success the array's column is repointed at it, restoring
        full redundancy.  Returns the number of stripes rebuilt.

        Elastic arrays do not use column rebuilds at all: a dead node
        there is healed by the rebalancer re-placing its strips
        (decode on read, placement-chosen targets per stripe).
        """
        array = self.array
        code = array.code
        if address is None:
            if target_provider is None:
                raise ValueError("need an address or a target_provider")
            address = await target_provider(column)
        if not 0 <= column < code.n_cols:
            raise ValueError(f"column {column} out of range [0, {code.n_cols})")
        metrics = array.metrics
        metrics.counter("rebuild_stripes_total").inc(array.n_stripes)
        survivors = [c for c in range(code.n_cols) if c != column]
        # Share the array's transport/clock seam so rebuilds run (and
        # replay deterministically) under simulation too.
        replacement = array._make_client(address)
        done = 0
        for start, stop in iter_batches(array.n_stripes, self.batch_stripes):
            batch = alloc_batch(code, stop - start)

            async def fetch(i: int, col: int) -> int | None:
                try:
                    batch[i, col] = await array._fetch_strip(col, start + i)
                    return None
                except (NodeUnavailableError, RemoteDiskError):
                    return col

            results = await asyncio.gather(
                *(fetch(i, col) for i in range(stop - start) for col in survivors)
            )
            also_lost = sorted({col for col in results if col is not None})
            base = {column, *also_lost}
            # Columns on the dirty list hold *stale* strips: they
            # answered the fetch, but with pre-degraded-write data.
            # Folding them into the erasure pattern keeps the rebuild
            # from baking old bytes into the replacement -- and the
            # decode recovers their fresh strips as a by-product.
            patterns: list[tuple[int, ...]] = []
            for i in range(stop - start):
                stale = array.dirty_stripes.get(start + i, set())
                erasures = sorted(base | set(stale))
                if len(erasures) > 2:
                    raise ClusterDegradedError(
                        f"rebuild window [{start}, {stop}): columns {erasures} "
                        "lost or stale"
                    )
                for col in erasures:
                    batch[i, col] = 0
                patterns.append(tuple(erasures))
            # The batch decode runs in worker threads (NumPy XOR kernels
            # release the GIL); yield first so queued traffic proceeds.
            await asyncio.sleep(0)
            if len(set(patterns)) == 1:
                self.coder.decode(batch, list(patterns[0]))
            else:  # mixed dirtiness: per-stripe patterns
                for i, erasures in enumerate(patterns):
                    code.decode(batch[i], list(erasures))
            await asyncio.gather(
                *(
                    replacement.request(
                        "put", {"stripe": start + i}, batch[i, column].data
                    )
                    for i in range(stop - start)
                )
            )
            await self._freshen_dirty(start, patterns, batch, column)
            done += stop - start
            metrics.counter("rebuild_stripes_done").inc(stop - start)
        array.replace_node(column, address)
        return done

    async def _freshen_dirty(
        self, start: int, patterns: list, batch, column: int
    ) -> None:
        """Push decoded strips back to stale-but-reachable columns.

        The rebuilt column itself comes off each stripe's dirty set (the
        replacement got fresh bytes above); other stale columns take a
        direct rewrite, or stay listed for the scrubber if unreachable.
        """
        array = self.array
        for i, erasures in enumerate(patterns):
            stripe = start + i
            dirty = array.dirty_stripes.get(stripe)
            if not dirty:
                continue
            dirty.discard(column)
            for col in sorted(set(dirty) & set(erasures)):
                try:
                    await array._store_strip(col, stripe, batch[i, col])
                except (NodeUnavailableError, RemoteDiskError):
                    continue
                dirty.discard(col)
            if not dirty:
                array.dirty_stripes.pop(stripe, None)
