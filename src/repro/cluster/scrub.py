"""Distributed scrub & repair: find and fix silent corruption in place.

The cluster-side sibling of :class:`repro.array.scrub.Scrubber`, built
around the paper's single-column locator
(:func:`repro.core.error_correction.locate_and_correct`): stream
stripes through the cluster in bounded windows, verify parity, locate
the corrupted column on a mismatch, and push the corrected strip back
to its node.

Two economies keep a routine pass cheap:

* **Dirty-first** -- stripes whose last write skipped columns
  (:attr:`ClusterArray.dirty_stripes`) are scrubbed before anything
  else, because they are *known* stale and the locator repairs them
  the moment their node is back.
* **Checksum fast path** -- for the remaining stripes the scrubber
  first issues ``scrub-read`` probes: each node compares its strip
  against its CRC-32 sidecar locally and answers with a verdict, no
  strip payload on the wire.  Only stripes with a mismatch (or an
  unreachable probe) pay for a full fetch + parity verify.  ``deep``
  mode skips the fast path entirely -- sidecars cannot see a *stale
  but internally consistent* strip, so a periodic deep pass is the
  backstop.

Erasure-type damage met along the way (latent sectors, a column that
is briefly down) is repaired too: survivors decode the lost strips and
the scrubber pushes them back where a node will take them.

All I/O rides the array's Clock/Transport/Tracer seams, so scrub
passes replay deterministically under :mod:`repro.sim`; progress is
visible in ``scrub_*`` metrics and ``scrub.pass`` spans.  When the
scrubber is idle (between passes, or never started) it issues no RPCs
at all.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.cluster.client import (
    ClusterArray,
    ClusterError,
    NodeUnavailableError,
    RemoteDiskError,
)
from repro.codes.liberation import LiberationCode
from repro.core.error_correction import ScanStatus, locate_and_correct
from repro.parallel import iter_batches

__all__ = ["ClusterScrubReport", "ClusterScrubber"]


@dataclass
class ClusterScrubReport:
    """Aggregate outcome of one distributed scrub pass."""

    stripes_scanned: int = 0
    stripes_clean: int = 0
    stripes_corrected: int = 0
    stripes_uncorrectable: int = 0
    #: parity mismatch found, but the code has no locator (or repair is
    #: off): detected, not correctable by the single-column procedure
    stripes_detected_only: int = 0
    #: stripes whose damaged columns could not be reached for repair
    stripes_deferred: int = 0
    #: stripes settled by the checksum fast path (no strip shipped)
    fast_path_hits: int = 0
    corrected: list[tuple[int, int]] = field(default_factory=list)  # (stripe, column)
    uncorrectable: list[int] = field(default_factory=list)
    detected_only: list[int] = field(default_factory=list)
    deferred: list[int] = field(default_factory=list)
    crc_mismatches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return (
            self.stripes_uncorrectable == 0
            and self.stripes_detected_only == 0
            and self.stripes_deferred == 0
        )

    def merge(self, other: "ClusterScrubReport") -> None:
        for name in (
            "stripes_scanned", "stripes_clean", "stripes_corrected",
            "stripes_uncorrectable", "stripes_detected_only",
            "stripes_deferred", "fast_path_hits",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in ("corrected", "uncorrectable", "detected_only",
                     "deferred", "crc_mismatches"):
            getattr(self, name).extend(getattr(other, name))


class ClusterScrubber:
    """Scrubs a :class:`ClusterArray` in place, window by window.

    ``window`` bounds concurrency (stripes verified at once);
    ``interval`` is the sleep between background passes when driven by
    :meth:`start`.  Non-Liberation codes fall back to detect-only, the
    same surfaced fallback as the local scrubber.
    """

    def __init__(
        self, array: ClusterArray, *, window: int = 8, interval: float = 30.0
    ) -> None:
        self.array = array
        self.window = int(window)
        self.interval = float(interval)
        self._can_locate = isinstance(array.code, LiberationCode)
        self._task: asyncio.Task | None = None

    # -- one stripe ----------------------------------------------------------

    async def _crc_clean(self, stripe: int) -> tuple[bool, list[int]]:
        """Checksum probe of every column; ``(all clean, mismatched cols)``.

        An unreachable or erroring probe counts as a mismatch so the
        full path takes over.
        """
        cols = range(self.array.code.n_cols)

        async def probe(col: int) -> bool:
            reply, _ = await self.array._column_request(
                col, "scrub-read", {"stripe": stripe}, stripe=stripe
            )
            return bool(reply.get("match"))

        results = await asyncio.gather(
            *(probe(c) for c in cols), return_exceptions=True
        )
        bad = [c for c, r in zip(cols, results) if r is not True]
        for res in results:
            if isinstance(res, BaseException) and not isinstance(res, ClusterError):
                raise res
        return not bad, bad

    async def scrub_stripe(
        self, stripe: int, *, repair: bool = True
    ) -> ClusterScrubReport:
        """Full verify (and repair) of one stripe; returns a 1-stripe report."""
        array, code = self.array, self.array.code
        report = ClusterScrubReport(stripes_scanned=1)
        buf = code.alloc_stripe()
        missing = await array._gather_columns(
            stripe, list(range(code.n_cols)), buf
        )
        # Known-stale columns (degraded writes) join the erasure set:
        # the dirty list converts an unknown-error problem into a
        # known-erasure one, so even *two* stale columns decode exactly
        # where the locator could repair at most one.
        stale = sorted(set(missing) | set(array.dirty_stripes.get(stripe, ())))

        if len(stale) > 2:
            report.stripes_deferred += 1
            report.deferred.append(stripe)
            return report

        if stale:
            # Erasure-type damage: decode the lost strips and push them
            # back to any column that will take a write (latent sectors
            # heal on rewrite; a down node stays deferred).
            for col in stale:
                buf[col] = 0
            code.decode(buf, stale)
            array.metrics.counter("decodes").inc()
            healed = True
            dirty = array.dirty_stripes.get(stripe)
            for col in stale:
                if not repair:
                    healed = False
                    continue
                try:
                    await array._store_strip(col, stripe, buf[col])
                except (NodeUnavailableError, RemoteDiskError):
                    healed = False
                else:
                    report.stripes_corrected += 1
                    report.corrected.append((stripe, col))
                    array.metrics.counter("scrub_stripes_corrected").inc()
                    if dirty is not None:
                        dirty.discard(col)
            if not healed:
                report.stripes_deferred += 1
                report.deferred.append(stripe)
            if dirty is not None and not dirty:
                array.dirty_stripes.pop(stripe, None)
            return report

        if code.verify(buf):
            report.stripes_clean += 1
            array.dirty_stripes.pop(stripe, None)
            return report

        if not (self._can_locate and repair):
            report.stripes_detected_only += 1
            report.detected_only.append(stripe)
            array.metrics.counter("scrub_detected_only").inc()
            return report

        result = locate_and_correct(code.geometry, buf)
        if result.status is ScanStatus.CORRECTED:
            try:
                await array._store_strip(result.column, stripe, buf[result.column])
            except (NodeUnavailableError, RemoteDiskError):
                report.stripes_deferred += 1
                report.deferred.append(stripe)
                return report
            report.stripes_corrected += 1
            report.corrected.append((stripe, result.column))
            array.metrics.counter("scrub_stripes_corrected").inc()
            dirty = array.dirty_stripes.get(stripe)
            if dirty is not None:
                dirty.discard(result.column)
                if not dirty:
                    array.dirty_stripes.pop(stripe, None)
        else:
            report.stripes_uncorrectable += 1
            report.uncorrectable.append(stripe)
            array.metrics.counter("scrub_uncorrectable").inc()
        return report

    # -- one pass ------------------------------------------------------------

    async def scrub(self, *, repair: bool = True, deep: bool = False) -> ClusterScrubReport:
        """One pass over the whole array: dirty stripes first, then the rest.

        Clean, non-dirty stripes settle on the checksum fast path
        unless ``deep`` forces a full fetch + parity verify of every
        stripe.
        """
        array = self.array
        report = ClusterScrubReport()
        tracer = array.tracer

        async def run_pass() -> None:
            dirty = sorted(array.dirty_stripes)
            for stripe in dirty:
                report.merge(await self.scrub_stripe(stripe, repair=repair))
            rest = [s for s in range(array.n_stripes) if s not in set(dirty)]
            for start, stop in iter_batches(len(rest), self.window):
                window = rest[start:stop]
                if deep:
                    verdicts = [(False, []) for _ in window]
                else:
                    verdicts = await asyncio.gather(
                        *(self._crc_clean(s) for s in window)
                    )
                for stripe, (clean, bad) in zip(window, verdicts):
                    if clean:
                        report.stripes_scanned += 1
                        report.stripes_clean += 1
                        report.fast_path_hits += 1
                        array.metrics.counter("scrub_fast_path_hits").inc()
                        continue
                    report.crc_mismatches.extend((stripe, c) for c in bad)
                    for col in bad:
                        array.metrics.counter("scrub_crc_mismatches_seen").inc()
                    report.merge(await self.scrub_stripe(stripe, repair=repair))
            array.metrics.counter("scrub_passes").inc()
            array.metrics.counter("scrub_stripes_scanned").inc(
                report.stripes_scanned
            )

        if tracer is None:
            await run_pass()
        else:
            with tracer.span("scrub.pass", stripes=array.n_stripes,
                             deep=deep) as span:
                await run_pass()
                span.set("corrected", report.stripes_corrected)
                span.set("uncorrectable", report.stripes_uncorrectable)
                span.set("fast_path_hits", report.fast_path_hits)
        return report

    # -- background driving --------------------------------------------------

    def start(self, *, repair: bool = True, deep_every: int = 0) -> asyncio.Task:
        """Launch periodic passes as a background task.

        ``deep_every=n`` makes every ``n``-th pass a deep one (0 keeps
        all passes on the fast path).  Between passes the scrubber
        sleeps on the array's clock and issues **no** RPCs.
        """
        if self._task is not None and not self._task.done():
            raise RuntimeError("scrub loop already running")

        async def loop() -> None:
            passes = 0
            while True:
                deep = bool(deep_every) and passes % deep_every == deep_every - 1
                await self.scrub(repair=repair, deep=deep)
                passes += 1
                await self.array.clock.sleep(self.interval)

        self._task = asyncio.get_running_loop().create_task(loop())
        return self._task

    async def stop(self) -> None:
        """Cancel the background loop (no-op if never started)."""
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
