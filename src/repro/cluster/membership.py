"""Epoch-numbered cluster membership: node states, table, heartbeat monitor.

The membership table is the single authority on *who is in the cluster
and in what role*.  Every mutation bumps a monotonically increasing
**epoch**; routing decisions (placement, client retries, gateway extent
resolution) are always made "as of epoch E", and a client that loses a
race with a membership change re-resolves at the new epoch and retries
instead of failing (see ``ElasticArray._column_request``).

Node life cycle::

    join -> JOINING --mark_live--> LIVE --drain--> DRAINING --remove--> LEFT
                \\                    |                 |
                 \\--(heartbeat miss)-+-> DEAD <--------/
                                       |
                        mark_live (node came back) / remove -> LEFT

* ``JOINING`` -- announced, probed, not yet placement-eligible.
* ``LIVE`` -- placement-eligible and serving.
* ``DRAINING`` -- still serving (reads **and** strip writes) but no
  longer placement-eligible, so the rebalancer migrates its strips
  away; removal is gated on the drain completing.
* ``DEAD`` -- failed heartbeats; not eligible, not routable.  Strips it
  held are re-placed and rebuilt via the decode path.
* ``LEFT`` -- tombstone; kept so the epoch history stays explainable.

Placement eligibility is ``LIVE`` only; **serving** (routable for data)
is ``LIVE`` + ``DRAINING``.  The distinction is what makes drains
graceful: foreground traffic keeps flowing to a draining node while the
migrator empties it.

:class:`MembershipMonitor` is the heartbeat prober -- the elastic twin
of :class:`~repro.cluster.health.HealthMonitor`, reusing the same
one-shot-probe + consecutive-miss pattern and per-node circuit
breakers, but keyed by node id instead of column index and feeding
verdicts into the table (``mark_dead`` / auto-revive).
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass

from repro.cluster.client import ClusterError, NodeClient, RetryPolicy
from repro.cluster.health import CircuitBreaker

__all__ = [
    "NodeState",
    "NodeEntry",
    "MembershipError",
    "MembershipTable",
    "MembershipMonitor",
]


class NodeState(enum.Enum):
    JOINING = "joining"
    LIVE = "live"
    DRAINING = "draining"
    DEAD = "dead"
    LEFT = "left"


#: States whose strips are routable for foreground I/O.
SERVING_STATES = frozenset({NodeState.LIVE, NodeState.DRAINING})
#: States the heartbeat monitor keeps probing.
PROBED_STATES = frozenset(
    {NodeState.JOINING, NodeState.LIVE, NodeState.DRAINING, NodeState.DEAD}
)


@dataclass
class NodeEntry:
    node_id: str
    address: tuple[str, int]
    state: NodeState
    since_epoch: int

    def to_dict(self) -> dict:
        return {
            "id": self.node_id,
            "address": [self.address[0], self.address[1]],
            "state": self.state.value,
            "since_epoch": self.since_epoch,
        }


class MembershipError(ValueError):
    """Invalid membership transition or unknown node.

    A :class:`ValueError` subclass so the node's dispatch maps a bad
    remote mutation to a ``bad-request`` reply instead of crashing.
    """


class MembershipTable:
    """Epoch-numbered node table; every mutation bumps the epoch.

    ``metrics`` (an :class:`~repro.obs.metrics.MetricsRegistry`) is
    optional; when present the current epoch is exported as the
    ``membership_epoch`` gauge and per-state node counts as
    ``membership_nodes_<state>``.
    """

    def __init__(self, *, metrics=None) -> None:
        self.epoch = 0
        self.nodes: dict[str, NodeEntry] = {}
        self.metrics = metrics
        self._export()

    # -- mutations (each bumps the epoch) ------------------------------------

    def _bump(self) -> int:
        self.epoch += 1
        self._export()
        return self.epoch

    def bump(self) -> int:
        """Record an out-of-band routing-relevant change.

        Used by the rebalancer when it flips a stripe's holders (the
        node set is unchanged but routing is not), and by chaos tests
        to prove spurious epoch bumps are harmless.
        """
        return self._bump()

    def join(
        self, node_id: str, address: tuple[str, int], *, live: bool = False
    ) -> int:
        """Announce a node.  Re-joining a DEAD/LEFT id revives it.

        ``live=True`` skips JOINING and admits the node straight into
        the placement pool -- used at bootstrap and by deterministic
        tests; production joins land in JOINING until the heartbeat
        confirms the node answers.
        """
        entry = self.nodes.get(node_id)
        if entry is not None and entry.state in SERVING_STATES:
            raise MembershipError(f"node {node_id!r} already {entry.state.value}")
        state = NodeState.LIVE if live else NodeState.JOINING
        self.nodes[node_id] = NodeEntry(
            node_id, (address[0], int(address[1])), state, self.epoch + 1
        )
        return self._bump()

    def _transition(self, node_id: str, allowed: frozenset, to: NodeState) -> int:
        entry = self.nodes.get(node_id)
        if entry is None:
            raise MembershipError(f"unknown node {node_id!r}")
        if entry.state not in allowed:
            raise MembershipError(
                f"node {node_id!r}: cannot go {entry.state.value} -> {to.value}"
            )
        entry.state = to
        entry.since_epoch = self._bump()
        return entry.since_epoch

    def mark_live(self, node_id: str) -> int:
        """JOINING/DEAD/DRAINING -> LIVE (heartbeat OK / drain cancelled)."""
        return self._transition(
            node_id,
            frozenset({NodeState.JOINING, NodeState.DEAD, NodeState.DRAINING}),
            NodeState.LIVE,
        )

    def drain(self, node_id: str) -> int:
        """LIVE/JOINING -> DRAINING: keep serving, stop placing."""
        return self._transition(
            node_id,
            frozenset({NodeState.LIVE, NodeState.JOINING}),
            NodeState.DRAINING,
        )

    def mark_dead(self, node_id: str) -> int:
        """Heartbeat verdict: node stopped answering."""
        return self._transition(node_id, PROBED_STATES - {NodeState.DEAD}, NodeState.DEAD)

    def remove(self, node_id: str) -> int:
        """DRAINING/DEAD -> LEFT tombstone (drain finished / operator GC)."""
        return self._transition(
            node_id, frozenset({NodeState.DRAINING, NodeState.DEAD}), NodeState.LEFT
        )

    # -- views ---------------------------------------------------------------

    def state_of(self, node_id: str) -> NodeState:
        entry = self.nodes.get(node_id)
        if entry is None:
            raise MembershipError(f"unknown node {node_id!r}")
        return entry.state

    def address_of(self, node_id: str) -> tuple[str, int]:
        entry = self.nodes.get(node_id)
        if entry is None:
            raise MembershipError(f"unknown node {node_id!r}")
        return entry.address

    def placement_pool(self) -> tuple[str, ...]:
        """Sorted LIVE node ids -- the placement-eligible set."""
        return tuple(
            sorted(n for n, e in self.nodes.items() if e.state is NodeState.LIVE)
        )

    def serving(self) -> tuple[str, ...]:
        """Sorted node ids routable for data (LIVE + DRAINING)."""
        return tuple(
            sorted(n for n, e in self.nodes.items() if e.state in SERVING_STATES)
        )

    def probed(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, e in self.nodes.items() if e.state in PROBED_STATES)
        )

    def counts(self) -> dict[str, int]:
        out = {state.value: 0 for state in NodeState}
        for entry in self.nodes.values():
            out[entry.state.value] += 1
        return out

    # -- wire form -----------------------------------------------------------

    def to_header(self) -> dict:
        """JSON-safe snapshot carried in ``membership`` verb replies."""
        return {
            "epoch": self.epoch,
            "nodes": [e.to_dict() for _, e in sorted(self.nodes.items())],
        }

    @classmethod
    def from_header(cls, header: dict, *, metrics=None) -> "MembershipTable":
        table = cls(metrics=metrics)
        for node in header.get("nodes", ()):
            addr = node["address"]
            table.nodes[node["id"]] = NodeEntry(
                node["id"],
                (addr[0], int(addr[1])),
                NodeState(node["state"]),
                int(node.get("since_epoch", 0)),
            )
        table.epoch = int(header.get("epoch", 0))
        table._export()
        return table

    def _export(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("membership_epoch").set(self.epoch)
        for state, count in self.counts().items():
            self.metrics.gauge(f"membership_nodes_{state}").set(count)

    def __repr__(self) -> str:
        counts = {k: v for k, v in self.counts().items() if v}
        return f"MembershipTable(epoch={self.epoch}, {counts})"


class MembershipMonitor:
    """Heartbeat prober for an :class:`~repro.cluster.elastic.ElasticArray`.

    Probes every non-LEFT node each round with a one-shot ping (the
    cadence is the retry loop, mirroring
    :class:`~repro.cluster.health.HealthMonitor`), maintains a
    :class:`CircuitBreaker` per node id on ``array.node_breakers``, and
    drives table transitions: ``miss_threshold`` consecutive misses
    mark a node DEAD; a successful probe promotes JOINING to LIVE and
    revives DEAD nodes.  ``on_change(epoch)`` fires after any table
    mutation so a rebalancer can wake up.
    """

    def __init__(
        self,
        array,
        *,
        interval: float = 1.0,
        miss_threshold: int = 3,
        probe_timeout: float = 0.5,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        min_open_interval: float = 0.0,
        on_change=None,
    ) -> None:
        self.array = array
        self.membership: MembershipTable = array.membership
        self.clock = array.clock
        self.interval = float(interval)
        self.miss_threshold = int(miss_threshold)
        self.probe_policy = RetryPolicy(attempts=1, timeout=float(probe_timeout))
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.min_open_interval = float(min_open_interval)
        self.on_change = on_change
        self.misses: dict[str, int] = {}
        self._task: asyncio.Task | None = None

    def _breaker(self, node_id: str) -> CircuitBreaker:
        breakers = self.array.node_breakers
        if node_id not in breakers:
            breakers[node_id] = CircuitBreaker(
                self.clock,
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                min_open_interval=self.min_open_interval,
                metrics=self.array.metrics,
            )
        return breakers[node_id]

    def _probe_client(self, node_id: str) -> NodeClient:
        array = self.array
        return NodeClient(
            self.membership.address_of(node_id),
            policy=self.probe_policy,
            metrics=array.metrics,
            transport=array.transport,
            clock=array.clock,
            tracer=array.tracer,
        )

    async def probe_once(self) -> dict[str, bool]:
        """One heartbeat round; returns per-node liveness verdicts."""
        table = self.membership
        targets = table.probed()
        epoch_before = table.epoch

        async def probe(node_id: str) -> bool:
            try:
                await self._probe_client(node_id).request("ping")
            except ClusterError:
                return False
            return True

        alive = dict(
            zip(targets, await asyncio.gather(*(probe(n) for n in targets)))
        )
        for node_id, ok in alive.items():
            breaker = self._breaker(node_id)
            state = table.state_of(node_id)
            if ok:
                self.misses[node_id] = 0
                breaker.record_success()
                if state is NodeState.JOINING or state is NodeState.DEAD:
                    table.mark_live(node_id)
            else:
                self.misses[node_id] = self.misses.get(node_id, 0) + 1
                breaker.record_failure()
                self.array.metrics.counter("heartbeat_misses").inc()
                if (
                    self.misses[node_id] >= self.miss_threshold
                    and state is not NodeState.DEAD
                ):
                    table.mark_dead(node_id)
                    self.array.metrics.counter("nodes_dead").inc()
        if table.epoch != epoch_before and self.on_change is not None:
            self.on_change(table.epoch)
        return alive

    def start(self) -> asyncio.Task:
        if self._task is not None and not self._task.done():
            raise RuntimeError("membership loop already running")

        async def loop() -> None:
            while True:
                await self.probe_once()
                await self.clock.sleep(self.interval)

        self._task = asyncio.get_running_loop().create_task(loop())
        return self._task

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    def status(self) -> dict:
        """Operator view: per-node state, misses, breaker."""
        table = self.membership
        return {
            "epoch": table.epoch,
            "nodes": [
                {
                    **entry.to_dict(),
                    "misses": self.misses.get(node_id, 0),
                    "breaker": self._breaker(node_id).state.value
                    if node_id in self.array.node_breakers
                    else "closed",
                }
                for node_id, entry in sorted(table.nodes.items())
            ],
        }
