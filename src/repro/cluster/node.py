"""The strip node: an asyncio TCP server storing one column's strips.

A :class:`StripNode` is one failure domain of the distributed array --
it owns the strips of exactly one logical column, backed by a
:class:`~repro.array.disk.SimulatedDisk` so the whole local fault
vocabulary (whole-disk failure, latent sector errors, silent
corruption) carries over unchanged.  On top of that sits the *network*
fault vocabulary of :class:`~repro.array.faults.NetworkFaultPlan`:
service latency, dropped connections mid-frame, corrupted frames,
transient I/O errors -- each installable in-process (tests) or over
the wire via the ``fault`` verb.

The node is deliberately dumb: it has no idea which code the cluster
runs or where its siblings are.  All striping, decoding and rebuild
intelligence lives in the client (:mod:`repro.cluster.client`), which
is what lets a degraded array keep serving while any two nodes
misbehave arbitrarily.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np

from repro.array.disk import DiskError, DiskFailedError, LatentSectorError, SimulatedDisk
from repro.array.faults import NetworkFaultPlan
from repro.cluster.protocol import ProtocolError, encode_frame, read_frame
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock, RealClock
from repro.sim.transport import AsyncioTransport, Transport
from repro.utils.words import WORD_DTYPE

__all__ = ["StripNode"]

#: Verbs the fault plan applies to; control verbs always get through.
_DATA_VERBS = frozenset({"get", "put"})


class StripNode:
    """Asyncio TCP server for one column of strips.

    ``start()`` binds (port 0 picks an ephemeral port; the bound
    address is then available as :attr:`address`) and serves until
    ``stop()`` is called or a ``shutdown`` frame arrives.
    """

    def __init__(
        self,
        column: int,
        n_strips: int,
        strip_words: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        transport: Transport | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.column = int(column)
        self.disk = SimulatedDisk(column, n_strips, strip_words)
        self.faults = NetworkFaultPlan()
        self.metrics = MetricsRegistry()
        self.transport = transport if transport is not None else AsyncioTransport()
        self.clock = clock if clock is not None else RealClock()
        #: optional span recorder (deterministic under the sim clock).
        self.tracer = tracer
        self._host = host
        self._port = port
        self._server = None
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after ``start()``)."""
        if self._server is None:
            raise RuntimeError("node is not started")
        return self._server.address

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("node already started")
        self._stopped.clear()
        self._server = await self.transport.serve(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._stopped.set()

    async def serve_until_shutdown(self) -> None:
        """Block until ``stop()`` or a ``shutdown`` frame."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        if self._server is not None:
            await self.stop()

    # -- request handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # peer went away
                except ProtocolError:
                    self.metrics.counter("bad_frames").inc()
                    return  # unrecoverable framing state: drop the peer
                if not await self._dispatch(header, payload, writer):
                    return
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, header: dict, payload: bytes, writer) -> bool:
        """Serve one request; returns False to close the connection."""
        verb = header.get("verb", "?")
        if self.tracer is None:
            return await self._dispatch_inner(verb, header, payload, writer)
        with self.tracer.span(f"node.{verb}", column=self.column,
                              bytes=len(payload)):
            return await self._dispatch_inner(verb, header, payload, writer)

    async def _dispatch_inner(
        self, verb: str, header: dict, payload: bytes, writer
    ) -> bool:
        self.metrics.counter(f"requests_{verb}").inc()
        self.metrics.counter("bytes_in").inc(len(payload))

        if verb in _DATA_VERBS:
            if self.faults.latency:
                await self.clock.sleep(self.faults.latency)
            if self.faults.consume("fail_requests"):
                self.metrics.counter("injected_io_errors").inc()
                await self._reply(writer, {"status": "err", "error": "io-error",
                                           "detail": "injected transient fault"})
                return True

        try:
            reply_header, reply_payload = self._serve(verb, header, payload)
        except LatentSectorError as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "latent", "detail": str(exc)}, b"")
        except DiskFailedError as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "disk-failed", "detail": str(exc)}, b"")
        except (DiskError, ValueError, IndexError, KeyError, TypeError) as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "bad-request", "detail": str(exc)}, b"")
        if reply_header.get("status") == "err":
            self.metrics.counter("errors").inc()

        frame = encode_frame(reply_header, reply_payload)
        if verb in _DATA_VERBS and self.faults.consume("corrupt_frames"):
            self.metrics.counter("injected_corruptions").inc()
            frame = bytearray(frame)
            frame[len(frame) // 2] ^= 0xFF  # lands in header/payload, CRC goes stale
            frame = bytes(frame)
        if verb in _DATA_VERBS and self.faults.consume("drop_mid_frame"):
            self.metrics.counter("injected_drops").inc()
            writer.write(frame[: len(frame) // 2])
            with contextlib.suppress(ConnectionError):
                await writer.drain()
            return False
        writer.write(frame)
        self.metrics.counter("bytes_out").inc(len(frame))
        with contextlib.suppress(ConnectionError):
            await writer.drain()
        return verb != "shutdown"

    async def _reply(self, writer, header: dict, payload: bytes = b"") -> None:
        frame = encode_frame(header, payload)
        self.metrics.counter("bytes_out").inc(len(frame))
        writer.write(frame)
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    # -- verb implementations ----------------------------------------------

    def _serve(self, verb: str, header: dict, payload: bytes) -> tuple[dict, bytes]:
        if verb == "ping":
            return {"status": "ok", "column": self.column}, b""
        if verb == "put":
            words = np.frombuffer(payload, dtype=WORD_DTYPE)
            self.disk.write_strip(int(header["stripe"]), words)
            return {"status": "ok"}, b""
        if verb == "get":
            strip = self.disk.read_strip(int(header["stripe"]))
            return {"status": "ok"}, strip.tobytes()
        if verb == "stats":
            return {
                "status": "ok",
                "column": self.column,
                "stats": self.metrics.snapshot(),
                "disk": {
                    "reads": self.disk.stats.reads,
                    "writes": self.disk.stats.writes,
                    "bytes_read": self.disk.stats.bytes_read,
                    "bytes_written": self.disk.stats.bytes_written,
                    "failed": self.disk.failed,
                    "n_strips": self.disk.n_strips,
                },
            }, b""
        if verb == "metrics":
            return (
                {"status": "ok", "column": self.column,
                 "content_type": "text/plain; version=0.0.4"},
                self._prometheus_body().encode(),
            )
        if verb == "fault":
            return self._serve_fault(header), b""
        if verb == "shutdown":
            self._stopped.set()
            return {"status": "ok", "column": self.column}, b""
        return {"status": "err", "error": "bad-verb", "detail": f"unknown verb {verb!r}"}, b""

    def _prometheus_body(self) -> str:
        """Prometheus text exposition of this node's registry + disk.

        Disk access totals render as counters, disk state as gauges;
        every sample carries a ``column`` label so the per-node
        endpoints stay aggregatable across the cluster.
        """
        snap = self.metrics.snapshot()
        snap["counters"] = {
            **snap["counters"],
            "disk_reads": self.disk.stats.reads,
            "disk_writes": self.disk.stats.writes,
            "disk_bytes_read": self.disk.stats.bytes_read,
            "disk_bytes_written": self.disk.stats.bytes_written,
        }
        snap["gauges"] = {
            **snap.get("gauges", {}),
            "disk_failed": float(self.disk.failed),
            "disk_n_strips": float(self.disk.n_strips),
        }
        return to_prometheus(snap, labels={"column": str(self.column)})

    def _serve_fault(self, header: dict) -> dict:
        """Install network faults and/or trigger disk faults remotely."""
        if "plan" in header:
            self.faults = NetworkFaultPlan.from_header(header["plan"])
        if header.get("disk_fail"):
            self.disk.fail()
        for strip in header.get("latent", ()):
            self.disk.mark_latent_error(int(strip))
        if header.get("replace"):
            self.disk.replace()
            self.faults = NetworkFaultPlan()
        return {"status": "ok", "faults": self.faults.to_header()}

    def __repr__(self) -> str:
        state = f"on {self.address}" if self.running else "stopped"
        return f"StripNode(column={self.column}, {state}, {self.disk!r})"
