"""The strip node: an asyncio TCP server storing one column's strips.

A :class:`StripNode` is one failure domain of the distributed array --
it owns the strips of exactly one logical column, backed by a
:class:`~repro.array.disk.SimulatedDisk` so the whole local fault
vocabulary (whole-disk failure, latent sector errors, silent
corruption) carries over unchanged.  On top of that sits the *network*
fault vocabulary of :class:`~repro.array.faults.NetworkFaultPlan`:
service latency, dropped connections mid-frame, corrupted frames,
transient I/O errors -- each installable in-process (tests) or over
the wire via the ``fault`` verb.

The node is deliberately dumb: it has no idea which code the cluster
runs or where its siblings are.  All striping, decoding and rebuild
intelligence lives in the client (:mod:`repro.cluster.client`), which
is what lets a degraded array keep serving while any two nodes
misbehave arbitrarily.
"""

from __future__ import annotations

import asyncio
import contextlib
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.concurrency import sanitizer
from repro.array.disk import DiskError, DiskFailedError, LatentSectorError, SimulatedDisk
from repro.array.faults import NetworkFaultPlan
from repro.cluster.protocol import ProtocolError, encode_frame, frame_parts, read_frame
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock, RealClock
from repro.sim.transport import AsyncioTransport, Transport
from repro.utils.words import WORD_DTYPE

__all__ = ["NodeCrashPlan", "NodeCrashed", "NodeIntent", "StripNode"]

#: Verbs the fault plan applies to.  Operator verbs (``stats``,
#: ``fault``, ``shutdown``, ``metrics``) and the recovery plane
#: (``intents``, ``txn-status``) always get through, so a sick node
#: stays diagnosable and repairable.
_DATA_VERBS = frozenset(
    {"get", "put", "ping", "scrub-read", "prepare", "commit", "abort",
     "migrate-in", "release"}
)


class NodeCrashed(Exception):
    """Internal signal: a :class:`NodeCrashPlan` trigger fired.

    The dispatch loop translates it into a crash: the connection is
    dropped without a reply and the node stops serving, while all
    durable state (disk contents, intent log, transaction outcomes,
    checksum sidecars) survives in the object -- calling ``start()``
    again models the machine rebooting.
    """


class NodeCrashPlan:
    """Deterministic node-side crash triggers for protocol boundaries.

    Each *point* names a position inside a verb handler (e.g.
    ``commit-before-apply``).  Arming a point with ``after=n`` makes the
    ``n+1``-th passage through it raise :class:`NodeCrashed`, so tests
    can sweep every node-side crash position of the two-phase write
    protocol the way ``tests/array/test_journal.py`` sweeps the local
    journal's strip writes.
    """

    #: every point the txn verbs pass through, in protocol order
    POINTS = (
        "prepare-before-log",
        "prepare-before-reply",
        "commit-before-apply",
        "commit-before-reply",
        "abort-before-drop",
        "abort-before-reply",
        "migrate-before-log",
        "migrate-before-reply",
        "release-before-drop",
        "release-before-reply",
    )

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}

    def arm(self, point: str, *, after: int = 0) -> None:
        if point not in self.POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        self._armed[point] = int(after)

    def fires(self, point: str) -> bool:
        """Whether the armed trigger at ``point`` fires on this passage."""
        if point not in self._armed:
            return False
        if self._armed[point] == 0:
            del self._armed[point]
            return True
        self._armed[point] -= 1
        return False


@dataclass
class NodeIntent:
    """One logged write intent: the full new image of this node's strip.

    Mirrors :class:`repro.array.journal.JournalRecord` for the
    distributed protocol: the record is durable from ``prepare`` until
    ``commit`` applies it (atomically, like a journal retirement) or
    ``abort`` drops it.
    """

    txn: str
    stripe: int
    words: np.ndarray
    participants: list[int] = field(default_factory=list)


class StripNode:
    """Asyncio TCP server for one column of strips.

    ``start()`` binds (port 0 picks an ephemeral port; the bound
    address is then available as :attr:`address`) and serves until
    ``stop()`` is called or a ``shutdown`` frame arrives.
    """

    def __init__(
        self,
        column: int,
        n_strips: int,
        strip_words: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        transport: Transport | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.column = int(column)
        self.disk = SimulatedDisk(column, n_strips, strip_words)
        self.faults = NetworkFaultPlan()
        self.crashes = NodeCrashPlan()
        #: pending write intents (txn id -> record), durable across crashes
        self.intents: dict[str, NodeIntent] = {}
        #: resolved transactions (txn id -> "committed" | "aborted")
        self.txn_done: dict[str, str] = {}
        #: per-strip CRC-32 sidecars, refreshed on every applied write
        self.checksums: dict[int, int] = {}
        #: last membership snapshot installed via the ``membership``
        #: verb (nodes gossip/serve the table but never interpret it --
        #: routing stays the client's job)
        self.membership_header: dict | None = None
        self.metrics = MetricsRegistry()
        self.transport = transport if transport is not None else AsyncioTransport()
        self.clock = clock if clock is not None else RealClock()
        #: optional span recorder (deterministic under the sim clock).
        self.tracer = tracer
        self._host = host
        self._port = port
        self._server = None
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after ``start()``)."""
        if self._server is None:
            raise RuntimeError("node is not started")
        return self._server.address

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("node already started")
        self._stopped.clear()
        self._server = await self.transport.serve(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._stopped.set()

    async def serve_until_shutdown(self) -> None:
        """Block until ``stop()`` or a ``shutdown`` frame."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        if self._server is not None:
            await self.stop()

    # -- request handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # peer went away
                except ProtocolError:
                    self.metrics.counter("bad_frames").inc()
                    return  # unrecoverable framing state: drop the peer
                if not await self._dispatch(header, payload, writer):
                    return
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, header: dict, payload: bytes, writer) -> bool:
        """Serve one request; returns False to close the connection."""
        verb = header.get("verb", "?")
        if self.tracer is None:
            return await self._dispatch_inner(verb, header, payload, writer)
        with self.tracer.span(f"node.{verb}", column=self.column,
                              bytes=len(payload)):
            return await self._dispatch_inner(verb, header, payload, writer)

    async def _dispatch_inner(
        self, verb: str, header: dict, payload: bytes, writer
    ) -> bool:
        self.metrics.counter(f"requests_{verb}").inc()
        self.metrics.counter("bytes_in").inc(len(payload))

        if verb in _DATA_VERBS:
            # Capture the delay first: spending the last slow_requests
            # budget clears plan.latency (the spell is over).
            delay = self.faults.latency
            if delay and self.faults.latency_applies():
                await self.clock.sleep(delay)
            if self.faults.consume("fail_requests"):
                self.metrics.counter("injected_io_errors").inc()
                await self._reply(writer, {"status": "err", "error": "io-error",
                                           "detail": "injected transient fault"})
                return True

        try:
            reply_header, reply_payload = self._serve(verb, header, payload)
        except NodeCrashed:
            # Power loss mid-verb: no reply, connection dropped, node
            # down until restarted.  Durable state survives in `self`.
            self.metrics.counter("injected_crashes").inc()
            await self.stop()
            return False
        except LatentSectorError as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "latent", "detail": str(exc)}, b"")
        except DiskFailedError as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "disk-failed", "detail": str(exc)}, b"")
        except (DiskError, ValueError, IndexError, KeyError, TypeError) as exc:
            reply_header, reply_payload = (
                {"status": "err", "error": "bad-request", "detail": str(exc)}, b"")
        if reply_header.get("status") == "err":
            self.metrics.counter("errors").inc()

        corrupt = verb in _DATA_VERBS and self.faults.consume("corrupt_frames")
        drop = verb in _DATA_VERBS and self.faults.consume("drop_mid_frame")
        if corrupt or drop:
            # Fault injection needs the materialised frame to mangle.
            frame = encode_frame(reply_header, reply_payload)
            if corrupt:
                self.metrics.counter("injected_corruptions").inc()
                frame = bytearray(frame)
                frame[len(frame) // 2] ^= 0xFF  # header/payload bit, CRC goes stale
                frame = bytes(frame)
            if drop:
                self.metrics.counter("injected_drops").inc()
                writer.write(frame[: len(frame) // 2])
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                return False
            writer.write(frame)
            self.metrics.counter("bytes_out").inc(len(frame))
        else:
            # Sunny-day path: stream the frame parts; a `get` reply's
            # strip payload goes socket-ward as a view, never staged.
            token = sanitizer.guard(reply_payload, f"node.{verb}.reply")
            sent = 0
            for part in frame_parts(reply_header, reply_payload):
                if len(part):
                    writer.write(part)
                    sent += len(part)
            self.metrics.counter("bytes_out").inc(sent)
            with contextlib.suppress(ConnectionError):
                await writer.drain()
            sanitizer.check(token)
            return verb != "shutdown"
        with contextlib.suppress(ConnectionError):
            await writer.drain()
        return verb != "shutdown"

    async def _reply(self, writer, header: dict, payload: bytes = b"") -> None:
        token = sanitizer.guard(payload, "node._reply")
        sent = 0
        for part in frame_parts(header, payload):
            if len(part):
                writer.write(part)
                sent += len(part)
        self.metrics.counter("bytes_out").inc(sent)
        with contextlib.suppress(ConnectionError):
            await writer.drain()
        sanitizer.check(token)

    # -- verb implementations ----------------------------------------------

    def _serve(
        self, verb: str, header: dict, payload: bytes
    ) -> tuple[dict, bytes | memoryview]:
        if verb == "ping":
            return {"status": "ok", "column": self.column}, b""
        if verb == "put":
            words = np.frombuffer(payload, dtype=WORD_DTYPE)
            stripe = int(header["stripe"])
            self.disk.write_strip(stripe, words)
            # Same bytes as words.tobytes(), without materialising them.
            self.checksums[stripe] = zlib.crc32(payload)
            return {"status": "ok"}, b""
        if verb == "get":
            strip = self.disk.read_strip(int(header["stripe"]))
            # A view over the stored strip: the reply writer streams it
            # to the socket without a staging copy.
            return {"status": "ok"}, np.ascontiguousarray(strip).data
        if verb == "scrub-read":
            return self._serve_scrub_read(header), b""
        if verb == "prepare":
            return self._serve_prepare(header, payload), b""
        if verb == "commit":
            return self._serve_commit(header), b""
        if verb == "abort":
            return self._serve_abort(header), b""
        if verb == "migrate-in":
            return self._serve_migrate_in(header, payload), b""
        if verb == "release":
            return self._serve_release(header), b""
        if verb == "membership":
            return self._serve_membership(header), b""
        if verb == "txn-status":
            txn = str(header["txn"])
            state = self.txn_done.get(
                txn, "pending" if txn in self.intents else "unknown"
            )
            return {"status": "ok", "txn": txn, "state": state}, b""
        if verb == "intents":
            return {
                "status": "ok",
                "column": self.column,
                "txns": [
                    {"txn": rec.txn, "stripe": rec.stripe, "part": rec.participants}
                    for rec in self.intents.values()
                ],
            }, b""
        if verb == "stats":
            return {
                "status": "ok",
                "column": self.column,
                # strips this node actually holds (has a CRC sidecar
                # for): the rebalancer's drain-progress denominator
                "held": len(self.checksums),
                "stats": self.metrics.snapshot(),
                "disk": {
                    "reads": self.disk.stats.reads,
                    "writes": self.disk.stats.writes,
                    "bytes_read": self.disk.stats.bytes_read,
                    "bytes_written": self.disk.stats.bytes_written,
                    "failed": self.disk.failed,
                    "n_strips": self.disk.n_strips,
                },
            }, b""
        if verb == "metrics":
            return (
                {"status": "ok", "column": self.column,
                 "content_type": "text/plain; version=0.0.4"},
                self._prometheus_body().encode(),
            )
        if verb == "fault":
            return self._serve_fault(header), b""
        if verb == "shutdown":
            self._stopped.set()
            return {"status": "ok", "column": self.column}, b""
        return {"status": "err", "error": "bad-verb", "detail": f"unknown verb {verb!r}"}, b""

    def _prometheus_body(self) -> str:
        """Prometheus text exposition of this node's registry + disk.

        Disk access totals render as counters, disk state as gauges;
        every sample carries a ``column`` label so the per-node
        endpoints stay aggregatable across the cluster.
        """
        snap = self.metrics.snapshot()
        snap["counters"] = {
            **snap["counters"],
            "disk_reads": self.disk.stats.reads,
            "disk_writes": self.disk.stats.writes,
            "disk_bytes_read": self.disk.stats.bytes_read,
            "disk_bytes_written": self.disk.stats.bytes_written,
        }
        snap["gauges"] = {
            **snap.get("gauges", {}),
            "disk_failed": float(self.disk.failed),
            "disk_n_strips": float(self.disk.n_strips),
        }
        return to_prometheus(snap, labels={"column": str(self.column)})

    # -- scrub & two-phase-write verbs --------------------------------------

    def _serve_scrub_read(self, header: dict) -> dict:
        """Checksum probe: compare the strip's sidecar to its contents.

        Lets the scrubber detect node-local bit rot without shipping
        the strip.  Strips written before sidecars existed (or via
        direct disk access in tests) get a lazily initialised sidecar on
        first probe -- pre-existing damage is indistinguishable from
        original content at that point, exactly like real sidecar
        adoption.
        """
        stripe = int(header["stripe"])
        strip = self.disk.read_strip(stripe)  # raises latent/disk-failed
        actual = zlib.crc32(np.ascontiguousarray(strip).data)
        stored = self.checksums.setdefault(stripe, actual)
        if stored != actual:
            self.metrics.counter("scrub_crc_mismatches").inc()
        return {
            "status": "ok",
            "stripe": stripe,
            "crc_stored": stored,
            "crc_actual": actual,
            "match": stored == actual,
        }

    def _serve_prepare(self, header: dict, payload: bytes) -> dict:
        """Phase 1: log the intent (durably) without touching the disk."""
        txn = str(header["txn"])
        if self.crashes.fires("prepare-before-log"):
            raise NodeCrashed(f"prepare({txn}): crashed before logging intent")
        done = self.txn_done.get(txn)
        if done is not None:  # late/duplicate prepare after resolution
            return {"status": "ok", "txn": txn, "state": done}
        stripe = int(header["stripe"])
        if not 0 <= stripe < self.disk.n_strips:
            raise IndexError(f"stripe {stripe} out of range [0, {self.disk.n_strips})")
        words = np.frombuffer(payload, dtype=WORD_DTYPE).copy()
        if words.size != self.disk.strip_words:
            raise ValueError(
                f"prepare payload {words.size} words != strip {self.disk.strip_words}"
            )
        self.intents[txn] = NodeIntent(
            txn, stripe, words, [int(c) for c in header.get("part", ())]
        )
        self.metrics.counter("txn_prepares").inc()
        if self.crashes.fires("prepare-before-reply"):
            raise NodeCrashed(f"prepare({txn}): crashed before replying")
        return {"status": "ok", "txn": txn, "state": "pending"}

    def _serve_commit(self, header: dict) -> dict:
        """Phase 2: apply the intent image and retire it, atomically.

        Like :class:`~repro.array.journal.StripeJournal` retirement,
        apply-and-retire is the atomic step of the simulation (real
        nodes achieve it with a journaled apply): a crash lands either
        entirely before it (intent still pending, disk old) or entirely
        after (intent retired, disk new).  Idempotent, so a client that
        lost the reply can simply resend.
        """
        txn = str(header["txn"])
        done = self.txn_done.get(txn)
        if done is not None:
            return {"status": "ok", "txn": txn, "state": done, "applied": False}
        rec = self.intents.get(txn)
        if rec is None:
            return {"status": "ok", "txn": txn, "state": "unknown", "applied": False}
        if self.crashes.fires("commit-before-apply"):
            raise NodeCrashed(f"commit({txn}): crashed before applying")
        self.disk.write_strip(rec.stripe, rec.words)
        self.checksums[rec.stripe] = zlib.crc32(np.ascontiguousarray(rec.words).data)
        del self.intents[txn]
        self.txn_done[txn] = "committed"
        self.metrics.counter("txn_commits").inc()
        if self.crashes.fires("commit-before-reply"):
            raise NodeCrashed(f"commit({txn}): crashed before replying")
        return {"status": "ok", "txn": txn, "state": "committed", "applied": True}

    def _serve_abort(self, header: dict) -> dict:
        """Drop a pending intent; the disk is never touched."""
        txn = str(header["txn"])
        done = self.txn_done.get(txn)
        if done == "committed":  # too late: the decision was commit
            return {"status": "ok", "txn": txn, "state": done, "applied": False}
        if self.crashes.fires("abort-before-drop"):
            raise NodeCrashed(f"abort({txn}): crashed before dropping intent")
        known = self.intents.pop(txn, None) is not None
        self.txn_done[txn] = "aborted"
        self.metrics.counter("txn_aborts").inc()
        if self.crashes.fires("abort-before-reply"):
            raise NodeCrashed(f"abort({txn}): crashed before replying")
        return {"status": "ok", "txn": txn, "state": "aborted", "applied": known}

    # -- migration & membership verbs ----------------------------------------

    def _serve_migrate_in(self, header: dict, payload: bytes) -> dict:
        """Phase 1 of a stripe migration: stage the incoming strip image.

        Structurally a ``prepare`` (the intent rides the same durable
        log and the same idempotent ``commit`` verb applies it), but a
        separate verb because the reply must carry the CRC-32 of the
        staged bytes: the coordinator compares it against the source's
        sidecar before committing, so a frame mangled in flight is
        caught *before* the copy becomes authoritative, not after.
        """
        txn = str(header["txn"])
        if self.crashes.fires("migrate-before-log"):
            raise NodeCrashed(f"migrate-in({txn}): crashed before logging intent")
        stripe = int(header["stripe"])
        if not 0 <= stripe < self.disk.n_strips:
            raise IndexError(f"stripe {stripe} out of range [0, {self.disk.n_strips})")
        done = self.txn_done.get(txn)
        if done is not None:  # re-run after a lost reply: answer from state
            return {
                "status": "ok", "txn": txn, "state": done,
                "crc": self.checksums.get(stripe, 0),
            }
        words = np.frombuffer(payload, dtype=WORD_DTYPE).copy()
        if words.size != self.disk.strip_words:
            raise ValueError(
                f"migrate-in payload {words.size} words != strip "
                f"{self.disk.strip_words}"
            )
        crc = zlib.crc32(payload)
        self.intents[txn] = NodeIntent(txn, stripe, words, [])
        self.metrics.counter("migrations_staged").inc()
        if self.crashes.fires("migrate-before-reply"):
            raise NodeCrashed(f"migrate-in({txn}): crashed before replying")
        return {"status": "ok", "txn": txn, "state": "pending", "crc": crc}

    def _serve_release(self, header: dict) -> dict:
        """Drop a migrated-away strip: zero it and retire its sidecar.

        The last step of a migration, issued only after the new copy is
        committed and verified elsewhere.  ``crc`` (when present) is
        the coordinator's fencing token -- the sidecar it verified; if
        the strip changed since (a foreground write raced the
        migration), the release is refused and the coordinator must
        re-migrate the fresh bytes.  Releasing an absent strip succeeds
        idempotently, so a coordinator that lost the reply can resend.
        """
        stripe = int(header["stripe"])
        if self.crashes.fires("release-before-drop"):
            raise NodeCrashed(f"release({stripe}): crashed before dropping strip")
        stored = self.checksums.get(stripe)
        if stored is None:
            return {"status": "ok", "stripe": stripe, "released": True,
                    "reason": "absent"}
        expected = header.get("crc")
        if expected is not None and int(expected) != stored:
            self.metrics.counter("release_fenced").inc()
            return {"status": "ok", "stripe": stripe, "released": False,
                    "reason": "crc-mismatch"}
        self.disk.write_strip(
            stripe, np.zeros(self.disk.strip_words, dtype=WORD_DTYPE)
        )
        del self.checksums[stripe]
        self.metrics.counter("strips_released").inc()
        if self.crashes.fires("release-before-reply"):
            raise NodeCrashed(f"release({stripe}): crashed before replying")
        return {"status": "ok", "stripe": stripe, "released": True}

    def _serve_membership(self, header: dict) -> dict:
        """Store/serve/mutate the cluster membership snapshot.

        The node hosts the table as dumb durable state (the CLI's
        join/drain/status talk to any one node); interpretation --
        placement, routing -- stays client-side.  Mutations go through
        :class:`~repro.cluster.membership.MembershipTable` so epoch
        bumps and state-transition rules hold no matter who asks.
        """
        from repro.cluster.membership import MembershipTable

        mutating = [
            op for op in ("join", "drain", "remove", "mark_live", "mark_dead")
            if op in header
        ]
        if "set" in header:
            self.membership_header = dict(header["set"])
        elif mutating:
            table = MembershipTable.from_header(self.membership_header or {})
            if "join" in header:
                info = header["join"]
                table.join(
                    str(info["id"]),
                    (str(info["host"]), int(info["port"])),
                    live=bool(info.get("live")),
                )
            if "drain" in header:
                table.drain(str(header["drain"]))
            if "remove" in header:
                table.remove(str(header["remove"]))
            if "mark_live" in header:
                table.mark_live(str(header["mark_live"]))
            if "mark_dead" in header:
                table.mark_dead(str(header["mark_dead"]))
            self.membership_header = table.to_header()
        return {
            "status": "ok",
            "column": self.column,
            "membership": self.membership_header or {"epoch": 0, "nodes": []},
        }

    def _serve_fault(self, header: dict) -> dict:
        """Install network faults and/or trigger disk faults remotely."""
        if "plan" in header:
            self.faults = NetworkFaultPlan.from_header(header["plan"])
        if header.get("disk_fail"):
            self.disk.fail()
        for strip in header.get("latent", ()):
            self.disk.mark_latent_error(int(strip))
        if header.get("replace"):
            self.disk.replace()
            self.faults = NetworkFaultPlan()
        return {"status": "ok", "faults": self.faults.to_header()}

    def __repr__(self) -> str:
        state = f"on {self.address}" if self.running else "stopped"
        return f"StripNode(column={self.column}, {state}, {self.disk!r})"
