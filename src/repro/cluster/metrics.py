"""Embedded metrics for the cluster: counters and latency histograms.

Both the node server and the :class:`~repro.cluster.client.ClusterArray`
carry a :class:`MetricsRegistry`; snapshots travel over the wire in the
``stats`` verb's reply header and render through the same table
formatter the benchmark harness uses (``repro stats`` CLI view).

Deliberately tiny -- no external dependency, no background threads:
counters are plain ints (safe under asyncio's cooperative scheduling)
and histograms bucket observations on a fixed log2 grid so snapshots
are bounded and mergeable.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Histogram:
    """Log2-bucketed distribution (for request latencies, sizes...).

    Bucket ``i`` counts observations in ``(base * 2**(i-1), base * 2**i]``
    with everything ``<= base`` in bucket 0; quantiles are read back as
    the upper edge of the containing bucket (a <=2x overestimate, plenty
    for spotting a slow node).
    """

    __slots__ = ("name", "base", "counts", "total", "sum")

    N_BUCKETS = 32

    def __init__(self, name: str, *, base: float = 1e-4) -> None:
        self.name = name
        self.base = float(base)
        self.counts = [0] * self.N_BUCKETS
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram observations must be >= 0")
        idx = 0 if value <= self.base else int(math.log2(value / self.base)) + 1
        self.counts[min(idx, self.N_BUCKETS - 1)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the ``q``-quantile (0 if empty)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.base * (2**i)
        return self.base * (2 ** (self.N_BUCKETS - 1))

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """A named bag of counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def histogram(self, name: str, *, base: float = 1e-4) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name, base=base)
            return h

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict:
        """JSON-serialisable view: ``{counters: {...}, histograms: {...}}``."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def rows(snapshot: dict, *, prefix: str = "") -> list[dict]:
        """Flatten a snapshot into table rows for ``format_table``."""
        out: list[dict] = []
        for name, value in snapshot.get("counters", {}).items():
            out.append({"metric": prefix + name, "value": value})
        for name, h in snapshot.get("histograms", {}).items():
            out.append(
                {
                    "metric": f"{prefix}{name} (n={h['count']})",
                    "value": f"mean={h['mean']:.4g} p95={h['p95']:.4g}",
                }
            )
        return out

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Sum counters across snapshots (histograms are dropped --
        their buckets merge fine but cross-node quantiles mislead)."""
        totals: dict[str, int] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0) + value
        return {"counters": dict(sorted(totals.items())), "histograms": {}}
