"""Compatibility shim: the metrics registry moved to ``repro.obs.metrics``.

The counters/histograms that started life embedded in the cluster are
now the project-wide metrics layer (gauges, mergeable histograms, a
Prometheus formatter) in :mod:`repro.obs.metrics`; this module re-exports
the public names so existing imports -- and the wire-facing ``stats``
verb plumbing built on them -- keep working unchanged.  New code should
import from :mod:`repro.obs.metrics` directly.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "to_prometheus",
]
