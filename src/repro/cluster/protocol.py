"""Length-prefixed, checksummed wire protocol for the stripe store.

Every message -- request or reply -- is one *frame*:

::

    +-------+------------+-------------+--------------+-----------+--------+
    | magic | header len | payload len | header JSON  | payload   | CRC-32 |
    | 4 B   | u32 BE     | u32 BE      | header len B | p. len B  | u32 BE |
    +-------+------------+-------------+--------------+-----------+--------+

The header is a small JSON object (``{"verb": "get", "stripe": 3}``);
the payload carries raw strip bytes.  The trailing CRC-32 covers header
and payload, so a flipped bit anywhere in a frame surfaces as
:class:`FrameChecksumError` at the receiver rather than as silently
corrupted strip data -- the network analogue of the scrubber's
checksum discipline.

Verbs understood by :class:`~repro.cluster.node.StripNode`:

==============  ======================================================
``ping``        liveness probe
``put``         store the payload as strip ``stripe``
``get``         return strip ``stripe`` as the reply payload
``scrub-read``  compare strip ``stripe``'s CRC sidecar to its contents
``prepare``     2PC phase 1: durably log the payload as a write intent
``commit``      2PC phase 2: apply + retire the intent (idempotent)
``abort``       drop a pending intent
``txn-status``  report a transaction's state (recovery plane)
``intents``     list pending write intents (recovery plane)
``migrate-in``  stage an incoming migrated strip as an intent; the
                reply carries the staged bytes' CRC-32 for end-to-end
                verification before the coordinator commits
``release``     zero a migrated-away strip and drop its sidecar,
                fenced by the coordinator-verified ``crc``
``membership``  get/set/mutate the hosted membership snapshot
                (join / drain / remove / mark_live / mark_dead)
``stats``       return the node's metrics snapshot in the reply header
``metrics``     Prometheus text exposition of the node's registry
``fault``       install a :class:`~repro.array.faults.NetworkFaultPlan`
                and/or trigger disk faults (fail / latent / replace)
``shutdown``    stop serving after acknowledging
==============  ======================================================

Replies carry ``{"status": "ok"}`` or ``{"status": "err", "error":
<kind>, "detail": <str>}``.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

import asyncio

from repro.analysis.concurrency import sanitizer

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "FrameChecksumError",
    "frame_parts",
    "encode_frame",
    "read_frame",
    "write_frame",
]

#: Anything the zero-copy payload path accepts (numpy's ``arr.data``
#: memoryview included -- multi-dimensional views are flattened).
Buffer = bytes | bytearray | memoryview

#: Frame preamble; reject anything else immediately (protects the node
#: from port scanners and stale peers speaking an older framing).
MAGIC = b"RPR1"

#: Upper bound on header+payload, far above any legal strip.
MAX_FRAME_BYTES = 1 << 26

_PREAMBLE = struct.Struct("!4sII")
_CRC = struct.Struct("!I")


class ProtocolError(Exception):
    """Malformed frame (bad magic, oversized lengths, bad JSON)."""


class FrameChecksumError(ProtocolError):
    """Frame arrived intact in length but failed its CRC-32."""


def frame_parts(header: dict[str, Any], payload: Buffer = b"") -> tuple:
    """One frame as ``(preamble, header, payload, crc)`` buffers.

    The zero-copy seam: the payload buffer is passed through untouched
    (a ``memoryview`` over a stripe column never gets staged through
    ``bytes``), and the CRC is computed directly over it.  Callers
    either write the parts individually (:func:`write_frame`) or join
    them (:func:`encode_frame`) when a single ``bytes`` is needed.
    """
    if not isinstance(payload, (bytes, bytearray)):
        # Flatten e.g. numpy's (rows, words) strip views; cast requires
        # C-contiguity, which is also what the CRC and socket need.
        payload = memoryview(payload).cast("B")
    hdr = json.dumps(header, separators=(",", ":")).encode()
    if len(hdr) > MAX_FRAME_BYTES or len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("frame exceeds MAX_FRAME_BYTES")
    crc = zlib.crc32(payload, zlib.crc32(hdr))
    return (
        _PREAMBLE.pack(MAGIC, len(hdr), len(payload)),
        hdr,
        payload,
        _CRC.pack(crc),
    )


def encode_frame(header: dict[str, Any], payload: Buffer = b"") -> bytes:
    """Serialise one frame to a single ``bytes``."""
    return b"".join(frame_parts(header, payload))


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict[str, Any], bytes]:
    """Read and validate one frame; returns ``(header, payload)``.

    Raises :class:`FrameChecksumError` on CRC mismatch,
    :class:`ProtocolError` on structural garbage, and lets
    ``IncompleteReadError`` (connection dropped mid-frame) propagate so
    callers can treat it as a transport failure.
    """
    magic, hlen, plen = _PREAMBLE.unpack(await reader.readexactly(_PREAMBLE.size))
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if hlen > MAX_FRAME_BYTES or plen > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame (header={hlen}, payload={plen})")
    hdr_bytes = await reader.readexactly(hlen)
    payload = await reader.readexactly(plen)
    (crc,) = _CRC.unpack(await reader.readexactly(_CRC.size))
    if crc != zlib.crc32(payload, zlib.crc32(hdr_bytes)):
        raise FrameChecksumError("frame CRC-32 mismatch")
    try:
        header = json.loads(hdr_bytes)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a JSON object")
    return header, payload


async def write_frame(
    writer: asyncio.StreamWriter, header: dict[str, Any], payload: Buffer = b""
) -> None:
    """Encode and flush one frame (payload written without staging).

    The transport copies whatever it cannot send immediately before
    this returns, and ``drain()`` is awaited here, so callers may reuse
    or mutate the payload buffer as soon as the coroutine completes.
    Under ``REPRO_ALIAS_SANITIZER=1`` the payload is fingerprinted at
    handoff and re-verified after the drain: a concurrent writer racing
    the socket is recorded as a write-after-handoff event.
    """
    token = sanitizer.guard(payload, "protocol.write_frame")
    for part in frame_parts(header, payload):
        if len(part):
            writer.write(part)
    await writer.drain()
    sanitizer.check(token)
