"""Failure detection and degraded-mode management for the cluster.

Three mechanisms close the gap between "a node misbehaves" and "the
operator notices":

* **Heartbeats** -- :class:`HealthMonitor` pings every column on a
  fixed cadence with a one-shot probe (no retries: the cadence *is*
  the retry loop) and counts consecutive misses per column.
* **Circuit breakers** -- each column gets a :class:`CircuitBreaker`
  (installed on :attr:`ClusterArray.breakers`) that the data path
  consults before every RPC.  A column that keeps timing out is
  short-circuited to an immediate
  :class:`~repro.cluster.client.NodeUnavailableError` -- the degraded
  read path takes over instantly instead of burning a retry budget per
  request -- until a half-open trial shows the node recovered.  The
  breaker runs on an injectable clock, so the sim drives it in virtual
  time.
* **Auto-heal** -- once a column's consecutive misses cross the
  threshold, the monitor declares it failed, asks ``spare_provider``
  for a replacement address, streams a
  :class:`~repro.cluster.rebuild.RebuildScheduler` rebuild onto it,
  and repoints the array: fault to restored redundancy with no human
  in the loop.

Slow-but-alive nodes are the hedged reads' job
(``ClusterArray(hedge_after=...)``), not the breaker's: hedging
absorbs tail latency, the breaker absorbs hard unavailability.
"""

from __future__ import annotations

import asyncio
import enum

from repro.cluster.client import ClusterArray, ClusterError, NodeClient, RetryPolicy
from repro.cluster.rebuild import RebuildScheduler
from repro.sim.clock import Clock

__all__ = ["BreakerState", "CircuitBreaker", "HealthMonitor"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-node request gate with the classic three-state life cycle.

    CLOSED passes everything; ``failure_threshold`` consecutive
    failures trip it OPEN, which rejects instantly until
    ``reset_timeout`` clock-seconds pass; the first request after the
    cooldown runs as a HALF_OPEN trial -- success closes the breaker,
    failure re-opens it for another cooldown.  Time comes from the
    injected clock, never the wall.

    ``min_open_interval`` is the flap guard: a success reported while
    the breaker is still OPEN (e.g. an out-of-band probe racing the
    data path) is *ignored* for the first ``min_open_interval``
    clock-seconds after the trip, counted on the ``breaker_flaps``
    metric instead of closing the breaker.  Without it, alternating
    success/failure oscillates the breaker every probe and the data
    path never gets a stable degraded mode.  The default of ``0``
    keeps the historical close-on-any-success behaviour; the guard
    never delays the HALF_OPEN trial, which may still close the
    breaker after ``reset_timeout``.  :meth:`reset` bypasses the guard
    for the cases where the node genuinely changed (rebuild onto a
    fresh replacement).
    """

    def __init__(
        self,
        clock: Clock,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        min_open_interval: float = 0.0,
        metrics=None,
    ) -> None:
        self.clock = clock
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.min_open_interval = float(min_open_interval)
        self.metrics = metrics
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> BreakerState:
        if (
            self._state is BreakerState.OPEN
            and self.clock.time() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may go out right now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        if (
            self.state is BreakerState.OPEN
            and self.clock.time() - self._opened_at < self.min_open_interval
        ):
            # Flap guard: the breaker just tripped; one lucky success
            # does not un-trip it.  Count the suppressed flap and keep
            # the cooldown running.
            if self.metrics is not None:
                self.metrics.counter("breaker_flaps").inc()
            return
        self.reset()

    def reset(self) -> None:
        """Force-close, bypassing the flap guard (node was replaced)."""
        self._failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._failures = 0
        self._opened_at = self.clock.time()

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state.value}, failures={self._failures})"


class HealthMonitor:
    """Heartbeat prober + auto-heal driver for one :class:`ClusterArray`.

    Constructing the monitor installs a breaker per column on
    ``array.breakers``.  Drive it either with the background loop
    (:meth:`start` / :meth:`stop`) or, in deterministic tests, by
    calling :meth:`probe_once` / :meth:`heal` directly.

    ``spare_provider`` is an async callable ``column -> address`` that
    produces a blank replacement node (e.g.
    :meth:`LocalCluster.start_replacement`); ``on_rebuilt`` is called
    with the column after the rebuild repoints the array (e.g.
    :meth:`LocalCluster.promote_replacement`).  Without a provider the
    monitor only observes.
    """

    def __init__(
        self,
        array: ClusterArray,
        *,
        interval: float = 1.0,
        miss_threshold: int = 3,
        probe_timeout: float = 0.5,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        min_open_interval: float = 0.0,
        spare_provider=None,
        on_rebuilt=None,
        rebuild_batch: int = 16,
    ) -> None:
        self.array = array
        self.clock = array.clock
        self.interval = float(interval)
        self.miss_threshold = int(miss_threshold)
        self.probe_policy = RetryPolicy(attempts=1, timeout=float(probe_timeout))
        self.spare_provider = spare_provider
        self.on_rebuilt = on_rebuilt
        self.rebuild_batch = int(rebuild_batch)
        n = array.code.n_cols
        self.misses = [0] * n
        self.failed = [False] * n
        self.healing: set[int] = set()
        array.breakers = [
            CircuitBreaker(
                self.clock,
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                min_open_interval=min_open_interval,
                metrics=array.metrics,
            )
            for _ in range(n)
        ]
        self._task: asyncio.Task | None = None

    # -- probing -------------------------------------------------------------

    def _probe_client(self, column: int) -> NodeClient:
        # Rebuilt per probe so replacements are picked up automatically;
        # shares the array's seams (and metrics) for determinism.
        array = self.array
        return NodeClient(
            array.clients[column].address,
            policy=self.probe_policy,
            metrics=array.metrics,
            transport=array.transport,
            clock=array.clock,
            tracer=array.tracer,
        )

    async def probe_once(self) -> list[bool]:
        """One heartbeat round; returns per-column liveness.

        Updates miss counters and feeds the breakers, then marks any
        column over the miss threshold as failed (auto-heal is
        :meth:`heal`'s job, so deterministic tests can split the two).
        """
        array = self.array
        cols = range(array.code.n_cols)

        async def probe(col: int) -> bool:
            try:
                await self._probe_client(col).request("ping")
            except ClusterError:
                return False
            return True

        alive = list(await asyncio.gather(*(probe(c) for c in cols)))
        for col, ok in zip(cols, alive):
            breaker = array.breakers[col]
            if ok:
                self.misses[col] = 0
                if self.failed[col] and col not in self.healing:
                    self.failed[col] = False  # came back on its own
                breaker.record_success()
            else:
                self.misses[col] += 1
                breaker.record_failure()
                array.metrics.counter("heartbeat_misses").inc()
                if self.misses[col] >= self.miss_threshold and not self.failed[col]:
                    self.failed[col] = True
                    array.metrics.counter("columns_failed").inc()
        return alive

    # -- healing -------------------------------------------------------------

    async def heal(self) -> list[int]:
        """Rebuild every failed column onto a spare; returns columns healed.

        Sequential by design: RAID-6 tolerates two losses, and a
        rebuild already reads every surviving column.
        """
        if self.spare_provider is None:
            return []
        healed: list[int] = []
        for col, bad in enumerate(self.failed):
            if not bad or col in self.healing:
                continue
            self.healing.add(col)
            try:
                address = await self.spare_provider(col)
                scheduler = RebuildScheduler(
                    self.array, batch_stripes=self.rebuild_batch
                )
                await scheduler.rebuild_column(col, address)
                if self.on_rebuilt is not None:
                    self.on_rebuilt(col)
            finally:
                self.healing.discard(col)
            self.failed[col] = False
            self.misses[col] = 0
            # reset(), not record_success(): the column is a brand-new
            # node, so the flap guard must not keep it short-circuited.
            self.array.breakers[col].reset()
            self.array.metrics.counter("columns_healed").inc()
            healed.append(col)
        return healed

    # -- background driving --------------------------------------------------

    def start(self) -> asyncio.Task:
        """Run probe + heal rounds forever as a background task."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("health loop already running")

        async def loop() -> None:
            while True:
                await self.probe_once()
                if any(self.failed):
                    await self.heal()
                await self.clock.sleep(self.interval)

        self._task = asyncio.get_running_loop().create_task(loop())
        return self._task

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """Operator view: per-column liveness, breaker state, healing."""
        return {
            "columns": [
                {
                    "column": col,
                    "misses": self.misses[col],
                    "failed": self.failed[col],
                    "healing": col in self.healing,
                    "breaker": self.array.breakers[col].state.value,
                }
                for col in range(self.array.code.n_cols)
            ]
        }
