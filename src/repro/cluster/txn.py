"""Atomic stripe updates: two-phase commit over the strip nodes.

The distributed analogue of :class:`repro.array.journal.JournaledRAID6Array`.
A plain :meth:`ClusterArray.write_stripe` scatters strips with no
ordering guarantee, so a client crash mid-scatter reopens the RAID
write hole across machines: some columns new, some old, parity mixed.
:class:`TwoPhaseWriter` closes it with the classic presumed-abort
protocol:

1. **Prepare** -- the client sends every participating column its new
   strip image; each node logs it as a durable
   :class:`~repro.cluster.node.NodeIntent` without touching the disk.
2. **Commit** -- once all reachable participants hold the intent, the
   client sends ``commit``; each node applies and retires the intent
   atomically (the node-local journaled apply).
3. **Recovery** -- after any crash, :meth:`TwoPhaseWriter.recover`
   collects pending intents from the nodes and resolves each
   transaction: if *any* participant already committed, the decision
   was commit, so the rest roll forward; otherwise presumed abort
   rolls everyone back.  All verbs are idempotent, so recovery can be
   re-run and can race a still-live client safely.

Either way every stripe lands all-old or all-new -- the crash-point
sweep in ``tests/cluster/test_txn.py`` proves it for every client- and
node-side crash position, mirroring ``tests/array/test_journal.py``.

Crash injection: :class:`TxnCrashPoint` kills the *client* before its
``n``-th protocol RPC (:class:`~repro.cluster.node.NodeCrashPlan`
covers the node side).  Both are deterministic, so sim scenarios
replay bit-identically.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.cluster.client import (
    ClusterArray,
    ClusterDegradedError,
    ClusterError,
    NodeUnavailableError,
    RemoteDiskError,
)

__all__ = ["ClientCrash", "TxnCrashPoint", "TwoPhaseWriter"]


class ClientCrash(Exception):
    """Injected client death: the coordinator vanished mid-protocol.

    Tests catch it where a real deployment would lose the process; the
    cluster is then in whatever state the completed RPCs left, and
    :meth:`TwoPhaseWriter.recover` must converge it.
    """


class TxnCrashPoint:
    """Deterministic client-side crash trigger, counted in RPCs.

    ``arm(after=n)`` makes the writer die immediately before its
    ``n+1``-th protocol RPC (prepare/commit/abort, in issue order), so
    a sweep over ``n`` covers every client-side crash position of a
    write.  Disarmed by default and after firing.
    """

    def __init__(self) -> None:
        self._remaining: int | None = None
        self.steps = 0

    def arm(self, *, after: int = 0) -> None:
        self._remaining = int(after)

    def step(self) -> None:
        """Account one imminent RPC; raises :class:`ClientCrash` if armed out."""
        self.steps += 1
        if self._remaining is None:
            return
        if self._remaining == 0:
            self._remaining = None
            raise ClientCrash(f"client crashed before protocol RPC #{self.steps}")
        self._remaining -= 1


class TwoPhaseWriter:
    """Coordinator for atomic full-stripe writes on a :class:`ClusterArray`.

    ``client_id`` seeds the transaction-id sequence
    (``"<client_id>-<n>"``); keep it unique per live coordinator and
    deterministic under the sim (no randomness inside).  RPCs are
    issued sequentially in column order so crash positions are
    well-defined and reproducible.
    """

    def __init__(self, array: ClusterArray, *, client_id: str = "txn") -> None:
        self.array = array
        self.client_id = str(client_id)
        self.crash = TxnCrashPoint()
        self._seq = 0

    def _next_txn(self) -> str:
        self._seq += 1
        return f"{self.client_id}-{self._seq}"

    async def _rpc(
        self, column: int, verb: str, header: dict, payload: bytes = b""
    ) -> dict:
        self.crash.step()
        # The stripe rides along for routing: on an elastic array the
        # (column, stripe) pair resolves to a node via placement.
        reply, _ = await self.array._column_request(
            column, verb, header, payload, stripe=header.get("stripe")
        )
        return reply

    # -- the write protocol --------------------------------------------------

    async def write_stripe(self, stripe: int, buf: np.ndarray) -> list[int]:
        """Atomically replace one stripe with ``buf`` (all columns).

        Degraded-write semantics match
        :meth:`ClusterArray.write_stripe`: unreachable columns are
        excluded from the transaction (their stale strips go on the
        dirty list for the scrubber), up to the RAID-6 budget of two --
        beyond that the transaction aborts and
        :class:`ClusterDegradedError` is raised.  Returns the skipped
        columns; the stripe is all-new on the participants when the
        call returns.
        """
        array = self.array
        array._check_stripe(stripe)
        cols = list(range(array.code.n_cols))
        txn = self._next_txn()
        array.metrics.counter("txn_writes").inc()

        prepared: list[int] = []
        skipped: list[int] = []
        for col in cols:
            header = {"txn": txn, "stripe": stripe, "part": cols}
            try:
                await self._rpc(
                    col, "prepare", header, np.ascontiguousarray(buf[col]).data
                )
            except (NodeUnavailableError, RemoteDiskError):
                skipped.append(col)
            else:
                prepared.append(col)

        if len(skipped) > 2:
            await self._abort(txn, prepared, stripe=stripe)
            raise ClusterDegradedError(
                f"stripe {stripe}: txn {txn} lost columns {skipped}"
            )

        committed_somewhere = False
        dirty: list[int] = []
        for col in prepared:
            try:
                await self._rpc(col, "commit", {"txn": txn, "stripe": stripe})
            except (NodeUnavailableError, RemoteDiskError):
                # The decision was commit; this participant crashed or
                # vanished before acknowledging.  Its intent (or its
                # stale strip) is recovered later -- mark it dirty.
                dirty.append(col)
            else:
                committed_somewhere = True
        if not committed_somewhere and prepared:
            # Every commit RPC failed: the decision still stands, and
            # recovery will roll the survivors forward.
            array.metrics.counter("txn_commit_stalls").inc()

        if skipped or dirty:
            array.metrics.counter("degraded_writes").inc()
            array.dirty_stripes.setdefault(stripe, set()).update(skipped + dirty)
        elif not skipped:
            array.dirty_stripes.pop(stripe, None)
        return skipped

    async def _abort(
        self, txn: str, columns: list[int], *, stripe: int | None = None
    ) -> None:
        for col in columns:
            try:
                await self._rpc(col, "abort", {"txn": txn, "stripe": stripe})
            except (NodeUnavailableError, RemoteDiskError):
                pass  # presumed abort: an unreachable node aborts on recovery

    # -- crash recovery ------------------------------------------------------

    async def recover(self) -> dict:
        """Resolve every pending intent left by crashed writers.

        Scans all columns for logged intents, then decides each
        transaction the presumed-abort way: any participant in state
        ``committed`` means the coordinator reached phase 2, so the
        rest roll forward; otherwise everyone rolls back.  Unreachable
        nodes are skipped and picked up by the next pass (the verbs
        are idempotent).  Returns
        ``{"rolled_forward": [...], "rolled_back": [...]}`` of txn ids.
        """
        array = self.array
        cols = list(range(array.code.n_cols))

        async def intents_of(col: int) -> list[dict]:
            try:
                reply, _ = await array.clients[col].request("intents")
            except ClusterError:
                return []
            return list(reply.get("txns", ()))

        found = await asyncio.gather(*(intents_of(c) for c in cols))
        pending: dict[str, dict] = {}
        for col, recs in zip(cols, found):
            for rec in recs:
                entry = pending.setdefault(
                    rec["txn"],
                    {"stripe": int(rec["stripe"]),
                     "part": [int(c) for c in rec["part"]] or cols,
                     "holders": []},
                )
                entry["holders"].append(col)

        rolled_forward: list[str] = []
        rolled_back: list[str] = []
        for txn in sorted(pending):
            entry = pending[txn]
            commit = False
            for col in entry["part"]:
                try:
                    reply, _ = await array.clients[col].request(
                        "txn-status", {"txn": txn}
                    )
                except ClusterError:
                    continue
                if reply.get("state") == "committed":
                    commit = True
                    break
            verb = "commit" if commit else "abort"
            for col in entry["holders"]:
                try:
                    await array.clients[col].request(verb, {"txn": txn})
                except ClusterError:
                    continue  # next recovery pass finishes the job
                if commit:
                    array.dirty_stripes.get(entry["stripe"], set()).discard(col)
            (rolled_forward if commit else rolled_back).append(txn)
            array.metrics.counter(
                "txn_rolled_forward" if commit else "txn_rolled_back"
            ).inc()
        return {"rolled_forward": rolled_forward, "rolled_back": rolled_back}
