"""Cluster client: per-node RPC with retries, and the striped array.

:class:`NodeClient` is the transport layer -- one request per
connection, a per-request timeout, bounded retries with exponential
backoff (plus optional seeded jitter), and a metrics trail of every
timeout, checksum failure and reconnect.  All timing -- timeouts,
backoff sleeps, latency observations -- flows through an injectable
:class:`~repro.sim.clock.Clock` and all byte I/O through an injectable
:class:`~repro.sim.transport.Transport`, so the same code path runs on
real sockets in production and on virtual time + in-memory pipes under
:mod:`repro.sim`, where scenarios replay bit-identically from a seed.  :class:`ClusterArray` is the data path: it stripes
full-stripe writes across ``k + 2`` :class:`~repro.cluster.node.StripNode`
servers (column ``c`` lives on node ``c``; the cluster relies on node
placement, not rotation, for failure independence), serves **degraded
reads** by pulling survivor strips and decoding with the configured
code (the paper's Algorithm 4 path for ``liberation-optimal``, plan
cached per erasure pattern), and degrades gracefully while any two
nodes are unreachable or faulty.

Everything here is asyncio-native; the CLI and examples wrap entry
points in ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass

import numpy as np

from repro.cluster.protocol import FrameChecksumError, ProtocolError, read_frame, write_frame
from repro.codes.base import RAID6Code
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock, RealClock
from repro.sim.transport import AsyncioTransport, Transport
from repro.utils.words import WORD_DTYPE

__all__ = [
    "RetryPolicy",
    "ClusterError",
    "NodeUnavailableError",
    "DeadlineExceededError",
    "RemoteDiskError",
    "ClusterDegradedError",
    "NodeClient",
    "ClusterArray",
    "send_verb",
]


class ClusterError(Exception):
    """Base class for distributed-array failures."""


class NodeUnavailableError(ClusterError):
    """A node stayed unreachable/faulty through the whole retry budget."""


class DeadlineExceededError(NodeUnavailableError):
    """The request's total deadline expired before an attempt succeeded.

    A subclass of :class:`NodeUnavailableError` on purpose: to the data
    path a column that cannot answer within its latency budget *is*
    unavailable (degraded reads decode around it, circuit breakers
    count it), but callers that care -- admission control deciding
    whether to shed, tests distinguishing a blown deadline from an
    exhausted per-RPC retry budget -- can catch the subclass.
    """


class RemoteDiskError(ClusterError):
    """The node answered, but its disk could not serve the strip."""


class ClusterDegradedError(ClusterError):
    """More columns are lost than the code can reconstruct."""


@dataclass
class RetryPolicy:
    """Per-request robustness knobs.

    ``timeout`` bounds every attempt; transport failures (refused /
    dropped connections, timeouts, frame checksum mismatches) are
    retried up to ``attempts`` times with exponential backoff starting
    at ``backoff`` seconds.  Deterministic node answers -- a latent
    sector error, a failed disk -- are *not* retried: replaying them
    cannot succeed, the erasure code is the retry.

    ``jitter`` spreads each backoff delay uniformly over
    ``[d, d * (1 + jitter)]`` to decorrelate retry storms.  The random
    source is the *caller's* seeded ``random.Random`` (threaded through
    :meth:`delays`), never a module-level global, so retry timing is
    reproducible under simulation.

    ``deadline`` caps the *total* time one request may spend across all
    attempts, backoff sleeps included -- the budget a caller (the
    gateway's admission control) can actually reason about, where
    ``timeout`` alone only bounds each attempt and the worst case grows
    with ``attempts``.  The running attempt's timeout is clipped to the
    remaining budget, a backoff that would outlive the budget is not
    slept, and expiry raises :class:`DeadlineExceededError`.  Timing
    flows through the client's injectable clock, so deadlines work in
    virtual seconds under simulation.  ``None`` (the default) preserves
    the historical per-RPC-only behaviour.
    """

    attempts: int = 3
    timeout: float = 2.0
    backoff: float = 0.02
    multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.0
    deadline: float | None = None

    def delays(self, rng: random.Random | None = None):
        d = self.backoff
        for _ in range(max(0, self.attempts - 1)):
            delay = d
            if self.jitter and rng is not None:
                delay *= 1.0 + self.jitter * rng.random()
            yield min(delay, self.max_backoff)
            d = min(d * self.multiplier, self.max_backoff)


async def send_verb(
    address: tuple[str, int],
    verb: str,
    header: dict | None = None,
    payload: bytes = b"",
    *,
    transport: Transport | None = None,
    timeout: float | None = 5.0,
    clock: Clock | None = None,
) -> tuple[dict, bytes]:
    """One-shot request with no retry (control-plane helper).

    ``timeout`` bounds the whole exchange (connect + request + reply)
    so a hung node cannot stall control-plane callers forever; pass
    ``None`` to wait indefinitely.  The timer runs on ``clock`` so
    simulated callers time out in virtual seconds.
    """
    transport = transport if transport is not None else AsyncioTransport()
    clock = clock if clock is not None else RealClock()

    async def exchange() -> tuple[dict, bytes]:
        reader, writer = await transport.connect(address)
        try:
            await write_frame(writer, {"verb": verb, **(header or {})}, payload)
            return await read_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    if timeout is None:
        return await exchange()
    return await clock.wait_for(exchange(), timeout)


class NodeClient:
    """Retrying RPC channel to one strip node."""

    def __init__(
        self,
        address: tuple[str, int],
        *,
        policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        transport: Transport | None = None,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
        hedge_after: float | None = None,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.policy = policy or RetryPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.transport = transport if transport is not None else AsyncioTransport()
        self.clock = clock if clock is not None else RealClock()
        self.rng = rng
        self.tracer = tracer
        #: launch a duplicate request after this many seconds without a
        #: reply and take whichever finishes first (tail-latency hedge);
        #: None disables.  Safe because every verb is idempotent -- the
        #: retry loop already requires that.
        self.hedge_after = hedge_after

    async def _attempt(self, header: dict, payload: bytes) -> tuple[dict, bytes]:
        reader, writer = await self.transport.connect(self.address)
        try:
            await write_frame(writer, header, payload)
            return await read_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request(
        self, verb: str, header: dict | None = None, payload: bytes = b""
    ) -> tuple[dict, bytes]:
        """Issue one verb; returns ``(reply_header, reply_payload)``.

        Raises :class:`RemoteDiskError` for ``latent`` / ``disk-failed``
        answers and :class:`NodeUnavailableError` once the retry budget
        is exhausted by transport-level failures.
        """
        issue = (
            self._request_with_retries if self.hedge_after is None else self._hedged
        )
        if self.tracer is None:
            return await issue(verb, header, payload)
        with self.tracer.span(f"rpc.{verb}", bytes_out=len(payload)) as span:
            try:
                reply, data = await issue(verb, header, payload)
            except ClusterError as exc:
                span.set("outcome", type(exc).__name__)
                raise
            span.set("outcome", "ok")
            span.set("bytes_in", len(data))
            return reply, data

    async def _hedged(
        self, verb: str, header: dict | None, payload: bytes
    ) -> tuple[dict, bytes]:
        """Issue the request; past ``hedge_after`` seconds, race a twin.

        The winner is the first attempt to *succeed*; a lone failure
        waits for its sibling, and only when both fail does the first
        error propagate.  Losers are cancelled (their connection drops,
        which the node handles like any peer departure).
        """
        first = asyncio.ensure_future(
            self._request_with_retries(verb, header, payload)
        )
        timer = asyncio.ensure_future(self.clock.sleep(self.hedge_after))
        try:
            await asyncio.wait({first, timer}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            timer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await timer
        if first.done():
            return first.result()  # fast path: no hedge needed
        self.metrics.counter("hedged_requests").inc()
        second = asyncio.ensure_future(
            self._request_with_retries(verb, header, payload)
        )
        attempts = (first, second)  # fixed preference order: deterministic
        first_error: BaseException | None = None
        while True:
            pending = [t for t in attempts if not t.done()]
            if not pending:
                break
            await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
            for task in attempts:
                if task.done() and task.exception() is None:
                    for loser in attempts:
                        if not loser.done():
                            loser.cancel()
                            with contextlib.suppress(BaseException):
                                await loser
                    if task is second:
                        self.metrics.counter("hedge_wins").inc()
                    return task.result()
        for task in attempts:
            if task.exception() is not None:
                first_error = task.exception()
                break
        assert first_error is not None
        raise first_error

    async def _request_with_retries(
        self, verb: str, header: dict | None, payload: bytes
    ) -> tuple[dict, bytes]:
        full_header = {"verb": verb, **(header or {})}
        policy = self.policy
        delays = policy.delays(self.rng)
        clock = self.clock
        start = clock.time()

        def remaining() -> float | None:
            if policy.deadline is None:
                return None
            return policy.deadline - (clock.time() - start)

        def expired(budget: float | None) -> bool:
            return budget is not None and budget <= 0

        self.metrics.counter("requests").inc()
        for attempt in range(policy.attempts):
            budget = remaining()
            if expired(budget):
                self.metrics.counter("deadline_exceeded").inc()
                self.metrics.counter(f"deadline_exceeded_{verb}").inc()
                raise DeadlineExceededError(
                    f"node {self.address}: deadline {policy.deadline}s exhausted "
                    f"after {attempt} attempt(s)"
                )
            attempt_timeout = (
                policy.timeout if budget is None else min(policy.timeout, budget)
            )
            t0 = clock.time()
            try:
                reply, data = await clock.wait_for(
                    self._attempt(full_header, payload), attempt_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                self.metrics.counter("timeouts").inc()
            except FrameChecksumError:
                self.metrics.counter("frame_errors").inc()
            except ProtocolError:
                self.metrics.counter("frame_errors").inc()
            except (ConnectionError, EOFError, OSError):
                self.metrics.counter("connection_errors").inc()
            else:
                self.metrics.histogram("request_latency_s").observe(clock.time() - t0)
                if reply.get("status") == "ok":
                    return reply, data
                error = reply.get("error", "unknown")
                if error in ("latent", "disk-failed"):
                    raise RemoteDiskError(
                        f"{self.address}: {error}: {reply.get('detail', '')}"
                    )
                # Transient server-side conditions (injected io-error,
                # overload): spend a retry on them.
                self.metrics.counter("remote_errors").inc()
            if attempt < policy.attempts - 1:
                delay = next(delays)
                budget = remaining()
                if budget is not None and delay >= budget:
                    # Sleeping would burn the whole budget with no
                    # attempt left to spend it on: fail now, honestly.
                    self.metrics.counter("deadline_exceeded").inc()
                    self.metrics.counter(f"deadline_exceeded_{verb}").inc()
                    raise DeadlineExceededError(
                        f"node {self.address}: backoff of {delay:.3f}s exceeds "
                        f"remaining deadline budget {max(budget, 0.0):.3f}s"
                    )
                self.metrics.counter("retries").inc()
                await clock.sleep(delay)
        # The whole retry budget burned on transport failures: surface
        # it distinctly from per-attempt counters so dashboards can
        # alert on *requests that failed*, per verb, not just noise.
        self.metrics.counter("retries_exhausted").inc()
        self.metrics.counter(f"retries_exhausted_{verb}").inc()
        raise NodeUnavailableError(
            f"node {self.address} unreachable after {policy.attempts} attempts"
        )


class ClusterArray:
    """A RAID-6 array whose strips live on ``k + 2`` network nodes.

    The mirror image of :class:`repro.array.raid6.RAID6Array` with the
    disk accesses replaced by concurrent RPCs.  Reads always succeed
    while at most two columns are lost (in any mix of stopped nodes,
    network faults and disk errors); writes skip unreachable columns
    the way a degraded array skips failed disks, leaving the stripe
    recoverable through the parity that *was* written.
    """

    def __init__(
        self,
        code: RAID6Code,
        addresses: list[tuple[str, int]] | None,
        n_stripes: int,
        *,
        policy: RetryPolicy | None = None,
        transport: Transport | None = None,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
        hedge_after: float | None = None,
    ) -> None:
        # ``addresses=None`` is the elastic mode: a subclass overrides
        # the ``_client_for`` / ``_breaker_for`` resolvers to route each
        # (column, stripe) through placement instead of a fixed list.
        if addresses is not None and len(addresses) != code.n_cols:
            raise ValueError(
                f"need {code.n_cols} node addresses (k+2), got {len(addresses)}"
            )
        if n_stripes <= 0:
            raise ValueError("n_stripes must be positive")
        self.code = code
        self.n_stripes = int(n_stripes)
        self.policy = policy or RetryPolicy()
        self.metrics = MetricsRegistry()
        self.transport = transport if transport is not None else AsyncioTransport()
        self.clock = clock if clock is not None else RealClock()
        self.rng = rng
        self.tracer = tracer
        self.hedge_after = hedge_after
        self.clients = (
            [] if addresses is None else [self._make_client(addr) for addr in addresses]
        )
        #: per-column circuit breakers, installed by
        #: :class:`repro.cluster.health.HealthMonitor`; None = no gating
        self.breakers: list | None = None
        #: stripes whose last write skipped columns -- the scrubber's
        #: priority queue (stripe -> set of stale columns)
        self.dirty_stripes: dict[int, set[int]] = {}

    def _make_client(self, address: tuple[str, int]) -> NodeClient:
        return NodeClient(
            address,
            policy=self.policy,
            metrics=self.metrics,
            transport=self.transport,
            clock=self.clock,
            rng=self.rng,
            tracer=self.tracer,
            hedge_after=self.hedge_after,
        )

    # -- geometry ----------------------------------------------------------

    @property
    def stripe_data_bytes(self) -> int:
        return self.code.data_bytes

    @property
    def capacity(self) -> int:
        """User-addressable bytes."""
        return self.n_stripes * self.stripe_data_bytes

    def _check_stripe(self, stripe: int) -> None:
        if not 0 <= stripe < self.n_stripes:
            raise IndexError(f"stripe {stripe} out of range [0, {self.n_stripes})")

    def replace_node(self, column: int, address: tuple[str, int]) -> None:
        """Point a column at a replacement node (post-rebuild).

        Any circuit-breaker state belongs to the *old* node, so the
        column's breaker resets -- otherwise a freshly rebuilt column
        would stay short-circuited for the rest of the cooldown.
        """
        self.clients[column] = self._make_client(address)
        if self.breakers is not None:
            self.breakers[column].reset()

    # -- strip RPCs --------------------------------------------------------

    def _client_for(self, column: int, stripe: int | None) -> NodeClient:
        """Resolve the node serving ``column`` (of ``stripe``).

        The static array ignores ``stripe`` -- column *c* lives on node
        *c* forever.  :class:`~repro.cluster.elastic.ElasticArray`
        overrides this to route through the placement map at the
        current membership epoch.
        """
        return self.clients[column]

    def _breaker_for(self, column: int, stripe: int | None):
        return self.breakers[column] if self.breakers is not None else None

    async def _column_request(
        self,
        column: int,
        verb: str,
        header: dict | None = None,
        payload: bytes = b"",
        *,
        stripe: int | None = None,
    ) -> tuple[dict, bytes]:
        """Data-plane RPC to one column, gated by its circuit breaker.

        An open breaker short-circuits to :class:`NodeUnavailableError`
        without touching the wire; outcomes feed back so the breaker
        sees every probe.  :class:`RemoteDiskError` counts as a
        *success* -- the node answered, its disk is the problem.
        """
        breaker = self._breaker_for(column, stripe)
        if breaker is not None and not breaker.allow():
            self.metrics.counter("breaker_short_circuits").inc()
            raise NodeUnavailableError(
                f"column {column}: circuit breaker open"
            )
        try:
            result = await self._client_for(column, stripe).request(
                verb, header, payload
            )
        except NodeUnavailableError:
            if breaker is not None:
                breaker.record_failure()
            raise
        except RemoteDiskError:
            if breaker is not None:
                breaker.record_success()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    async def _fetch_strip(self, column: int, stripe: int) -> np.ndarray:
        _, payload = await self._column_request(
            column, "get", {"stripe": stripe}, stripe=stripe
        )
        words = np.frombuffer(payload, dtype=WORD_DTYPE)
        expected = self.code.rows * (self.code.element_size // 8)
        if words.size != expected:
            raise ProtocolError(
                f"column {column} returned {words.size} words, expected {expected}"
            )
        return words.reshape(self.code.rows, -1)

    async def _store_strip(self, column: int, stripe: int, strip: np.ndarray) -> None:
        # Ship a view, not a copy: the frame writer streams memoryviews
        # straight to the socket (ascontiguousarray is a no-op for the
        # usual stripe-column slice and keeps the buffer alive via the
        # view for the rare strided caller).
        await self._column_request(
            column,
            "put",
            {"stripe": stripe},
            np.ascontiguousarray(strip).data,
            stripe=stripe,
        )

    async def _gather_columns(
        self, stripe: int, columns: list[int], buf: np.ndarray
    ) -> list[int]:
        """Fetch ``columns`` into ``buf`` concurrently; returns the losers."""
        results = await asyncio.gather(
            *(self._fetch_strip(c, stripe) for c in columns), return_exceptions=True
        )
        missing: list[int] = []
        for col, res in zip(columns, results):
            if isinstance(res, (NodeUnavailableError, RemoteDiskError)):
                missing.append(col)
            elif isinstance(res, BaseException):
                raise res
            else:
                buf[col] = res
        return missing

    # -- stripe I/O --------------------------------------------------------

    async def read_stripe(self, stripe: int) -> np.ndarray:
        """Assemble one stripe buffer, decoding around lost columns.

        The sunny-day path touches only the ``k`` data columns; any
        loss widens the fetch to the parity columns and runs the
        erasure decode on the survivors.
        """
        self._check_stripe(stripe)
        code = self.code
        buf = code.alloc_stripe()
        missing = await self._gather_columns(stripe, list(range(code.k)), buf)
        if missing:
            parity_lost = await self._gather_columns(
                stripe, [code.p_col, code.q_col], buf
            )
            missing = sorted(missing + parity_lost)
            if len(missing) > 2:
                raise ClusterDegradedError(
                    f"stripe {stripe}: columns {missing} lost; RAID-6 tolerates 2"
                )
            for col in missing:
                buf[col] = 0
            code.decode(buf, missing)
            self.metrics.counter("decodes").inc()
            self.metrics.counter("degraded_reads").inc()
        return buf

    async def write_stripe(
        self, stripe: int, buf: np.ndarray, *, columns: list[int] | None = None
    ) -> list[int]:
        """Scatter (selected columns of) a stripe buffer to the nodes.

        Columns whose node cannot be reached are skipped -- degraded
        write semantics -- unless that would leave the stripe beyond
        RAID-6 tolerance, which raises :class:`ClusterDegradedError`.
        Returns the columns *skipped* (empty means fully durable), and
        records them in :attr:`dirty_stripes` so the scrubber repairs
        the stale columns first once their nodes return.
        """
        self._check_stripe(stripe)
        cols = list(range(self.code.n_cols)) if columns is None else list(columns)
        results = await asyncio.gather(
            *(self._store_strip(c, stripe, buf[c]) for c in cols),
            return_exceptions=True,
        )
        skipped: list[int] = []
        for col, res in zip(cols, results):
            if isinstance(res, (NodeUnavailableError, RemoteDiskError)):
                skipped.append(col)
            elif isinstance(res, BaseException):
                raise res
        if skipped:
            self.metrics.counter("degraded_writes").inc()
            if len(skipped) > 2:
                raise ClusterDegradedError(
                    f"stripe {stripe}: write lost columns {skipped}"
                )
            self.dirty_stripes.setdefault(stripe, set()).update(skipped)
        elif columns is None:
            # A clean full-stripe write supersedes any stale columns.
            self.dirty_stripes.pop(stripe, None)
        return skipped

    # -- byte-addressed user I/O -------------------------------------------

    def _stripe_payload(self, buf: np.ndarray) -> memoryview:
        """Zero-copy byte view of the data columns (``buf`` is
        C-contiguous, so its leading-column slice is too)."""
        return memoryview(buf[: self.code.k]).cast("B")

    def _fill_data_columns(self, buf: np.ndarray, payload: bytes) -> None:
        code = self.code
        words = np.frombuffer(payload, dtype=np.uint8)
        for col in range(code.k):
            strip = words[col * code.strip_bytes : (col + 1) * code.strip_bytes]
            buf[col] = strip.view(WORD_DTYPE).reshape(code.rows, -1)

    async def write(self, offset: int, data: bytes) -> None:
        """Write user bytes; stripe-aligned spans take the encode path,
        everything else is a stripe-granular read-modify-write."""
        if not data:
            return
        if offset < 0 or offset + len(data) > self.capacity:
            raise ValueError("write outside the array")
        sdb = self.stripe_data_bytes
        pos, end = offset, offset + len(data)
        while pos < end:
            stripe, within = divmod(pos, sdb)
            take = min(end - pos, sdb - within)
            chunk = data[pos - offset : pos - offset + take]
            if within == 0 and take == sdb:
                buf = self.code.alloc_stripe()
                self._fill_data_columns(buf, chunk)
                self.metrics.counter("full_stripe_writes").inc()
            else:
                buf = await self.read_stripe(stripe)
                blob = bytearray(self._stripe_payload(buf))
                blob[within : within + take] = chunk
                self._fill_data_columns(buf, bytes(blob))
                self.metrics.counter("rmw_writes").inc()
            self.code.encode(buf)
            await self.write_stripe(stripe, buf)
            pos += take

    async def read(self, offset: int, length: int) -> bytes:
        """Read user bytes, transparently decoding around failures."""
        if length < 0 or offset < 0 or offset + length > self.capacity:
            raise ValueError("read outside the array")
        if length == 0:
            return b""
        sdb = self.stripe_data_bytes
        first, last = offset // sdb, (offset + length - 1) // sdb
        stripes = await asyncio.gather(
            *(self.read_stripe(s) for s in range(first, last + 1))
        )
        blob = b"".join(self._stripe_payload(buf) for buf in stripes)
        start = offset - first * sdb
        return blob[start : start + length]

    # -- health / metrics --------------------------------------------------

    async def ping(self) -> list[bool]:
        """Liveness of every column's node (never raises)."""
        results = await asyncio.gather(
            *(c.request("ping") for c in self.clients), return_exceptions=True
        )
        return [not isinstance(r, BaseException) for r in results]

    async def node_stats(self) -> list[dict | None]:
        """Each node's ``stats`` reply header (None if unreachable)."""
        results = await asyncio.gather(
            *(c.request("stats") for c in self.clients), return_exceptions=True
        )
        return [None if isinstance(r, BaseException) else r[0] for r in results]

    async def stats(self) -> dict:
        """Aggregate view: client-side metrics plus per-node snapshots."""
        nodes = await self.node_stats()
        return {
            "client": self.metrics.snapshot(),
            "nodes": [
                None
                if reply is None
                else {"column": reply.get("column"),
                      "stats": reply.get("stats"),
                      "disk": reply.get("disk")}
                for reply in nodes
            ],
        }
