"""repro.cluster -- the distributed stripe store.

The paper's encode/decode kernels, lifted from a single-process
simulator to separate failure domains: each of the ``k + 2`` columns
lives on its own asyncio TCP :class:`~repro.cluster.node.StripNode`,
and a :class:`~repro.cluster.client.ClusterArray` client stripes
writes across them, serves degraded reads by decoding survivor strips
(the optimal Algorithm 4 path for Liberation codes), and rebuilds lost
columns in the background via
:class:`~repro.cluster.rebuild.RebuildScheduler`.

Modules:

* :mod:`repro.cluster.protocol` -- length-prefixed CRC-32 framing;
* :mod:`repro.cluster.node` -- the per-column strip server;
* :mod:`repro.cluster.client` -- retrying RPC + the striped array;
* :mod:`repro.cluster.rebuild` -- background batch rebuild;
* :mod:`repro.cluster.scrub` -- distributed scrub & repair (the
  paper's single-column locator, applied over the wire);
* :mod:`repro.cluster.health` -- heartbeats, circuit breakers and
  automatic fail-to-rebuilt healing;
* :mod:`repro.cluster.txn` -- atomic stripe updates via two-phase
  commit (the distributed write-hole fix);
* :mod:`repro.cluster.metrics` -- counters/histograms behind the
  ``stats`` verb and the ``repro stats`` CLI view;
* :mod:`repro.cluster.local` -- an in-process ``k + 2``-node cluster
  for tests and examples.
"""

from repro.cluster.client import (
    ClusterArray,
    ClusterDegradedError,
    ClusterError,
    NodeClient,
    NodeUnavailableError,
    RemoteDiskError,
    RetryPolicy,
    send_verb,
)
from repro.cluster.health import BreakerState, CircuitBreaker, HealthMonitor
from repro.cluster.local import LocalCluster
from repro.cluster.metrics import Counter, Histogram, MetricsRegistry
from repro.cluster.node import NodeCrashPlan, NodeCrashed, StripNode
from repro.cluster.protocol import (
    FrameChecksumError,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.rebuild import RebuildScheduler
from repro.cluster.scrub import ClusterScrubReport, ClusterScrubber
from repro.cluster.txn import ClientCrash, TwoPhaseWriter, TxnCrashPoint

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ClientCrash",
    "ClusterArray",
    "ClusterDegradedError",
    "ClusterError",
    "ClusterScrubReport",
    "ClusterScrubber",
    "Counter",
    "FrameChecksumError",
    "HealthMonitor",
    "Histogram",
    "LocalCluster",
    "MetricsRegistry",
    "NodeClient",
    "NodeCrashPlan",
    "NodeCrashed",
    "NodeUnavailableError",
    "ProtocolError",
    "RebuildScheduler",
    "RemoteDiskError",
    "RetryPolicy",
    "StripNode",
    "TwoPhaseWriter",
    "TxnCrashPoint",
    "encode_frame",
    "read_frame",
    "send_verb",
    "write_frame",
]
