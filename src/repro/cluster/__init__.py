"""repro.cluster -- the distributed stripe store.

The paper's encode/decode kernels, lifted from a single-process
simulator to separate failure domains: each of the ``k + 2`` columns
lives on its own asyncio TCP :class:`~repro.cluster.node.StripNode`,
and a :class:`~repro.cluster.client.ClusterArray` client stripes
writes across them, serves degraded reads by decoding survivor strips
(the optimal Algorithm 4 path for Liberation codes), and rebuilds lost
columns in the background via
:class:`~repro.cluster.rebuild.RebuildScheduler`.

Modules:

* :mod:`repro.cluster.protocol` -- length-prefixed CRC-32 framing;
* :mod:`repro.cluster.node` -- the per-column strip server;
* :mod:`repro.cluster.client` -- retrying RPC + the striped array;
* :mod:`repro.cluster.rebuild` -- background batch rebuild;
* :mod:`repro.cluster.scrub` -- distributed scrub & repair (the
  paper's single-column locator, applied over the wire);
* :mod:`repro.cluster.health` -- heartbeats, circuit breakers and
  automatic fail-to-rebuilt healing;
* :mod:`repro.cluster.txn` -- atomic stripe updates via two-phase
  commit (the distributed write-hole fix);
* :mod:`repro.cluster.membership` -- epoch-numbered node states
  (join/live/drain/dead) plus the heartbeat monitor that drives them;
* :mod:`repro.cluster.placement` -- deterministic rendezvous placement
  of stripes over the live pool (minimal movement under churn);
* :mod:`repro.cluster.elastic` -- the placement-routed
  :class:`~repro.cluster.elastic.ElasticArray` with epoch-bump retry;
* :mod:`repro.cluster.rebalance` -- throttled, crash-safe stripe
  migration converging routing onto placement (drains, heals, joins);
* :mod:`repro.cluster.metrics` -- counters/histograms behind the
  ``stats`` verb and the ``repro stats`` CLI view;
* :mod:`repro.cluster.local` -- in-process clusters for tests and
  examples (fixed ``k + 2`` and elastic pools).
"""

from repro.cluster.client import (
    ClusterArray,
    ClusterDegradedError,
    ClusterError,
    NodeClient,
    NodeUnavailableError,
    RemoteDiskError,
    RetryPolicy,
    send_verb,
)
from repro.cluster.elastic import ElasticArray
from repro.cluster.health import BreakerState, CircuitBreaker, HealthMonitor
from repro.cluster.local import ElasticLocalCluster, LocalCluster
from repro.cluster.membership import (
    MembershipError,
    MembershipMonitor,
    MembershipTable,
    NodeState,
)
from repro.cluster.metrics import Counter, Histogram, MetricsRegistry
from repro.cluster.node import NodeCrashPlan, NodeCrashed, StripNode
from repro.cluster.placement import PlacementError, PlacementMap, place_stripe
from repro.cluster.rebalance import RebalanceError, Rebalancer, TokenBucket
from repro.cluster.protocol import (
    FrameChecksumError,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.rebuild import RebuildScheduler
from repro.cluster.scrub import ClusterScrubReport, ClusterScrubber
from repro.cluster.txn import ClientCrash, TwoPhaseWriter, TxnCrashPoint

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ClientCrash",
    "ClusterArray",
    "ClusterDegradedError",
    "ClusterError",
    "ClusterScrubReport",
    "ClusterScrubber",
    "Counter",
    "ElasticArray",
    "ElasticLocalCluster",
    "FrameChecksumError",
    "HealthMonitor",
    "Histogram",
    "LocalCluster",
    "MembershipError",
    "MembershipMonitor",
    "MembershipTable",
    "MetricsRegistry",
    "NodeClient",
    "NodeCrashPlan",
    "NodeCrashed",
    "NodeState",
    "NodeUnavailableError",
    "PlacementError",
    "PlacementMap",
    "ProtocolError",
    "RebalanceError",
    "Rebalancer",
    "RebuildScheduler",
    "RemoteDiskError",
    "RetryPolicy",
    "StripNode",
    "TokenBucket",
    "TwoPhaseWriter",
    "TxnCrashPoint",
    "place_stripe",
    "encode_frame",
    "read_frame",
    "send_verb",
    "write_frame",
]
