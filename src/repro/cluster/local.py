"""Spin up a whole cluster in one process (tests, examples, demos).

:class:`LocalCluster` owns ``k + 2`` :class:`~repro.cluster.node.StripNode`
servers on loopback ephemeral ports -- one per column -- plus the
lifecycle verbs the failure drills need: stop a node (simulating a
machine loss), start a blank replacement for a column (the rebuild
target), and tear everything down.  Being in-process, tests can also
reach into ``cluster.nodes[c].faults`` / ``.disk`` directly instead of
going through the ``fault`` verb.
"""

from __future__ import annotations

import asyncio
import random

from repro.cluster.client import ClusterArray, RetryPolicy
from repro.cluster.node import StripNode
from repro.codes.base import RAID6Code
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock
from repro.sim.transport import Transport

__all__ = ["LocalCluster"]


class LocalCluster:
    """``k + 2`` loopback strip nodes for one code geometry.

    ``transport``/``clock`` default to real sockets and the event-loop
    clock; pass a :class:`~repro.sim.transport.MemoryTransport` and
    :class:`~repro.sim.clock.VirtualClock` to run the whole cluster as
    a deterministic in-process simulation.  An optional
    :class:`~repro.obs.tracing.Tracer` is threaded into every node (and
    into arrays built via :meth:`array`), so one trace shows client
    RPCs and node dispatches interleaved on one timeline.
    """

    def __init__(
        self,
        code: RAID6Code,
        n_stripes: int,
        *,
        host: str = "127.0.0.1",
        transport: Transport | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.code = code
        self.n_stripes = int(n_stripes)
        self.host = host
        self.transport = transport
        self.clock = clock
        self.tracer = tracer
        strip_words = code.rows * (code.element_size // 8)
        self.nodes: list[StripNode] = [
            StripNode(col, n_stripes, strip_words, host=host,
                      transport=transport, clock=clock, tracer=tracer)
            for col in range(code.n_cols)
        ]
        #: replacement nodes started via :meth:`start_replacement`
        self.replacements: dict[int, StripNode] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> list[tuple[str, int]]:
        await asyncio.gather(*(n.start() for n in self.nodes))
        return self.addresses

    async def stop(self) -> None:
        live = [n for n in [*self.nodes, *self.replacements.values()] if n.running]
        await asyncio.gather(*(n.stop() for n in live))

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [n.address for n in self.nodes]

    # -- failure drills ----------------------------------------------------

    async def stop_node(self, column: int) -> None:
        """Take one column's node offline (machine loss)."""
        await self.nodes[column].stop()

    async def restart_node(self, column: int) -> tuple[str, int]:
        """Bring a stopped node back (reboot after a crash).

        Durable state -- disk contents, intent log, checksum sidecars
        -- survives in the :class:`StripNode` object; only the
        listening socket was lost.  Returns the (new) address.
        """
        return await self.nodes[column].start()

    async def start_replacement(self, column: int) -> tuple[str, int]:
        """Start a blank node for ``column``; returns its address.

        The caller hands the address to the rebuild scheduler; once the
        rebuild repoints the array, :attr:`nodes` is updated so later
        drills target the live replacement.
        """
        node = StripNode(
            column, self.n_stripes, self.nodes[column].disk.strip_words,
            host=self.host, transport=self.transport, clock=self.clock,
            tracer=self.tracer,
        )
        await node.start()
        self.replacements[column] = node
        return node.address

    def promote_replacement(self, column: int) -> None:
        """Make the replacement the column's node of record."""
        self.nodes[column] = self.replacements.pop(column)

    # -- convenience -------------------------------------------------------

    def auto_healer(self, array: ClusterArray, **kwargs) -> "HealthMonitor":
        """A :class:`~repro.cluster.health.HealthMonitor` wired for self-heal.

        Spares come from :meth:`start_replacement`; after each rebuild
        the replacement is promoted to the column's node of record.
        Extra ``kwargs`` pass through to the monitor (thresholds,
        intervals, breaker tuning).
        """
        from repro.cluster.health import HealthMonitor

        return HealthMonitor(
            array,
            spare_provider=self.start_replacement,
            on_rebuilt=self.promote_replacement,
            **kwargs,
        )

    def array(
        self,
        *,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        hedge_after: float | None = None,
    ) -> ClusterArray:
        """A :class:`ClusterArray` wired to this cluster's nodes."""
        return ClusterArray(
            self.code, self.addresses, self.n_stripes, policy=policy,
            transport=self.transport, clock=self.clock, rng=rng,
            tracer=self.tracer, hedge_after=hedge_after,
        )
