"""Spin up a whole cluster in one process (tests, examples, demos).

:class:`LocalCluster` owns ``k + 2`` :class:`~repro.cluster.node.StripNode`
servers on loopback ephemeral ports -- one per column -- plus the
lifecycle verbs the failure drills need: stop a node (simulating a
machine loss), start a blank replacement for a column (the rebuild
target), and tear everything down.  Being in-process, tests can also
reach into ``cluster.nodes[c].faults`` / ``.disk`` directly instead of
going through the ``fault`` verb.
"""

from __future__ import annotations

import asyncio
import random

from repro.cluster.client import ClusterArray, RetryPolicy
from repro.cluster.node import StripNode
from repro.codes.base import RAID6Code
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock
from repro.sim.transport import Transport

__all__ = ["LocalCluster", "ElasticLocalCluster"]


class LocalCluster:
    """``k + 2`` loopback strip nodes for one code geometry.

    ``transport``/``clock`` default to real sockets and the event-loop
    clock; pass a :class:`~repro.sim.transport.MemoryTransport` and
    :class:`~repro.sim.clock.VirtualClock` to run the whole cluster as
    a deterministic in-process simulation.  An optional
    :class:`~repro.obs.tracing.Tracer` is threaded into every node (and
    into arrays built via :meth:`array`), so one trace shows client
    RPCs and node dispatches interleaved on one timeline.
    """

    def __init__(
        self,
        code: RAID6Code,
        n_stripes: int,
        *,
        host: str = "127.0.0.1",
        transport: Transport | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.code = code
        self.n_stripes = int(n_stripes)
        self.host = host
        self.transport = transport
        self.clock = clock
        self.tracer = tracer
        strip_words = code.rows * (code.element_size // 8)
        self.nodes: list[StripNode] = [
            StripNode(col, n_stripes, strip_words, host=host,
                      transport=transport, clock=clock, tracer=tracer)
            for col in range(code.n_cols)
        ]
        #: replacement nodes started via :meth:`start_replacement`
        self.replacements: dict[int, StripNode] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> list[tuple[str, int]]:
        await asyncio.gather(*(n.start() for n in self.nodes))
        return self.addresses

    async def stop(self) -> None:
        live = [n for n in [*self.nodes, *self.replacements.values()] if n.running]
        await asyncio.gather(*(n.stop() for n in live))

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [n.address for n in self.nodes]

    # -- failure drills ----------------------------------------------------

    async def stop_node(self, column: int) -> None:
        """Take one column's node offline (machine loss)."""
        await self.nodes[column].stop()

    async def restart_node(self, column: int) -> tuple[str, int]:
        """Bring a stopped node back (reboot after a crash).

        Durable state -- disk contents, intent log, checksum sidecars
        -- survives in the :class:`StripNode` object; only the
        listening socket was lost.  Returns the (new) address.
        """
        return await self.nodes[column].start()

    async def start_replacement(self, column: int) -> tuple[str, int]:
        """Start a blank node for ``column``; returns its address.

        The caller hands the address to the rebuild scheduler; once the
        rebuild repoints the array, :attr:`nodes` is updated so later
        drills target the live replacement.
        """
        node = StripNode(
            column, self.n_stripes, self.nodes[column].disk.strip_words,
            host=self.host, transport=self.transport, clock=self.clock,
            tracer=self.tracer,
        )
        await node.start()
        self.replacements[column] = node
        return node.address

    def promote_replacement(self, column: int) -> None:
        """Make the replacement the column's node of record."""
        self.nodes[column] = self.replacements.pop(column)

    # -- convenience -------------------------------------------------------

    def auto_healer(self, array: ClusterArray, **kwargs) -> "HealthMonitor":
        """A :class:`~repro.cluster.health.HealthMonitor` wired for self-heal.

        Spares come from :meth:`start_replacement`; after each rebuild
        the replacement is promoted to the column's node of record.
        Extra ``kwargs`` pass through to the monitor (thresholds,
        intervals, breaker tuning).
        """
        from repro.cluster.health import HealthMonitor

        return HealthMonitor(
            array,
            spare_provider=self.start_replacement,
            on_rebuilt=self.promote_replacement,
            **kwargs,
        )

    def array(
        self,
        *,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        hedge_after: float | None = None,
    ) -> ClusterArray:
        """A :class:`ClusterArray` wired to this cluster's nodes."""
        return ClusterArray(
            self.code, self.addresses, self.n_stripes, policy=policy,
            transport=self.transport, clock=self.clock, rng=rng,
            tracer=self.tracer, hedge_after=hedge_after,
        )


class ElasticLocalCluster:
    """A pool of ``n_nodes >= k + 2`` loopback nodes plus a membership table.

    The elastic twin of :class:`LocalCluster`: nodes are identities
    (``"n0"``, ``"n1"``, ...) rather than columns, the shared
    :class:`~repro.cluster.membership.MembershipTable` is the routing
    authority, and churn drills mutate the pool -- :meth:`add_node`,
    :meth:`stop_node`, :meth:`restart_node` -- instead of swapping a
    fixed column's machine.  Arrays built via :meth:`array` route every
    (stripe, column) through placement over this table.
    """

    def __init__(
        self,
        code: RAID6Code,
        n_stripes: int,
        n_nodes: int | None = None,
        *,
        host: str = "127.0.0.1",
        transport: Transport | None = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.cluster.membership import MembershipTable

        self.code = code
        self.n_stripes = int(n_stripes)
        self.host = host
        self.transport = transport
        self.clock = clock
        self.tracer = tracer
        self.membership = MembershipTable()
        self.nodes: dict[str, StripNode] = {}
        self._next_id = 0
        self._strip_words = code.rows * (code.element_size // 8)
        n_nodes = code.n_cols if n_nodes is None else int(n_nodes)
        if n_nodes < code.n_cols:
            raise ValueError(
                f"need at least {code.n_cols} nodes (k+2), got {n_nodes}"
            )
        for _ in range(n_nodes):
            self._new_node()

    def _new_node(self) -> str:
        node_id = f"n{self._next_id}"
        self._next_id += 1
        self.nodes[node_id] = StripNode(
            self._next_id - 1, self.n_stripes, self._strip_words, host=self.host,
            transport=self.transport, clock=self.clock, tracer=self.tracer,
        )
        return node_id

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> dict[str, tuple[str, int]]:
        """Start every node and admit it LIVE; returns id -> address."""
        await asyncio.gather(*(n.start() for n in self.nodes.values()))
        for node_id in sorted(self.nodes):
            self.membership.join(node_id, self.nodes[node_id].address, live=True)
        return {nid: n.address for nid, n in self.nodes.items()}

    async def stop(self) -> None:
        live = [n for n in self.nodes.values() if n.running]
        await asyncio.gather(*(n.stop() for n in live))

    async def __aenter__(self) -> "ElasticLocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- churn drills ------------------------------------------------------

    async def add_node(self, *, live: bool = True) -> str:
        """Start one blank node and join it; returns its id.

        ``live=False`` parks it in JOINING for heartbeat-promotion
        drills; the default admits it straight into the placement pool.
        """
        node_id = self._new_node()
        await self.nodes[node_id].start()
        self.membership.join(node_id, self.nodes[node_id].address, live=live)
        return node_id

    async def stop_node(self, node_id: str) -> None:
        """Take one node offline (machine loss); membership learns via
        the heartbeat monitor (or an explicit ``mark_dead``)."""
        await self.nodes[node_id].stop()

    async def restart_node(self, node_id: str) -> tuple[str, int]:
        """Reboot a stopped node; durable state survives in the object.

        The fresh ephemeral port is recorded in the table (same id, new
        address) without changing the node's state.
        """
        address = await self.nodes[node_id].start()
        entry = self.membership.nodes.get(node_id)
        if entry is not None:
            entry.address = (address[0], int(address[1]))
        return address

    # -- convenience -------------------------------------------------------

    def array(
        self,
        *,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        hedge_after: float | None = None,
    ):
        """An :class:`~repro.cluster.elastic.ElasticArray` over this pool."""
        from repro.cluster.elastic import ElasticArray

        return ElasticArray(
            self.code, self.membership, self.n_stripes, policy=policy,
            transport=self.transport, clock=self.clock, rng=rng,
            tracer=self.tracer, hedge_after=hedge_after,
        )

    def monitor(self, array, **kwargs):
        """A :class:`~repro.cluster.membership.MembershipMonitor` for ``array``."""
        from repro.cluster.membership import MembershipMonitor

        return MembershipMonitor(array, **kwargs)

    def rebalancer(self, array, **kwargs):
        """A :class:`~repro.cluster.rebalance.Rebalancer` for ``array``."""
        from repro.cluster.rebalance import Rebalancer

        return Rebalancer(array, **kwargs)
