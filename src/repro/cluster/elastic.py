"""The elastic array: placement-routed striping over a changing node pool.

:class:`ElasticArray` is :class:`~repro.cluster.client.ClusterArray`
with the fixed "column *c* lives on node *c*" wiring replaced by two
levels of indirection:

* :attr:`locations` -- the authoritative *current* holder map
  (``stripe -> tuple of node ids``).  All foreground I/O routes through
  it, so a stripe's home changes exactly when the rebalancer flips its
  entry -- the atomic commit point of a migration.
* :class:`~repro.cluster.placement.PlacementMap` -- where each stripe
  *should* live given the current membership epoch.  The rebalancer's
  job is to converge ``locations`` toward placement; the gap between
  the two is the cluster's "misplaced" backlog.

Splitting *is* from *ought* is what makes churn survivable: a node
join/leave/drain changes placement instantly (and bumps the epoch) but
changes routing only as stripes actually migrate, so clients never
chase a target that has no data yet.

**Epoch-bump retry**: a data RPC that fails with
:class:`~repro.cluster.client.NodeUnavailableError` *and* observes the
membership epoch moved since the request was resolved re-resolves the
holder and retries once (``epoch_retries`` counter).  A client racing a
migration or a drain therefore sees one slow request, not an error.

Per-stripe asyncio locks serialize foreground stripe writes against
migrations of the same stripe (see :meth:`stripe_lock`); reads stay
lock-free because both copies are valid until the source is released.
"""

from __future__ import annotations

import asyncio
import random

import numpy as np

from repro.cluster.client import (
    ClusterArray,
    NodeClient,
    NodeUnavailableError,
    RetryPolicy,
)
from repro.cluster.membership import MembershipTable
from repro.cluster.placement import PlacementMap
from repro.codes.base import RAID6Code
from repro.obs.tracing import Tracer
from repro.sim.clock import Clock
from repro.sim.transport import Transport

__all__ = ["ElasticArray"]


class ElasticArray(ClusterArray):
    """A RAID-6 array striped over an epoch-numbered elastic node pool."""

    def __init__(
        self,
        code: RAID6Code,
        membership: MembershipTable,
        n_stripes: int,
        *,
        policy: RetryPolicy | None = None,
        transport: Transport | None = None,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
        hedge_after: float | None = None,
    ) -> None:
        super().__init__(
            code, None, n_stripes, policy=policy, transport=transport,
            clock=clock, rng=rng, tracer=tracer, hedge_after=hedge_after,
        )
        self.membership = membership
        if membership.metrics is None:
            membership.metrics = self.metrics
            membership._export()
        self.placement = PlacementMap(membership, code.n_cols)
        #: authoritative current holders (stripe -> node ids per column);
        #: flipped atomically by the rebalancer after a verified migration
        self.locations: dict[int, tuple[str, ...]] = {}
        #: per-node circuit breakers, installed/fed by
        #: :class:`~repro.cluster.membership.MembershipMonitor`
        self.node_breakers: dict = {}
        self._node_clients: dict[str, NodeClient] = {}
        self._stripe_locks: dict[int, asyncio.Lock] = {}
        #: stripes with a migration in flight (set by the rebalancer);
        #: readers of such a stripe wait for the flip instead of racing
        #: the window where a target's disk slot is being overwritten
        self.migrating: set[int] = set()

    # -- routing -------------------------------------------------------------

    def holders(self, stripe: int) -> tuple[str, ...]:
        """Current holder ids for ``stripe``, pinned on first touch.

        A stripe's first resolution pins it to the placement of that
        moment; afterwards only a rebalancer flip moves it, so routing
        never silently follows placement to a node that holds nothing.
        """
        locs = self.locations.get(stripe)
        if locs is None:
            locs = self.placement.nodes_for(stripe)
            self.locations[stripe] = locs
        return locs

    def client_for_node(self, node_id: str) -> NodeClient:
        """Cached client for one node, rebuilt if its address changed."""
        address = self.membership.address_of(node_id)
        client = self._node_clients.get(node_id)
        if client is None or client.address != (address[0], address[1]):
            client = self._make_client(address)
            self._node_clients[node_id] = client
        return client

    def _client_for(self, column: int, stripe: int | None) -> NodeClient:
        if stripe is None:
            raise RuntimeError(
                "elastic routing needs the stripe; pass stripe= to "
                "_column_request"
            )
        return self.client_for_node(self.holders(stripe)[column])

    def _breaker_for(self, column: int, stripe: int | None):
        if stripe is None:
            return None
        return self.node_breakers.get(self.holders(stripe)[column])

    async def _column_request(
        self,
        column: int,
        verb: str,
        header: dict | None = None,
        payload: bytes = b"",
        *,
        stripe: int | None = None,
    ) -> tuple[dict, bytes]:
        epoch = self.membership.epoch
        try:
            return await super()._column_request(
                column, verb, header, payload, stripe=stripe
            )
        except NodeUnavailableError:
            if stripe is None or self.membership.epoch == epoch:
                raise
            # The cluster moved under us (join/leave/drain/migration
            # flip): re-resolve the holder at the new epoch and spend
            # one retry before surfacing the failure.
            self.metrics.counter("epoch_retries").inc()
            return await super()._column_request(
                column, verb, header, payload, stripe=stripe
            )

    # -- write/migrate serialization -----------------------------------------

    def stripe_lock(self, stripe: int) -> asyncio.Lock:
        """Per-stripe lock shared by foreground writes and migrations."""
        lock = self._stripe_locks.get(stripe)
        if lock is None:
            lock = self._stripe_locks[stripe] = asyncio.Lock()
        return lock

    async def write_stripe(
        self, stripe: int, buf: np.ndarray, *, columns: list[int] | None = None
    ) -> list[int]:
        async with self.stripe_lock(stripe):
            return await super().write_stripe(stripe, buf, columns=columns)

    async def read_stripe(self, stripe: int) -> np.ndarray:
        if stripe in self.migrating:
            # A migration of this stripe is in its hazard window; wait
            # for the routing flip rather than read a half-moved state.
            async with self.stripe_lock(stripe):
                pass
        return await super().read_stripe(stripe)

    # -- health / metrics (node-keyed: columns are per-stripe here) ----------

    async def ping(self) -> dict[str, bool]:  # type: ignore[override]
        """Liveness of every probed node, keyed by node id."""
        ids = self.membership.probed()

        async def probe(node_id: str) -> bool:
            try:
                await self.client_for_node(node_id).request("ping")
            except Exception:
                return False
            return True

        alive = await asyncio.gather(*(probe(n) for n in ids))
        return dict(zip(ids, alive))

    async def node_stats(self) -> dict[str, dict | None]:  # type: ignore[override]
        """Each serving node's ``stats`` reply header, keyed by node id."""
        ids = self.membership.serving()

        async def fetch(node_id: str) -> dict | None:
            try:
                reply, _ = await self.client_for_node(node_id).request("stats")
            except Exception:
                return None
            return reply

        stats = await asyncio.gather(*(fetch(n) for n in ids))
        return dict(zip(ids, stats))

    async def stats(self) -> dict:
        nodes = await self.node_stats()
        return {
            "epoch": self.membership.epoch,
            "client": self.metrics.snapshot(),
            "nodes": {
                node_id: None
                if reply is None
                else {"held": reply.get("held"),
                      "stats": reply.get("stats"),
                      "disk": reply.get("disk")}
                for node_id, reply in nodes.items()
            },
        }
