"""Deterministic stripe -> erasure-set placement over an elastic node pool.

The elastic cluster replaces the fixed "column *c* lives on node *c*"
wiring with a placement function: given a stripe index and the set of
placement-eligible (LIVE) nodes, return the ordered tuple of node ids
holding columns ``0..n_cols-1`` of that stripe.  Two properties matter:

* **Determinism without coordination** -- every client and every node
  computes the same answer from the same membership epoch, so there is
  no placement service to fail.  Scores come from BLAKE2b over
  ``stripe/column/node_id`` (``hashlib``, not Python's salted
  ``hash()``), so the answer is stable across processes and runs.
* **Minimal movement** -- rendezvous (highest-random-weight) hashing:
  each column independently picks the highest-scoring node, excluding
  nodes already chosen for earlier columns of the same stripe.  Adding
  or removing one node only moves the strips that node wins or held;
  everything else keeps its holder.  The exclusion scan runs column by
  column so a departure can only cascade through the handful of
  columns whose winner chain it touches, not reshuffle the stripe.

The per-column exclusion is what makes this CRUSH-like rather than a
plain consistent-hash ring: a stripe's ``n_cols`` strips always land on
``n_cols`` *distinct* nodes, preserving the RAID-6 failure-domain
guarantee (losing one node loses at most one column of any stripe).

:class:`PlacementMap` binds the function to a
:class:`~repro.cluster.membership.MembershipTable` and caches per
stripe, keyed by the eligible pool, so steady-state lookups are a dict
hit and every epoch bump naturally invalidates only what changed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = [
    "PlacementError",
    "placement_score",
    "place_stripe",
    "PlacementMap",
    "movement_fraction",
]


class PlacementError(Exception):
    """Placement is impossible (fewer eligible nodes than columns)."""


def placement_score(stripe: int, column: int, node_id: str) -> int:
    """Rendezvous weight of ``node_id`` for one strip; 64-bit, stable."""
    key = f"{stripe}/{column}/{node_id}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def place_stripe(stripe: int, pool: Iterable[str], n_cols: int) -> tuple[str, ...]:
    """Place one stripe's columns on ``n_cols`` distinct nodes from ``pool``.

    Raises :class:`PlacementError` when the pool is too small; ties
    (astronomically unlikely with 64-bit scores) break on node id so
    the result is a pure function of its inputs.
    """
    nodes = sorted(set(pool))
    if len(nodes) < n_cols:
        raise PlacementError(
            f"stripe {stripe}: need {n_cols} nodes, pool has {len(nodes)}"
        )
    chosen: list[str] = []
    taken: set[str] = set()
    for column in range(n_cols):
        best = max(
            (node for node in nodes if node not in taken),
            key=lambda node: (placement_score(stripe, column, node), node),
        )
        chosen.append(best)
        taken.add(best)
    return tuple(chosen)


class PlacementMap:
    """Epoch-aware placement cache over a membership table.

    ``membership`` only needs a ``placement_pool() -> tuple[str, ...]``
    method (sorted LIVE node ids) and an ``epoch`` attribute; the cache
    entry for a stripe is revalidated against the pool tuple, so a bump
    that does not change the eligible set (e.g. a drain finishing into
    LEFT after the pool already shrank) costs nothing.
    """

    def __init__(self, membership, n_cols: int) -> None:
        self.membership = membership
        self.n_cols = int(n_cols)
        self._cache: dict[int, tuple[tuple[str, ...], tuple[str, ...]]] = {}

    def nodes_for(self, stripe: int) -> tuple[str, ...]:
        """Node ids holding columns ``0..n_cols-1`` of ``stripe``."""
        pool = self.membership.placement_pool()
        hit = self._cache.get(stripe)
        if hit is not None and hit[0] == pool:
            return hit[1]
        placed = place_stripe(stripe, pool, self.n_cols)
        self._cache[stripe] = (pool, placed)
        return placed

    def node_for(self, stripe: int, column: int) -> str:
        return self.nodes_for(stripe)[column]


def movement_fraction(
    before: Sequence[Sequence[str]], after: Sequence[Sequence[str]]
) -> float:
    """Fraction of strips whose holder changed between two placements.

    Diagnostic used by tests and the rebalancer's planning pass to
    check the minimal-movement property empirically.
    """
    moved = total = 0
    for old, new in zip(before, after):
        for a, b in zip(old, new):
            total += 1
            if a != b:
                moved += 1
    return moved / total if total else 0.0
