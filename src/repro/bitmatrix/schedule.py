"""Lowering bit-matrix rows to XOR schedules.

Given a set of output rows over a ``kw``-dimensional source-bit space,
two lowering strategies are provided, matching Jerasure's
``jerasure_dumb_bitmatrix_to_schedule`` / ``..._smart_...``:

* **dumb** -- each output bit is a fresh XOR chain over its sources:
  ``ones(row) - 1`` XORs (plus a free initial copy).  This is how the
  original Liberation implementation *encodes*; it yields the Table I
  complexity ``(k-1) + (k-1)/2p`` per parity bit.

* **smart** (Plank's *bit-matrix scheduling*, FAST'08) -- outputs are
  produced in order, and each may instead be derived from an
  already-computed output whose row has the smallest Hamming distance:
  copy that output, then XOR the differing source bits.  Decoding
  matrices (rows of an inverted GF(2) matrix) are dense and mutually
  similar, so this cuts the original Liberation *decode* cost to about
  ``1.15 (k-1)`` per missing bit -- still well above the bound, which is
  the gap the paper's Algorithm 4 closes.

Sources/destinations are given as stripe cells so the emitted
:class:`~repro.engine.ops.Schedule` runs directly on stripe buffers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine.ops import Schedule

__all__ = ["dumb_schedule", "smart_schedule", "schedule_from_rows"]

Cell = tuple[int, int]


def _emit_chain(
    sched: Schedule, dst: Cell, srcs: Sequence[Cell]
) -> None:
    """Emit ``dst <- srcs[0] ^ srcs[1] ^ ...`` (copy + accumulates)."""
    if not srcs:
        raise ValueError(f"output cell {dst} has an empty source row")
    sched.copy_cell(dst, srcs[0])
    for s in srcs[1:]:
        sched.accumulate(dst, s)


def schedule_from_rows(
    rows: np.ndarray,
    dst_cells: Sequence[Cell],
    src_cells: Sequence[Cell],
    cols: int,
    n_rows: int,
    *,
    smart: bool,
) -> Schedule:
    """Lower matrix ``rows`` (``len(dst_cells) x len(src_cells)``) to a schedule.

    ``rows[i]`` expresses the value of ``dst_cells[i]`` as the GF(2) sum
    of the ``src_cells`` selected by its 1-bits.  ``cols``/``n_rows``
    give the stripe shape the schedule addresses.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    if rows.ndim != 2 or rows.shape[0] != len(dst_cells) or rows.shape[1] != len(src_cells):
        raise ValueError(
            f"rows shape {rows.shape} does not match {len(dst_cells)} outputs "
            f"x {len(src_cells)} sources"
        )
    src_cells = list(src_cells)
    sched = Schedule(cols, n_rows)

    if not smart:
        for i, dst in enumerate(dst_cells):
            srcs = [src_cells[j] for j in np.nonzero(rows[i])[0]]
            _emit_chain(sched, dst, srcs)
        return sched

    # Smart (Prim-style, as in jerasure_smart_bitmatrix_to_schedule):
    # maintain for every uncomputed output the cheapest way to obtain it
    # -- from scratch (ones - 1 XORs) or by copying an already-computed
    # output and XORing the differing sources -- and repeatedly emit the
    # globally cheapest one, then relax the remaining costs against it.
    n_out = rows.shape[0]
    ones = rows.sum(axis=1).astype(np.int64)
    cost = ones - 1  # scratch cost
    from_row = np.full(n_out, -1, dtype=np.int64)  # -1: from scratch
    done = np.zeros(n_out, dtype=bool)
    for _ in range(n_out):
        pending = np.nonzero(~done)[0]
        i = int(pending[np.argmin(cost[pending])])
        dst = dst_cells[i]
        if from_row[i] < 0:
            srcs = [src_cells[j] for j in np.nonzero(rows[i])[0]]
            _emit_chain(sched, dst, srcs)
        else:
            base = int(from_row[i])
            diff = np.bitwise_xor(rows[base], rows[i])
            sched.copy_cell(dst, dst_cells[base])
            for j in np.nonzero(diff)[0]:
                sched.accumulate(dst, src_cells[j])
        done[i] = True
        if done.all():
            break
        # Relax: computing any remaining row from row i costs the
        # Hamming distance between the two rows.
        rest = np.nonzero(~done)[0]
        dist = np.bitwise_xor(rows[rest], rows[i][None, :]).sum(axis=1)
        better = dist < cost[rest]
        cost[rest[better]] = dist[better]
        from_row[rest[better]] = i
    return sched


def _parity_dst_cells(w: int, k: int, n_out: int) -> list[Cell]:
    """Destination cells for generator rows: P strip then Q strip."""
    return [(k + r // w, r % w) for r in range(n_out)]


def _data_src_cells(w: int, k: int) -> list[Cell]:
    """Source cells for generator columns: data bits, column-major."""
    return [(j, i) for j in range(k) for i in range(w)]


def dumb_schedule(
    generator: np.ndarray, w: int, k: int, *, total_cols: int | None = None
) -> Schedule:
    """Dumb encoding schedule for a ``2w x kw`` generator.

    ``total_cols`` widens the addressed stripe (e.g. when the consuming
    code allocates scratch columns); defaults to ``k + 2``.
    """
    return schedule_from_rows(
        generator,
        _parity_dst_cells(w, k, generator.shape[0]),
        _data_src_cells(w, k),
        cols=total_cols if total_cols is not None else k + 2,
        n_rows=w,
        smart=False,
    )


def smart_schedule(
    generator: np.ndarray, w: int, k: int, *, total_cols: int | None = None
) -> Schedule:
    """Smart (bit-matrix-scheduled) encoding schedule for a generator."""
    return schedule_from_rows(
        generator,
        _parity_dst_cells(w, k, generator.shape[0]),
        _data_src_cells(w, k),
        cols=total_cols if total_cols is not None else k + 2,
        n_rows=w,
        smart=True,
    )
