"""Cauchy Reed-Solomon generator matrices (Jerasure's ``cauchy.c``).

The Cauchy construction gives an MDS generator for any ``k + m <= 2^w``:
``M[i][j] = 1 / (x_i ^ y_j)`` over GF(2^w) with the ``x_i`` and ``y_j``
distinct.  Projecting each element to its ``w x w`` multiplication
bit-matrix yields an XOR code that plugs straight into the bit-matrix
substrate (schedules, generic decoding).

Two variants, as in Jerasure:

* :func:`cauchy_original_matrix` -- the textbook matrix.
* :func:`cauchy_good_matrix` -- the "good" matrix: each column is
  divided by its first-row element (making row 0 the identity, i.e. a
  plain RAID-5 P row) and every later row is rescaled by whichever
  field element minimises the number of ones in its projected
  bit-matrix.  Fewer ones = fewer XORs; for m = 2 this makes Cauchy RS
  a P+Q-compliant RAID-6 code.
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf2w import GF2w, element_bitmatrix

__all__ = [
    "cauchy_original_matrix",
    "cauchy_good_matrix",
    "cauchy_bitmatrix",
    "min_w_for",
]


def min_w_for(k: int, m: int = 2) -> int:
    """Smallest supported ``w`` with ``k + m <= 2^w``."""
    w = 2
    while (1 << w) < k + m:
        w += 1
        if w > 12:
            raise ValueError(f"k + m = {k + m} too large for Cauchy (w <= 12)")
    return w


def cauchy_original_matrix(gf: GF2w, k: int, m: int = 2) -> np.ndarray:
    """The plain ``m x k`` Cauchy matrix over GF(2^w)."""
    if k + m > gf.size:
        raise ValueError(f"k + m = {k + m} exceeds field size 2^{gf.w}")
    xs = list(range(m))  # x_i = i
    ys = list(range(m, m + k))  # y_j = m + j
    out = np.zeros((m, k), dtype=np.int64)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = gf.inverse(x ^ y)
    return out


def _ones_of(gf: GF2w, e: int) -> int:
    return int(element_bitmatrix(gf, e).sum())


def cauchy_good_matrix(gf: GF2w, k: int, m: int = 2) -> np.ndarray:
    """Jerasure-style optimised Cauchy matrix.

    Column-normalise so row 0 becomes all ones (identity blocks: the P
    row costs exactly ``k - 1`` XORs per bit), then rescale each later
    row by the field element minimising its projected one-count.
    """
    mat = cauchy_original_matrix(gf, k, m)
    # Divide each column by its row-0 entry.
    for j in range(k):
        inv = gf.inverse(int(mat[0, j]))
        for i in range(m):
            mat[i, j] = gf.mul(int(mat[i, j]), inv)
    # Rescale rows 1.. to minimise total bitmatrix ones.
    for i in range(1, m):
        best_scale, best_cost = 1, None
        for scale in range(1, gf.size):
            cost = sum(_ones_of(gf, gf.mul(scale, int(mat[i, j]))) for j in range(k))
            if best_cost is None or cost < best_cost:
                best_scale, best_cost = scale, cost
        for j in range(k):
            mat[i, j] = gf.mul(best_scale, int(mat[i, j]))
    return mat


def cauchy_bitmatrix(gf: GF2w, matrix: np.ndarray) -> np.ndarray:
    """Project an ``m x k`` GF(2^w) matrix to an ``mw x kw`` bit-matrix."""
    m, k = matrix.shape
    w = gf.w
    out = np.zeros((m * w, k * w), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            out[i * w : (i + 1) * w, j * w : (j + 1) * w] = element_bitmatrix(
                gf, int(matrix[i, j])
            )
    return out
