"""Generator bit-matrix construction.

A RAID-6 bit-matrix code with ``k`` data columns of ``w`` bits each is a
``2w x kw`` 0/1 matrix ``G``; stacking the data columns into a ``kw``
vector ``d``, the parity bits are ``G @ d`` over GF(2) -- rows ``0..w-1``
are the P (row-parity) bits and rows ``w..2w-1`` the Q bits.

:func:`liberation_bitmatrix` builds ``G`` for the Liberation code
directly from the paper's defining equations (1)-(2):

.. math::

    b_{i,p}   = \\bigoplus_{t<p} b_{i,t} \\qquad
    b_{i,p+1} = \\Big(\\bigoplus_{t<p} b_{\\langle i+t\\rangle,t}\\Big)
                \\oplus a_i,

with the extra bit :math:`a_i = b_{\\langle -i-1\\rangle,\\langle -2i\\rangle}`
for :math:`i \\neq 0`.  Phantom columns (``k <= j < p``) are all-zero and
simply dropped, which is why the matrix works for every ``2 <= k <= p``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.modular import Mod
from repro.utils.validation import check_prime_p, check_k

__all__ = [
    "liberation_bitmatrix",
    "liberation_parity_cells",
    "bitmatrix_from_parity_cells",
    "full_generator",
]


def liberation_parity_cells(p: int, k: int) -> tuple[list[list[tuple[int, int]]], list[list[tuple[int, int]]]]:
    """Cell membership of every parity constraint of Liberation(p, k).

    Returns ``(p_rows, q_rows)`` where ``p_rows[i]`` / ``q_rows[i]`` list
    the data cells ``(row, col)`` participating in the i-th row-parity /
    anti-diagonal-parity constraint, restricted to real columns
    ``col < k``.  This is the single source of truth for the code's
    definition; both the bit-matrix and the geometric presentation in
    :mod:`repro.core.geometry` are derived from (or validated against) it.
    """
    p = check_prime_p(p)
    k = check_k(k, p, code="liberation")
    mod = Mod(p)

    p_rows: list[list[tuple[int, int]]] = [[] for _ in range(p)]
    q_rows: list[list[tuple[int, int]]] = [[] for _ in range(p)]
    for i in range(p):
        for t in range(k):
            p_rows[i].append((i, t))  # b_{i,t} in P_i
            q_rows[i].append((mod(i + t), t))  # b_{<i+t>,t} in Q_i
        if i != 0:
            extra = (mod(-i - 1), mod(-2 * i))  # a_i
            if extra[1] < k:
                q_rows[i].append(extra)
    return p_rows, q_rows


def bitmatrix_from_parity_cells(
    p_rows: list[list[tuple[int, int]]],
    q_rows: list[list[tuple[int, int]]],
    w: int,
    k: int,
) -> np.ndarray:
    """Assemble a ``2w x kw`` generator from parity-constraint cell lists.

    Data bit ``(row, col)`` maps to vector index ``col * w + row``
    (column-major within the stripe, matching Jerasure's layout).
    """
    g = np.zeros((2 * w, k * w), dtype=np.uint8)
    for i, cells in enumerate(p_rows):
        for (row, col) in cells:
            g[i, col * w + row] ^= 1
    for i, cells in enumerate(q_rows):
        for (row, col) in cells:
            g[w + i, col * w + row] ^= 1
    return g


def liberation_bitmatrix(p: int, k: int) -> np.ndarray:
    """The ``2p x kp`` Liberation generator bit-matrix.

    >>> liberation_bitmatrix(3, 3).shape
    (6, 9)
    """
    p_rows, q_rows = liberation_parity_cells(p, k)
    return bitmatrix_from_parity_cells(p_rows, q_rows, p, k)


def full_generator(generator: np.ndarray, w: int, k: int) -> np.ndarray:
    """Stack the identity over the parity generator.

    Returns the ``(k+2)w x kw`` matrix whose rows express *every* stored
    bit (data first, then P, then Q) as a combination of data bits --
    the form the generic erasure decoder selects surviving rows from.
    """
    if generator.shape != (2 * w, k * w):
        raise ValueError(
            f"generator shape {generator.shape} does not match (2*{w}, {k}*{w})"
        )
    ident = np.eye(k * w, dtype=np.uint8)
    return np.vstack([ident, generator.astype(np.uint8)])
