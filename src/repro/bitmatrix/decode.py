"""Generic bit-matrix erasure decoding (the Jerasure baseline path).

Given up to two erased columns, the decoder

1. selects ``kw`` surviving rows of the full generator -- the data rows
   of every surviving data column, topped up with P rows and then Q rows
   as needed;
2. inverts that square GF(2) matrix (this is the "time consuming matrix
   operation" the paper's §IV-B blames for the original decoder's
   throughput collapse at large ``p``);
3. reads off, for every erased data bit, its expression over surviving
   bits, and lowers those rows to a schedule (dumb or smart);
4. re-encodes erased parity columns from the recovered data.

The resulting schedule reads only surviving cells and writes only erased
cells, so it can run in place on the damaged stripe.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine.ops import Schedule
from repro.gf.gf2 import gf2_inverse, gf2_mul
from repro.bitmatrix.schedule import schedule_from_rows, _emit_chain
from repro.utils.validation import check_erasures

__all__ = ["decoding_rows", "bitmatrix_decode_schedule"]

Cell = tuple[int, int]


def decoding_rows(
    generator: np.ndarray,
    w: int,
    k: int,
    erased_data: Sequence[int],
    *,
    surviving_parities: Sequence[int] = (0, 1),
) -> tuple[np.ndarray, list[Cell], list[Cell]]:
    """Rows expressing the erased data bits over surviving bits.

    Returns ``(rows, dst_cells, src_cells)`` where ``rows`` is an
    ``(e*w) x (k*w)`` GF(2) matrix over the *surviving-bit* space whose
    coordinates correspond to ``src_cells`` (surviving data cells in
    column order, then the parity rows used), and ``dst_cells`` are the
    erased data cells in column order.

    ``surviving_parities`` lists which of P (0) and Q (1) survive; with
    ``e`` erased data columns, ``e`` parity strips are consumed (P
    first), and fewer surviving parities than erased data columns is a
    decoding failure by the Singleton bound.
    """
    erased_data = sorted(set(int(c) for c in erased_data))
    e = len(erased_data)
    if e == 0:
        raise ValueError("decoding_rows called with no erased data columns")
    if any(not 0 <= c < k for c in erased_data):
        raise ValueError(f"erased data columns {erased_data} out of range for k={k}")
    avail = sorted(set(int(x) for x in surviving_parities))
    if len(avail) < e:
        raise ValueError(
            f"{e} data columns erased but only parities {avail} survive: "
            "beyond RAID-6 tolerance"
        )

    surviving_data = [j for j in range(k) if j not in erased_data]
    use_parities = avail[:e]

    # Build the square "survivors" matrix B (kw x kw): B @ data = s,
    # where s stacks surviving data bits then the chosen parity bits.
    blocks = []
    src_cells: list[Cell] = []
    for j in surviving_data:
        block = np.zeros((w, k * w), dtype=np.uint8)
        block[:, j * w : (j + 1) * w] = np.eye(w, dtype=np.uint8)
        blocks.append(block)
        src_cells.extend((j, i) for i in range(w))
    for parity in use_parities:
        blocks.append(generator[parity * w : (parity + 1) * w])
        src_cells.extend((k + parity, i) for i in range(w))
    b = np.vstack(blocks)

    b_inv = gf2_inverse(b)  # data = B^-1 @ s

    # Select the rows of B^-1 for the erased data bits.
    sel = []
    dst_cells: list[Cell] = []
    for j in erased_data:
        sel.extend(range(j * w, (j + 1) * w))
        dst_cells.extend((j, i) for i in range(w))
    rows = b_inv[sel]
    return rows, dst_cells, src_cells


def bitmatrix_decode_schedule(
    generator: np.ndarray,
    w: int,
    k: int,
    erasures: Sequence[int],
    *,
    smart: bool = True,
    total_cols: int | None = None,
) -> Schedule:
    """Full decode schedule for up to two erased columns.

    Data columns are recovered via the inverted survivors matrix; erased
    parity columns are then re-encoded from data using the generator
    rows directly (data is fully known at that point).
    """
    n_cols = total_cols if total_cols is not None else k + 2
    ers = check_erasures(erasures, k + 2)
    erased_data = [c for c in ers if c < k]
    erased_parity = [c - k for c in ers if c >= k]
    surviving_parities = [x for x in (0, 1) if x not in erased_parity]

    sched = Schedule(n_cols, w)
    if erased_data:
        rows, dst_cells, src_cells = decoding_rows(
            generator, w, k, erased_data, surviving_parities=surviving_parities
        )
        part = schedule_from_rows(
            rows, dst_cells, src_cells, cols=n_cols, n_rows=w, smart=smart
        )
        sched.extend(part)

    # Re-encode any erased parity strips from (now complete) data.
    data_cells = [(j, i) for j in range(k) for i in range(w)]
    for parity in erased_parity:
        block = generator[parity * w : (parity + 1) * w]
        for i in range(w):
            srcs = [data_cells[j] for j in np.nonzero(block[i])[0]]
            _emit_chain(sched, (k + parity, i), srcs)
    return sched
