"""Jerasure-style bit-matrix coding substrate.

The original Liberation implementation (Plank, FAST'08; shipped in the
Jerasure library the paper modifies) represents a code as a ``2w x kw``
generator bit-matrix and derives encode/decode programs from it:

* :mod:`repro.bitmatrix.builder` -- generator matrices for Liberation
  (from the paper's defining equations) and for generic XOR codes.
* :mod:`repro.bitmatrix.schedule` -- bit-matrix -> XOR schedule
  lowering: *dumb* (one XOR chain per parity bit) and *smart* (Plank's
  bit-matrix scheduling, deriving each output row from the
  previously-computed row with the smallest Hamming distance).
* :mod:`repro.bitmatrix.decode` -- generic erasure decoding: select a
  full-rank set of surviving rows, invert it over GF(2), and lower the
  decoding matrix to a schedule.

This is the baseline the paper compares against; its higher XOR counts
and its per-decode matrix inversion + scheduling overhead are exactly
the costs the paper's Algorithms 1-4 eliminate.
"""

from repro.bitmatrix.builder import (
    liberation_bitmatrix,
    bitmatrix_from_parity_cells,
    full_generator,
)
from repro.bitmatrix.schedule import (
    dumb_schedule,
    smart_schedule,
    schedule_from_rows,
)
from repro.bitmatrix.decode import (
    decoding_rows,
    bitmatrix_decode_schedule,
)
from repro.bitmatrix.cauchy import (
    cauchy_original_matrix,
    cauchy_good_matrix,
    cauchy_bitmatrix,
    min_w_for,
)

__all__ = [
    "liberation_bitmatrix",
    "bitmatrix_from_parity_cells",
    "full_generator",
    "dumb_schedule",
    "smart_schedule",
    "schedule_from_rows",
    "decoding_rows",
    "bitmatrix_decode_schedule",
    "cauchy_original_matrix",
    "cauchy_good_matrix",
    "cauchy_bitmatrix",
    "min_w_for",
]
