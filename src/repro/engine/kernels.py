"""Levelized bulk-XOR kernels: the native-speed schedule executor.

The fused executor (:class:`~repro.engine.executor.CompiledSchedule`)
already collapses a schedule's op *count* to its destination-cell
count, but it still pays one fancy-indexed gather per destination --
interpreter dispatch and index arithmetic dominate at real element
sizes.  This module lowers one more step, to a short straight-line
program of **contiguous-slice NumPy calls** over the stripe buffer
``buf[cols, rows, words]``:

1. *Contribution levelization* (:func:`_levelize_ops`): every single
   XOR/copy hoists to the lowest dependency level its own hazards
   allow.  This is deliberately finer than the fused executor's
   group levels: a decoder schedule interleaves syndrome building
   with its sequential recovery chain, and per-op levels let all the
   order-free syndrome work sink to level 1 where it can merge wide.
2. *Slice classing* (:func:`_class_runs`): within a level all
   accumulating contributions commute, so they regroup freely;
   contributions that share ``(dst_col, src_col, row_shift)`` and
   cover adjacent rows merge into one slice-wide XOR
   (``buf[dc, a:b] ^= buf[sc, a+s:b+s]`` -- the Liberation Q column's
   rotation structure produces exactly two such runs per source
   column).
3. *Reduce stacking* (:func:`_lower_level`): same-row-span runs from
   a *contiguous range of source columns* merge further into a single
   ``np.bitwise_xor.reduce`` over the 3-D block ``buf[c0:c1, a:b]``
   (the P column and the decoder's row syndromes are one call each).

Execution *binds* the plan to a stripe once -- every slice view is
materialised up front -- and then replays a tuple program whose only
per-step work is the NumPy call itself.  Plans keep a small bound-
program cache keyed by buffer identity (holding a strong reference, so
an id can never be reused while cached); repeated coding of the same
stripe buffer, the shape of every benchmark and of batch rebuild, pays
for binding once.

Unlike the flat-reshape executors, kernel programs slice the stripe
axis-wise and therefore run correctly (in place) on non-contiguous
stripe views, and on buffers with any trailing shape beyond the first
two axes.  That is what makes the batch data plane zero-copy:
:class:`repro.parallel.BatchCoder` binds one plan over the transposed
view ``batch.transpose(1, 2, 0, 3)`` of a stripe-major batch -- and
shards it across threads -- as pure view operations.

The lowering is *proved*, not trusted: ``compile_kernel(validate=True)``
replays the emitted slice program symbolically (see
:mod:`repro.analysis.static.symbolic`) and compares the complete final
state against the source schedule's, and every compile -- validated or
not -- asserts that the plan's total cell-XOR work equals the
schedule's ``n_xors`` (the paper's complexity accounting survives the
lowering bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.ops import Schedule
from repro.obs.tracing import active_tracer

__all__ = ["KernelOp", "KernelPlan", "compile_kernel"]

#: Minimum source-column count worth a 3-D reduce (at 3 columns a
#: reduce already wins on both call count and memory traffic: the
#: destination slice is read and written once instead of per column).
_MIN_REDUCE = 3

# Bound-program opcodes (see KernelPlan.bind).
_OP_XOR = 0  # a ^= b
_OP_COPY = 1  # a[...] = b
_OP_REDUCE = 2  # b[...] = xor-reduce(a, axis=0)
_OP_REDUCE_ACC = 3  # b ^= xor-reduce(a, axis=0)  (via workspace c)


@dataclass(frozen=True)
class KernelOp:
    """One bulk operation over row slices of stripe columns.

    ``kind`` is ``"xor"`` / ``"copy"`` (slice op: destination rows
    ``[dst_lo, dst_hi)`` of ``dst_col`` against source rows
    ``[src_lo, src_hi)`` of ``src_col``) or ``"reduce"`` (XOR-reduce of
    the block ``buf[src_col:src_col_hi, dst_lo:dst_hi]`` into the
    destination slice; ``init`` overwrites, otherwise accumulates).
    """

    kind: str
    dst_col: int
    dst_lo: int
    dst_hi: int
    src_col: int
    src_lo: int
    src_hi: int
    src_col_hi: int = 0  # reduce only: exclusive end of the source-column range
    init: bool = False

    @property
    def height(self) -> int:
        """Destination rows covered (slice width of the bulk call)."""
        return self.dst_hi - self.dst_lo

    @property
    def n_sources(self) -> int:
        return (self.src_col_hi - self.src_col) if self.kind == "reduce" else 1

    @property
    def cell_xors(self) -> int:
        """XOR work in schedule accounting (copies are free)."""
        if self.kind == "copy":
            return 0
        if self.kind == "xor":
            return self.height
        per_row = self.n_sources - 1 if self.init else self.n_sources
        return per_row * self.height

    @property
    def width(self) -> int:
        """Cells combined by this single call (the bulk-XOR width)."""
        return self.height * (self.n_sources + (0 if self.init else 1))

    def __str__(self) -> str:
        if self.kind == "reduce":
            op = "<-" if self.init else "^="
            return (
                f"b[c{self.dst_col},r{self.dst_lo}:{self.dst_hi}] {op} "
                f"reduce(b[c{self.src_col}:{self.src_col_hi},"
                f"r{self.dst_lo}:{self.dst_hi}])"
            )
        op = "<-" if self.kind == "copy" else "^="
        return (
            f"b[c{self.dst_col},r{self.dst_lo}:{self.dst_hi}] {op} "
            f"b[c{self.src_col},r{self.src_lo}:{self.src_hi}]"
        )


class KernelPlan:
    """A schedule lowered to a straight-line slice-XOR program.

    Build with :func:`compile_kernel`; execute with :meth:`run` (which
    binds views to the buffer and caches the bound program), or bind
    explicitly with :meth:`bind` and replay via :meth:`execute`.
    """

    #: bound-program cache entries kept (strong refs to their buffers).
    _CACHE_SIZE = 4

    def __init__(
        self, cols: int, rows: int, ops: list[KernelOp], *, n_levels: int
    ) -> None:
        self.cols = cols
        self.rows = rows
        self.ops: tuple[KernelOp, ...] = tuple(ops)
        self.n_levels = n_levels
        self.n_cell_xors = sum(op.cell_xors for op in self.ops)
        self.max_width = max((op.width for op in self.ops), default=0)
        #: NumPy calls per execution (an accumulating reduce costs two).
        self.n_calls = sum(
            2 if (op.kind == "reduce" and not op.init) else 1 for op in self.ops
        )
        self._needs_ws = any(op.kind == "reduce" and not op.init for op in self.ops)
        self._check_op_aliasing()
        self._bound: dict[int, tuple[np.ndarray, list[tuple]]] = {}

    # -- compile-time safety ------------------------------------------------

    def _check_op_aliasing(self) -> None:
        """Reject any op whose destination slice overlaps its own source.

        Levelization guarantees this never happens for a correct
        lowering; the check makes the in-place NumPy calls (undefined
        on overlapping views) *and* the sequential per-cell semantics
        used by the symbolic validator sound by construction.
        """
        from repro.engine.verify import ScheduleViolation

        for op in self.ops:
            if op.kind == "reduce":
                if op.src_col <= op.dst_col < op.src_col_hi:
                    raise ScheduleViolation(
                        f"kernel reduce reads its own destination column: {op}"
                    )
            elif op.dst_col == op.src_col and (
                op.src_lo < op.dst_hi and op.dst_lo < op.src_hi
            ):
                raise ScheduleViolation(
                    f"kernel slice op aliases source and destination: {op}"
                )

    # -- binding / execution ------------------------------------------------

    def _check(self, buf: np.ndarray) -> None:
        # Any trailing shape works: ops slice axes 0-1 only, so a plan
        # runs unchanged over one stripe ``(cols, rows, words)``, a
        # word-packed batch ``(cols, rows, n*words)``, or a zero-copy
        # transposed view of a stripe-major batch ``(cols, rows, n,
        # words)`` -- the multi-stripe data plane needs no recompile.
        if buf.ndim < 3 or buf.shape[:2] != (self.cols, self.rows):
            raise ValueError(
                f"stripe shape {buf.shape} does not match kernel plan "
                f"({self.cols}, {self.rows}, words...)"
            )

    def bind(self, buf: np.ndarray) -> list[tuple]:
        """Materialise the plan's slice views against ``buf``.

        Returns the bound program: a list of opcode tuples replayed by
        :meth:`execute`.  Valid for as long as ``buf`` is alive; the
        views alias ``buf``, so execution mutates it in place.
        """
        self._check(buf)
        ws = (
            np.empty((self.rows,) + buf.shape[2:], dtype=buf.dtype)
            if self._needs_ws
            else None
        )
        prog: list[tuple] = []
        for op in self.ops:
            dst = buf[op.dst_col, op.dst_lo : op.dst_hi]
            if op.kind == "reduce":
                block = buf[op.src_col : op.src_col_hi, op.dst_lo : op.dst_hi]
                if op.init:
                    prog.append((_OP_REDUCE, block, dst))
                else:
                    assert ws is not None
                    prog.append((_OP_REDUCE_ACC, block, dst, ws[: op.height]))
            else:
                src = buf[op.src_col, op.src_lo : op.src_hi]
                code = _OP_COPY if op.kind == "copy" else _OP_XOR
                prog.append((code, dst, src))
        return prog

    @staticmethod
    def execute(prog: list[tuple]) -> None:
        """Replay a bound program (all state lives in the views)."""
        xor = np.bitwise_xor
        reduce_ = np.bitwise_xor.reduce
        copyto = np.copyto
        for step in prog:
            code = step[0]
            if code == _OP_XOR:
                xor(step[1], step[2], step[1])
            elif code == _OP_COPY:
                copyto(step[1], step[2])
            elif code == _OP_REDUCE:
                reduce_(step[1], 0, None, step[2])
            else:
                ws = step[3]
                reduce_(step[1], 0, None, ws)
                xor(step[2], ws, step[2])

    def run(self, buf: np.ndarray) -> np.ndarray:
        """Execute over ``buf[cols, rows, words]`` (in place).

        The bound program is cached per buffer identity (a few entries,
        holding the buffer alive so the id cannot be recycled); coding
        the same stripe buffer repeatedly binds once.
        """
        key = id(buf)
        entry = self._bound.get(key)
        if entry is None or entry[0] is not buf:
            prog = self.bind(buf)
            if len(self._bound) >= self._CACHE_SIZE:
                self._bound.pop(next(iter(self._bound)))
            self._bound[key] = (buf, prog)
        else:
            prog = entry[1]
        self.execute(prog)
        return buf

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Span/report attributes describing the lowered program."""
        return {
            "levels": self.n_levels,
            "bulk_calls": self.n_calls,
            "kernel_ops": len(self.ops),
            "max_width": self.max_width,
            "cell_xors": self.n_cell_xors,
        }

    def __repr__(self) -> str:
        return (
            f"KernelPlan(cols={self.cols}, rows={self.rows}, "
            f"ops={len(self.ops)}, calls={self.n_calls}, "
            f"levels={self.n_levels}, cell_xors={self.n_cell_xors})"
        )


# -- lowering ---------------------------------------------------------------


#: One merged slice run: ``(dst_col, src_col, shift, dr0, dr1)`` --
#: rows ``[dr0, dr1)`` of ``dst_col`` against rows ``[dr0+shift,
#: dr1+shift)`` of ``src_col``.
_Run = tuple[int, int, int, int, int]


def _class_runs(contribs: list[tuple[int, int]], rows: int) -> list[_Run]:
    """Merge ``(dst_flat, src_flat)`` pairs into maximal slice runs.

    Pairs are grouped by ``(dst_col, src_col, shift)`` -- the slice
    *class* -- and adjacent destination rows within a class coalesce.
    Same-column classes split whenever the run would grow tall enough
    for its destination and source intervals to overlap (the in-place
    slice call would alias).  Duplicate rows (a source XOR'd twice into
    one destination, which cancels) start a fresh run, preserving the
    schedule's exact XOR work.
    """
    classes: dict[tuple[int, int, int], list[int]] = {}
    for dst, src in contribs:
        dc, dr = divmod(dst, rows)
        sc, sr = divmod(src, rows)
        classes.setdefault((dc, sc, sr - dr), []).append(dr)
    runs: list[_Run] = []
    for (dc, sc, shift), drs in sorted(classes.items()):
        drs.sort()
        dr0 = prev = drs[0]
        for dr in drs[1:]:
            grow = dr == prev + 1 and (dc != sc or abs(shift) >= dr + 1 - dr0)
            if not grow:
                runs.append((dc, sc, shift, dr0, prev + 1))
                dr0 = dr
            prev = dr
        runs.append((dc, sc, shift, dr0, prev + 1))
    return runs


def _slice_op(run: _Run, *, init: bool) -> KernelOp:
    dc, sc, shift, dr0, dr1 = run
    return KernelOp(
        "copy" if init else "xor",
        dc,
        dr0,
        dr1,
        sc,
        dr0 + shift,
        dr1 + shift,
        init=init,
    )


#: Cost-model weight of one cell-pass of memory traffic relative to
#: one NumPy call.  Calibrated for the batched multi-stripe regime the
#: data plane runs in (where traffic dominates, ~0.9 measured at batch
#: width 4); single-stripe runs are call-dominated (~0.05) but lose
#: only a few percent under this weighting, while batched throughput
#: gains ~10%.  Rectangles must pay their way under this weight before
#: the peeler accepts them.
_TRAFFIC_WEIGHT = 0.8


def _n_segments(cells: set[tuple[int, int]]) -> int:
    """Vertical contiguous-run count of a ``(src_col, dst_row)`` grid."""
    return sum(1 for c, r in cells if (c, r - 1) not in cells)


def _best_rect(cells: set[tuple[int, int]]) -> tuple[int, int, int, int] | None:
    """Highest-gain all-present rectangle ``(sc0, sc1, dr0, dr1)``.

    ``cells`` holds ``(src_col, dst_row)`` points; a rectangle is a
    consecutive column range x consecutive row range fully covered by
    points, at least :data:`_MIN_REDUCE` columns wide.  Candidates are
    scored by the cost they remove: the slice runs they absorb (minus
    the two calls an accumulating reduce spends) plus the memory-
    traffic delta -- a reduce reads the block once and touches its
    destination once (``(m + 2) * h`` cell-passes) where per-column
    slice runs pay ``3 * m * h``.  Peeling is refused entirely when no
    candidate has positive gain, so a rectangle can never fragment the
    remaining grid into something more expensive than leaving the runs
    alone.  Grids are at most ``cols x rows`` cells, so the quadratic
    scan is trivially cheap at compile time.
    """
    base_segments = _n_segments(cells)
    best: tuple[int, int, int, int] | None = None
    best_gain = 0.0
    for sc0, dr0 in cells:
        sc1 = sc0
        while (sc1 + 1, dr0) in cells:
            sc1 += 1
        for hi in range(sc0 + _MIN_REDUCE - 1, sc1 + 1):
            dr1 = dr0
            while all((c, dr1 + 1) in cells for c in range(sc0, hi + 1)):
                dr1 += 1
            m = hi + 1 - sc0
            h = dr1 + 1 - dr0
            remaining = cells - {
                (c, r) for c in range(sc0, hi + 1) for r in range(dr0, dr1 + 1)
            }
            calls_saved = base_segments - _n_segments(remaining) - 2
            passes_saved = 3 * m * h - (m + 2) * h
            gain = calls_saved + _TRAFFIC_WEIGHT * passes_saved
            if gain > best_gain:
                best_gain = gain
                best = (sc0, hi + 1, dr0, dr1 + 1)
    return best


def _lower_level(contribs: list[tuple[int, int, bool]], rows: int) -> list[KernelOp]:
    """Lower one level of ``(dst, src, is_copy)`` contributions.

    Within a level every source is a pre-level value and (apart from
    each destination's own in-place accumulation) no cell is both read
    and written, so all accumulating contributions commute; only each
    destination's *initial* copy must run first.  That freedom is the
    whole optimisation: contributions regroup by slice class regardless
    of their schedule positions.

    Same-row (shift-0) contributions get a further rectangle pass: per
    destination column, the ``(src_col, dst_row)`` grid is greedily
    peeled into maximal all-present rectangles of consecutive source
    columns, each a single 3-D ``np.bitwise_xor.reduce`` over
    ``buf[c0:c1, a:b]``.  A reduce touches its destination once instead
    of once per column, which cuts memory traffic by ~3x on top of the
    call-count win -- the dominant effect once plans run over batched
    (multi-stripe) word axes.  An initial copy whose class directly
    precedes a rectangle is folded in as an overwriting reduce (one
    call computes a whole decoder row syndrome).  Whatever the
    rectangle pass leaves, and every shifted (diagonal) contribution,
    lowers to merged slice runs via :func:`_class_runs`.
    """
    init_runs = _class_runs([(d, s) for d, s, is_copy in contribs if is_copy], rows)

    # Split the accumulates: shift-0 cross-column contributions go into
    # per-destination-column grids for the rectangle pass; everything
    # else (diagonals, same-column) lowers as slice runs.  Duplicate
    # grid cells (a source XOR'd twice -- cancelling work the schedule
    # really performs) stay out of the grid beyond the first instance.
    grids: dict[int, set[tuple[int, int]]] = {}
    shifted: list[tuple[int, int]] = []
    for d, s, is_copy in contribs:
        if is_copy:
            continue
        dc, dr = divmod(d, rows)
        sc, sr = divmod(s, rows)
        if sr == dr and sc != dc:
            cell = (sc, dr)
            grid = grids.setdefault(dc, set())
            if cell in grid:
                shifted.append((d, s))
            else:
                grid.add(cell)
        else:
            shifted.append((d, s))

    ops: list[KernelOp] = []

    # Initial copies -- folded into an overwriting reduce when the grid
    # continues their class over at least two following columns.
    for run in init_runs:
        dc, sc, shift, dr0, dr1 = run
        grid = grids.get(dc, set())
        length = 0
        if shift == 0:
            while all(
                (sc + 1 + length, r) in grid for r in range(dr0, dr1)
            ):
                length += 1
        if length >= 2:
            for c in range(sc + 1, sc + 1 + length):
                for r in range(dr0, dr1):
                    grid.remove((c, r))
            ops.append(
                KernelOp(
                    "reduce",
                    dc,
                    dr0,
                    dr1,
                    sc,
                    dr0,
                    dr1,
                    src_col_hi=sc + 1 + length,
                    init=True,
                )
            )
        else:
            ops.append(_slice_op(run, init=True))

    # Greedy rectangle peeling, largest first.
    leftovers: list[tuple[int, int]] = []
    for dc in sorted(grids):
        grid = grids[dc]
        while grid:
            rect = _best_rect(grid)
            if rect is None:
                break
            sc0, sc1, dr0, dr1 = rect
            for c in range(sc0, sc1):
                for r in range(dr0, dr1):
                    grid.remove((c, r))
            ops.append(
                KernelOp(
                    "reduce", dc, dr0, dr1, sc0, dr0, dr1,
                    src_col_hi=sc1, init=False,
                )
            )
        leftovers.extend((dc * rows + r, c * rows + r) for c, r in grid)

    ops.extend(
        _slice_op(run, init=False)
        for run in _class_runs(shifted + leftovers, rows)
    )
    return ops


def compile_kernel(schedule: Schedule, *, validate: bool = False) -> KernelPlan:
    """Lower ``schedule`` to a :class:`KernelPlan` (see module docstring).

    Always asserts XOR-work conservation (plan cell-XORs == schedule
    ``n_xors``); with ``validate=True`` additionally proves the emitted
    slice program cell-for-cell equivalent to the schedule by symbolic
    execution, raising :class:`~repro.engine.verify.ScheduleViolation`
    on any divergence.
    """
    tracer = active_tracer()
    if tracer is not None:
        with tracer.span(
            "engine.compile",
            ops=len(schedule),
            xors=schedule.n_xors,
            kernel=True,
            validate=validate,
        ):
            return _lower(schedule, validate=validate)
    return _lower(schedule, validate=validate)


def _levelize_ops(schedule: Schedule) -> dict[int, list[tuple[int, int, bool]]]:
    """Assign a dependency level to every *contribution* of the schedule.

    Finer-grained than the fused executor's group levels: each op hoists
    to the lowest level consistent with its own hazards, so e.g. decoder
    syndrome accumulations all land in level 1 -- where they merge into
    wide slice classes -- even though the schedule interleaves them with
    the sequential recovery chain.  Hazard state per flat cell:

    * ``wl[c]`` -- level of the last write (RAW: readers go above it);
    * ``rl[c]`` -- highest level reading ``c`` (WAR: writers go above
      it, which also preserves the schedule's deliberate reads of
      *partially built* syndromes: contributions after such a read start
      a new accumulation epoch strictly above the reader);
    * ``epoch[c]`` -- level of ``c``'s current accumulation epoch;
      accumulates may share a level because they commute.

    Consequence (the contract :func:`_lower_level` relies on): within a
    level no cell is both read and written, except each destination's
    own in-place accumulation.

    A second, slack-driven pass then *delays* contributions to line up
    slice classes (see :func:`_align_classes`): an accumulate whose
    source is never written anywhere in the schedule may run at any
    level between its ASAP level and the level just below the next read
    of (or copy over) its destination -- all such contributions commute
    and their sources are immutable, so only the destination's own
    read/write sequence constrains them.  Within each slice class,
    adjacent rows whose windows intersect are pinned to one common
    level, turning e.g. a P-syndrome class split by the recovery
    chain's partial-value reads back into a handful of tall runs.
    """
    rows = schedule.rows
    wl: dict[int, int] = {}
    rl: dict[int, int] = {}
    epoch: dict[int, int] = {}
    recs: list[tuple[int, int, bool, int]] = []  # (dst, src, is_copy, asap)
    for op in schedule:
        d = op.dst_col * rows + op.dst_row
        s = op.src_col * rows + op.src_row
        if op.copy:
            lvl = max(wl.get(s, 0) + 1, rl.get(d, 0) + 1, wl.get(d, 0) + 1)
        else:
            lvl = max(epoch.get(d, 1), wl.get(s, 0) + 1, rl.get(d, 0) + 1)
        epoch[d] = lvl
        wl[d] = lvl
        rl[s] = max(rl.get(s, 0), lvl)
        recs.append((d, s, op.copy, lvl))

    levels = _align_classes(recs, rows)
    by_level: dict[int, list[tuple[int, int, bool]]] = {}
    for (d, s, is_copy, _), lvl in zip(recs, levels):
        by_level.setdefault(lvl, []).append((d, s, is_copy))
    return by_level


def _align_classes(recs: list[tuple[int, int, bool, int]], rows: int) -> list[int]:
    """Choose a final level per contribution, delaying to align classes.

    ``recs`` is the program-ordered ``(dst, src, is_copy, asap)`` list.
    A contribution is *relocatable* when it is an accumulate whose
    source cell is never written in the schedule: its read is then
    timeless, every sibling accumulate into the same destination
    commutes with it, and the only hard deadline is the next event that
    observes or overwrites the destination (a read of the completed
    epoch, or a fresh copy).  Delaying such a contribution anywhere up
    to that deadline leaves every other op's hazard analysis intact --
    readers were already forced above the destination's *ASAP* writes,
    which the deadline is derived from.

    Relocation is then a windowing problem per slice class
    ``(dst_col, src_col, shift)``: walk the class's rows in order and
    keep a running ``[lo, hi]`` window intersection; while adjacent
    rows keep the intersection non-empty they are assigned one common
    level, so the later run-merging pass sees them as a single slice.
    Fixed contributions join the walk with the degenerate window
    ``[asap, asap]``.
    """
    written = {d for d, _, _, _ in recs}
    max_lvl = max((lvl for *_, lvl in recs), default=1)
    horizon = max_lvl + 1

    # Deadline pass (reverse program order): the nearest following read
    # of / copy over each cell, by ASAP level.  Reads performed by
    # relocatable contributions never target written cells, so every
    # deadline here comes from an op whose level is final.
    deadline: list[int] = [0] * len(recs)
    nxt: dict[int, int] = {}
    for i in range(len(recs) - 1, -1, -1):
        d, s, is_copy, lvl = recs[i]
        deadline[i] = nxt.get(d, horizon) - 1
        nxt[s] = min(nxt.get(s, horizon), lvl)
        if is_copy:
            nxt[d] = min(nxt.get(d, horizon), lvl)

    levels = [lvl for *_, lvl in recs]
    classes: dict[tuple[int, int, int], list[tuple[int, int, int, int]]] = {}
    for i, (d, s, is_copy, lvl) in enumerate(recs):
        dc, dr = divmod(d, rows)
        sc, sr = divmod(s, rows)
        hi = deadline[i] if (not is_copy and s not in written) else lvl
        classes.setdefault((dc, sc, sr - dr), []).append((dr, lvl, hi, i))

    for members in classes.values():
        members.sort()
        run: list[int] = []
        lo = hi = 0
        prev_row = -2
        for row, mlo, mhi, idx in members:
            if row == prev_row + 1 and max(lo, mlo) <= min(hi, mhi):
                lo, hi = max(lo, mlo), min(hi, mhi)
            else:
                for j in run:
                    levels[j] = lo
                run = []
                lo, hi = mlo, mhi
            run.append(idx)
            prev_row = row
        for j in run:
            levels[j] = lo
    return levels


def _lower(schedule: Schedule, *, validate: bool) -> KernelPlan:
    from repro.engine.verify import ScheduleViolation

    by_level = _levelize_ops(schedule)
    ops: list[KernelOp] = []
    for lvl in sorted(by_level):
        ops.extend(_lower_level(by_level[lvl], schedule.rows))
    plan = KernelPlan(schedule.cols, schedule.rows, ops, n_levels=len(by_level))
    if plan.n_cell_xors != schedule.n_xors:
        raise ScheduleViolation(
            f"kernel lowering changed the XOR work: schedule has "
            f"{schedule.n_xors} XORs, kernel program performs "
            f"{plan.n_cell_xors}"
        )
    if validate:
        _validate_kernel(schedule, plan)
    return plan


def _validate_kernel(schedule: Schedule, plan: KernelPlan) -> None:
    """Symbolically prove the kernel program equivalent to the schedule.

    The emitted op list is interpreted sequentially over a pristine
    symbolic stripe.  Per-op sequential cell interpretation is exact
    because :meth:`KernelPlan._check_op_aliasing` already rejected any
    op whose destination overlaps its own source.
    """
    # Lazy import for the same package-cycle reason as in executor.py.
    from repro.analysis.static.symbolic import (
        format_expr,
        pristine_state,
        symbolic_execute,
    )
    from repro.engine.verify import ScheduleViolation

    want = symbolic_execute(schedule)
    state = pristine_state(schedule.cols, schedule.rows)
    for op in plan.ops:
        if op.kind == "reduce":
            for r in range(op.dst_lo, op.dst_hi):
                acc = frozenset() if op.init else state[(op.dst_col, r)]
                for c in range(op.src_col, op.src_col_hi):
                    acc = acc ^ state[(c, r)]
                state[(op.dst_col, r)] = acc
        else:
            shift = op.src_lo - op.dst_lo
            for r in range(op.dst_lo, op.dst_hi):
                src = state[(op.src_col, r + shift)]
                if op.kind == "copy":
                    state[(op.dst_col, r)] = src
                else:
                    state[(op.dst_col, r)] = state[(op.dst_col, r)] ^ src
    for cell in sorted(want):
        if state[cell] != want[cell]:
            raise ScheduleViolation(
                f"kernel lowering diverges at cell (c{cell[0]},r{cell[1]}): "
                f"schedule computes {format_expr(want[cell])}, "
                f"kernel computes {format_expr(state[cell])}"
            )
