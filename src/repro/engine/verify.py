"""Static schedule verification (compatibility wrapper).

The structural checker grew into the static-analysis package --
:func:`repro.analysis.static.structural.check_structure` is the
canonical implementation (ordering discipline over erased *and* scratch
garbage), and :mod:`repro.analysis.static.prover` adds full symbolic
proofs of functional correctness on top.  :func:`verify_schedule` is
kept here, signature-compatible plus a ``garbage_cols`` extension, for
the many call sites and downstream schedule generators that grew up
against it.

``garbage_cols`` names columns that are not erased but still hold
garbage until first written -- the scratch workspace columns some
decoders stage intermediates in (``RAID6Code.n_scratch``).  Without it
a reordered schedule that reads a scratch staging cell *before* the
copy that initialises it passes the check while silently consuming
garbage; declaring the scratch column makes the read-before-write
ordering violation visible.  Decode-schedule verification should pass
``unreadable_cols=erasures`` and ``garbage_cols=range(code.n_cols,
code.total_cols)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.engine.ops import Schedule

__all__ = ["ScheduleViolation", "verify_schedule"]


class ScheduleViolation(AssertionError):
    """A structural defect in a schedule (with the offending op index)."""


def verify_schedule(
    schedule: Schedule,
    *,
    unreadable_cols: Iterable[int] = (),
    garbage_cols: Iterable[int] = (),
    required_dsts: Iterable[tuple[int, int]] | None = None,
) -> None:
    """Statically check a schedule's read/write discipline.

    ``unreadable_cols``: columns whose initial contents are garbage
    (the erasure pattern for a decode schedule).  ``garbage_cols``:
    scratch columns, equally garbage until written.  Any read of such a
    cell must be preceded by a write to it.  ``required_dsts``: cells
    the schedule must write at least once (e.g. every cell of every
    erased column).

    Raises :class:`ScheduleViolation` with op index/context on failure;
    returns ``None`` when clean.
    """
    # Imported lazily: repro.analysis.static imports the code families,
    # which import repro.engine -- a module-level import here would
    # close that cycle during package initialisation.
    from repro.analysis.static.structural import check_structure

    check_structure(
        schedule,
        unreadable_cols=unreadable_cols,
        garbage_cols=garbage_cols,
        required_dsts=required_dsts,
    )
