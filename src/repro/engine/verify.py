"""Static schedule verification.

A decode schedule is only correct if it never *reads* an erased cell
before *writing* it (erased strips hold garbage), and only useful if it
writes everything it promised.  :func:`verify_schedule` checks those
structural properties without executing anything; the code classes'
builders are all validated through it in the test suite, and downstream
users writing custom schedule generators get the same safety net.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.engine.ops import Schedule

__all__ = ["ScheduleViolation", "verify_schedule"]


class ScheduleViolation(AssertionError):
    """A structural defect in a schedule (with the offending op index)."""


def verify_schedule(
    schedule: Schedule,
    *,
    unreadable_cols: Iterable[int] = (),
    required_dsts: Iterable[tuple[int, int]] | None = None,
) -> None:
    """Statically check a schedule's read/write discipline.

    ``unreadable_cols``: columns whose initial contents are garbage
    (the erasure pattern for a decode schedule).  Any read of such a
    cell must be preceded by a write to it.

    ``required_dsts``: cells the schedule must write at least once
    (e.g. every cell of every erased column).

    Raises :class:`ScheduleViolation` with op index/context on failure;
    returns ``None`` when clean.
    """
    unreadable = set(unreadable_cols)
    written: set[tuple[int, int]] = set()
    for i, op in enumerate(schedule):
        if op.src_col in unreadable and op.src not in written:
            raise ScheduleViolation(
                f"op {i} ({op}) reads unwritten cell {op.src} of "
                f"unreadable column {op.src_col}"
            )
        if not op.copy and op.dst_col in unreadable and op.dst not in written:
            raise ScheduleViolation(
                f"op {i} ({op}) accumulates into unwritten cell {op.dst} "
                f"of unreadable column {op.dst_col}"
            )
        written.add(op.dst)
    if required_dsts is not None:
        missing = set(required_dsts) - written
        if missing:
            raise ScheduleViolation(
                f"schedule never writes {len(missing)} required cells, "
                f"e.g. {sorted(missing)[:4]}"
            )
