"""Schedule execution: bit-level reference and word-level fast paths.

Two executors share one semantics:

* :func:`execute_bits` -- interprets a schedule op-by-op over a
  ``(cols, rows)`` 0/1 array.  This is the reference implementation used
  by correctness tests and by anything that wants exact bit semantics.

* :func:`execute_words` / :class:`CompiledSchedule` -- runs the schedule
  over a stripe of machine-word elements ``buf[cols, rows, words]``.
  For throughput, schedules are first *compiled*: runs of accumulates
  into the same destination are fused into a single gather + XOR-reduce
  so that the NumPy call count scales with the number of destination
  cells instead of the number of XOR ops (the HPC guides' "vectorise the
  inner loop" rule).  Fusion is a single program-order pass with
  read/write hazard tracking, so any legal schedule -- including the
  decoder's in-place syndrome updates, where a cell is produced, read by
  another op, and then updated again -- executes identically to the
  sequential reference.

The XOR *count* of a schedule is a property of the schedule itself
(``Schedule.n_xors``), never of the execution strategy; compiling for
speed cannot change the complexity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.ops import Schedule
from repro.obs.tracing import active_tracer

__all__ = [
    "execute_bits",
    "execute_words",
    "compile_schedule",
    "fuse_schedule",
    "assign_levels",
    "CompiledSchedule",
    "StreamingSchedule",
]


def execute_bits(schedule: Schedule, bits: np.ndarray) -> np.ndarray:
    """Run ``schedule`` in place over a ``(cols, rows)`` 0/1 array.

    Returns ``bits`` for convenience.
    """
    if bits.shape != (schedule.cols, schedule.rows):
        raise ValueError(
            f"bit array shape {bits.shape} does not match schedule "
            f"({schedule.cols}, {schedule.rows})"
        )
    for op in schedule:
        if op.copy:
            bits[op.dst_col, op.dst_row] = bits[op.src_col, op.src_row]
        else:
            bits[op.dst_col, op.dst_row] ^= bits[op.src_col, op.src_row]
    return bits


@dataclass
class _Group:
    """A fused run: ``dst <- (0 | dst) ^ src_0 ^ src_1 ^ ...``."""

    dst: int  # flat cell index (col * rows + row)
    srcs: list[int]
    init_copy: bool  # True: first src overwrites dst; False: dst is live


def assign_levels(groups: list[_Group]) -> list[tuple[int, _Group]]:
    """Assign a dependency level to each fused group, in program order.

    A group's level is strictly greater than the level of any group that
    produced one of its inputs (RAW) and of any earlier group that read
    or wrote its destination (WAR/WAW).  Consequence, relied on by every
    level-at-once executor: **within one level no cell is both read and
    written**, so the groups of a level may run in any order -- or as
    one wide slice operation -- without changing the result.
    """
    write_level: dict[int, int] = {}  # cell -> level of its last writer
    touch_level: dict[int, int] = {}  # cell -> last level reading/writing it
    levelled: list[tuple[int, _Group]] = []
    for g in groups:
        lvl = 1
        reads = list(g.srcs) if g.init_copy else [*g.srcs, g.dst]
        for c in reads:
            lvl = max(lvl, write_level.get(c, 0) + 1)
        # WAR/WAW: run after anything that already touched our dst.
        lvl = max(lvl, touch_level.get(g.dst, 0) + 1)
        write_level[g.dst] = lvl
        touch_level[g.dst] = max(touch_level.get(g.dst, 0), lvl)
        for c in g.srcs:
            touch_level[c] = max(touch_level.get(c, 0), lvl)
        levelled.append((lvl, g))
    return levelled


class CompiledSchedule:
    """A schedule lowered to levelized, batched gather/XOR-reduce steps.

    Two-stage lowering:

    1. *Fusion* (:func:`compile_schedule`): runs of accumulates into the
       same destination become one group ``dst <- (0|dst) ^ xor(srcs)``,
       ordered so that flush order is equivalent to program order.
    2. *Levelization* (here): groups are assigned dependency levels
       (a group must run strictly after any group producing one of its
       inputs, and after any earlier group reading or writing its
       destination).  Within a level, groups with the same source count
       and init mode execute as **one** NumPy call chain -- a 2-D
       gather, an XOR-reduce over the source axis, and a scatter to the
       (necessarily distinct) destinations.

    For an encode schedule this collapses thousands of element XORs
    into ~half a dozen NumPy calls, so measured throughput reflects the
    schedule's XOR *work* rather than interpreter dispatch overhead --
    the property the paper's throughput comparison relies on.

    Execution is per-group by default (``batched=False``): each group's
    gather stays small enough to be cache-resident, which measures
    faster on every stripe geometry we benchmarked than materialising
    whole levels (a level-sized gather spills to DRAM and doubles
    traffic).  The levelized batches remain available for callers that
    want one-call-per-level execution on very small stripes.
    """

    def __init__(self, cols: int, rows: int, groups: list[_Group], *, batched: bool = False) -> None:
        self.cols = cols
        self.rows = rows
        self.n_groups = len(groups)
        self.batched = batched
        self._groups: list[tuple[int, np.ndarray, bool]] = [
            (g.dst, np.asarray(g.srcs, dtype=np.intp), g.init_copy) for g in groups
        ]
        self._batches = self._levelize(groups) if batched else None

    @staticmethod
    def _levelize(groups: list[_Group]) -> list[tuple[bool, np.ndarray, np.ndarray]]:
        """Assign levels, then bucket by (level, n_srcs, init_copy).

        Returns ``(init_copy, dsts[g], srcs[g, m])`` batches in
        dependency-safe execution order.
        """
        levelled = assign_levels(groups)
        buckets: dict[tuple[int, int, bool], list[_Group]] = {}
        for lvl, g in levelled:
            buckets.setdefault((lvl, len(g.srcs), g.init_copy), []).append(g)
        batches = []
        for (lvl, m, init_copy) in sorted(buckets):
            members = buckets[(lvl, m, init_copy)]
            dsts = np.array([g.dst for g in members], dtype=np.intp)
            srcs = np.array([g.srcs for g in members], dtype=np.intp)
            batches.append((init_copy, dsts, srcs))
        return batches

    def run(self, buf: np.ndarray) -> np.ndarray:
        """Execute over ``buf[cols, rows, words]`` (in place)."""
        if buf.shape[:2] != (self.cols, self.rows):
            raise ValueError(
                f"stripe shape {buf.shape[:2]} does not match schedule "
                f"({self.cols}, {self.rows})"
            )
        flat = buf.reshape(self.cols * self.rows, -1)
        if self._batches is not None:
            for init_copy, dsts, srcs in self._batches:
                if srcs.shape[1] == 1:
                    acc = flat[srcs[:, 0]]
                else:
                    acc = np.bitwise_xor.reduce(flat[srcs], axis=1)
                if init_copy:
                    flat[dsts] = acc
                else:
                    flat[dsts] = flat[dsts] ^ acc
            return buf
        for dst, srcs, init_copy in self._groups:
            if srcs.size == 1:
                if init_copy:
                    flat[dst] = flat[srcs[0]]
                else:
                    np.bitwise_xor(flat[dst], flat[srcs[0]], out=flat[dst])
                continue
            acc = np.bitwise_xor.reduce(flat[srcs], axis=0)
            if init_copy:
                flat[dst] = acc
            else:
                np.bitwise_xor(flat[dst], acc, out=flat[dst])
        return buf


def compile_schedule(
    schedule: Schedule,
    *,
    batched: bool = False,
    validate: bool = False,
    kernel: bool = False,
):
    """Fuse a schedule into gather/reduce groups (see module docstring).

    ``batched`` selects the levelized one-call-per-level execution of
    :class:`CompiledSchedule` instead of the per-group default; both
    strategies are semantically identical (the differential fuzzer in
    :mod:`repro.sim` holds them to that).

    ``kernel`` lowers further, to a :class:`~repro.engine.kernels.KernelPlan`
    of contiguous-slice bulk XORs (see :mod:`repro.engine.kernels`) --
    the production fast path.  ``validate`` applies to that lowering
    too, proving the emitted kernel program cell-for-cell equivalent to
    the source schedule.

    ``validate`` additionally *proves* the lowering correct: the fused
    group program (and, when ``batched``, the levelized batches) is
    symbolically executed and its final state compared cell-for-cell
    against the source schedule's -- a fusion or levelization bug
    raises :class:`~repro.engine.verify.ScheduleViolation` at compile
    time instead of surfacing as corrupt data.  Debug/fuzzing aid; adds
    interpretation cost proportional to schedule length, so leave it
    off on hot paths.

    Hazard rules enforced during the single program-order pass:

    * before an op *reads* cell ``c``: flush any open group producing
      ``c`` (read-after-write);
    * before an op *writes* cell ``c``: flush any open group producing
      ``c`` that cannot absorb the op, and any open group *reading*
      ``c`` (write-after-read);
    * a copy into a destination with an open group starts a fresh group
      (the old value is dead by definition of copy).
    """
    if kernel:
        # Imported lazily: kernels builds on the fusion/levelization
        # machinery of this module, so a top-level import would cycle.
        from repro.engine.kernels import compile_kernel

        return compile_kernel(schedule, validate=validate)
    tracer = active_tracer()
    if tracer is not None:
        with tracer.span(
            "engine.compile",
            ops=len(schedule),
            xors=schedule.n_xors,
            batched=batched,
            validate=validate,
        ):
            return _compile(schedule, batched=batched, validate=validate)
    return _compile(schedule, batched=batched, validate=validate)


def _compile(
    schedule: Schedule, *, batched: bool, validate: bool
) -> CompiledSchedule:
    compiled = CompiledSchedule(
        schedule.cols, schedule.rows, fuse_schedule(schedule), batched=batched
    )
    if validate:
        _validate_compilation(schedule, compiled)
    return compiled


def fuse_schedule(schedule: Schedule) -> list[_Group]:
    """The fusion pass: program order in, hazard-safe group order out."""
    rows = schedule.rows
    open_groups: dict[int, _Group] = {}  # dst flat index -> group
    readers: dict[int, set[int]] = {}  # cell -> dsts of open groups reading it
    order: list[_Group] = []

    def flush(dst: int) -> None:
        group = open_groups.pop(dst, None)
        if group is None:
            return
        for s in group.srcs:
            peers = readers.get(s)
            if peers is not None:
                peers.discard(dst)
                if not peers:
                    del readers[s]
        order.append(group)

    for op in schedule:
        dst = op.dst_col * rows + op.dst_row
        src = op.src_col * rows + op.src_row

        # RAW: the source must be fully produced before we read it.
        if src in open_groups:
            flush(src)
        # WAR: open groups reading `dst` must run before we overwrite it.
        for reader_dst in tuple(readers.get(dst, ())):
            if reader_dst != dst:
                flush(reader_dst)

        group = open_groups.get(dst)
        if op.copy:
            if group is not None:
                # Overwritten before being read by anyone: value is dead,
                # but flush anyway to keep op-count semantics simple.
                flush(dst)
            group = _Group(dst, [src], init_copy=True)
            open_groups[dst] = group
        else:
            if group is None:
                group = _Group(dst, [src], init_copy=False)
                open_groups[dst] = group
            else:
                group.srcs.append(src)
        readers.setdefault(src, set()).add(dst)

    for dst in tuple(open_groups):
        flush(dst)
    return order


def _validate_compilation(schedule: Schedule, compiled: CompiledSchedule) -> None:
    """Symbolically prove ``compiled`` equivalent to ``schedule``.

    Both programs are interpreted over a pristine symbolic stripe (every
    cell its own atom) and their complete final states compared; any
    differing cell is a lowering bug.
    """
    # Imported lazily: the static-analysis package imports the code
    # families, which import repro.engine -- a module-level import here
    # would close that cycle during package initialisation.
    from repro.analysis.static.symbolic import (
        format_expr,
        symbolic_execute,
        symbolic_execute_groups,
    )
    from repro.engine.verify import ScheduleViolation

    want = symbolic_execute(schedule)

    programs: list[tuple[str, list[tuple[int, np.ndarray, bool]]]] = [
        ("fused", compiled._groups)
    ]
    if compiled._batches is not None:
        # Within a level no group reads another's destination, so
        # sequential interpretation of the batch members is equivalent
        # to the gather-then-scatter execution.
        programs.append(
            (
                "batched",
                [
                    (int(dsts[g]), srcs[g], init_copy)
                    for init_copy, dsts, srcs in compiled._batches
                    for g in range(dsts.size)
                ],
            )
        )
    for label, groups in programs:
        got = symbolic_execute_groups(schedule.cols, schedule.rows, groups)
        for cell in sorted(want):
            if got[cell] != want[cell]:
                raise ScheduleViolation(
                    f"{label} lowering diverges at cell (c{cell[0]},r{cell[1]}): "
                    f"schedule computes {format_expr(want[cell])}, "
                    f"compiled computes {format_expr(got[cell])}"
                )


class StreamingSchedule:
    """Op-at-a-time execution, mirroring Jerasure's region operations.

    Jerasure executes a schedule as one ``galois_region_xor`` (or
    memcpy) per scheduled operation; throughput is therefore
    proportional to the *operation count* -- which is exactly the
    quantity the paper's algorithms minimise.  This executor preserves
    that model: one NumPy XOR/copy over the element per op, no fusion.
    Use it for paper-faithful throughput comparisons;
    :class:`CompiledSchedule` is the faster fused engine for production
    use (where the fusion blurs the algorithms' op-count differences).
    """

    def __init__(self, schedule: Schedule) -> None:
        self.cols = schedule.cols
        self.rows = schedule.rows
        arr = schedule.to_array()
        rows = self.rows
        self._dst = (arr[:, 0] * rows + arr[:, 1]).astype(np.intp)
        self._src = (arr[:, 2] * rows + arr[:, 3]).astype(np.intp)
        self._copy = arr[:, 4].astype(bool)

    @property
    def n_ops(self) -> int:
        return self._dst.size

    def run(self, buf: np.ndarray) -> np.ndarray:
        """Execute over ``buf[cols, rows, words]`` (in place)."""
        if buf.shape[:2] != (self.cols, self.rows):
            raise ValueError(
                f"stripe shape {buf.shape[:2]} does not match schedule "
                f"({self.cols}, {self.rows})"
            )
        flat = buf.reshape(self.cols * self.rows, -1)
        for dst, src, is_copy in zip(self._dst, self._src, self._copy):
            if is_copy:
                flat[dst] = flat[src]
            else:
                np.bitwise_xor(flat[dst], flat[src], out=flat[dst])
        return buf


def execute_words(schedule: Schedule, buf: np.ndarray) -> np.ndarray:
    """One-shot compile + run over a word stripe (in place).

    For hot paths, compile once with :func:`compile_schedule` and reuse
    the :class:`CompiledSchedule`.
    """
    return compile_schedule(schedule).run(buf)
