"""Schedule data model.

A :class:`Schedule` is an ordered sequence of :class:`XorOp` cell
operations over a logical stripe of shape ``(cols, rows)``:

* ``dst <- src``          (a *copy*; costs 0 XORs), or
* ``dst <- dst XOR src``  (an *accumulate*; costs 1 XOR).

This mirrors how Jerasure represents "schedules" and exactly matches the
paper's XOR accounting: e.g. ``b[0,5] <- b[0,1] ^ b[0,2]`` is recorded as
a copy followed by one accumulate (1 XOR), and
``b[4,5] <- b[4,0] ^ ... ^ b[4,4]`` as one copy plus four accumulates
(4 XORs).  The paper's 40-XOR encode / 39-XOR decode examples for
``p = 5`` are unit-test oracles over this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["XorOp", "Schedule"]


@dataclass(frozen=True)
class XorOp:
    """One cell operation.

    Attributes
    ----------
    dst_col, dst_row:
        Destination cell.
    src_col, src_row:
        Source cell.
    copy:
        ``True`` for ``dst <- src`` (overwrite), ``False`` for
        ``dst <- dst ^ src`` (accumulate, costs one XOR).
    """

    dst_col: int
    dst_row: int
    src_col: int
    src_row: int
    copy: bool = False

    @property
    def dst(self) -> tuple[int, int]:
        return (self.dst_col, self.dst_row)

    @property
    def src(self) -> tuple[int, int]:
        return (self.src_col, self.src_row)

    @property
    def xor_cost(self) -> int:
        """1 for an accumulate, 0 for a copy (the paper's accounting)."""
        return 0 if self.copy else 1

    def __str__(self) -> str:
        # Labelled so the rendering can never be misread: the old
        # ``b[row,col]`` form printed indices in the opposite order to
        # the (dst_col, dst_row, ...) constructor and the (col, row)
        # cell tuples used everywhere else.
        op = "<-" if self.copy else "^="
        return (
            f"b[c{self.dst_col},r{self.dst_row}] {op} "
            f"b[c{self.src_col},r{self.src_row}]"
        )


class Schedule:
    """An ordered XOR/copy program over a ``(cols, rows)`` stripe.

    The class enforces a *write-before-read discipline for destinations*:
    the first operation touching a destination cell should normally be a
    copy (or the caller explicitly zero-initialised it).  Builders use
    :meth:`xor_into` which turns the first touch of a destination into a
    copy automatically -- the "has not been accessed" test that appears
    in the paper's Algorithms 1 and 3.
    """

    def __init__(self, cols: int, rows: int, ops: Iterable[XorOp] = ()) -> None:
        if cols <= 0 or rows <= 0:
            raise ValueError(f"invalid stripe shape ({cols}, {rows})")
        self.cols = int(cols)
        self.rows = int(rows)
        self._ops: list[XorOp] = []
        self._touched: set[tuple[int, int]] = set()
        for op in ops:
            self.append(op)

    # -- construction -------------------------------------------------

    def _check_cell(self, col: int, row: int) -> None:
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise IndexError(
                f"cell (col={col}, row={row}) outside stripe "
                f"({self.cols} cols x {self.rows} rows)"
            )

    def append(self, op: XorOp) -> None:
        """Append a pre-built op (validates cell bounds)."""
        self._check_cell(op.dst_col, op.dst_row)
        self._check_cell(op.src_col, op.src_row)
        self._ops.append(op)
        self._touched.add(op.dst)

    def copy_cell(self, dst: tuple[int, int], src: tuple[int, int]) -> None:
        """Record ``dst <- src`` (free)."""
        self.append(XorOp(dst[0], dst[1], src[0], src[1], copy=True))

    def accumulate(self, dst: tuple[int, int], src: tuple[int, int]) -> None:
        """Record ``dst <- dst ^ src`` (costs 1 XOR)."""
        self.append(XorOp(dst[0], dst[1], src[0], src[1], copy=False))

    def xor_into(self, dst: tuple[int, int], src: tuple[int, int]) -> None:
        """Accumulate into ``dst``, or copy if ``dst`` is untouched.

        Implements the paper's "if b has not been accessed" pattern
        (Algorithm 1 lines 11-14 / 19-22, Algorithm 3 lines 12-15 /
        18-21): the first contribution to a parity/syndrome cell is a
        plain assignment and costs no XOR.
        """
        if dst in self._touched:
            self.accumulate(dst, src)
        else:
            self.copy_cell(dst, src)

    def touched(self, cell: tuple[int, int]) -> bool:
        """Whether any earlier op wrote to ``cell``."""
        return cell in self._touched

    def mark_touched(self, cell: tuple[int, int]) -> None:
        """Declare that ``cell`` already holds live data.

        Used by decoders for cells that are inputs *and* destinations
        (e.g. syndrome cells updated in place during retrieval).
        """
        self._check_cell(*cell)
        self._touched.add(cell)

    def extend(self, other: "Schedule") -> None:
        """Append all of ``other``'s ops (shapes must match)."""
        if (other.cols, other.rows) != (self.cols, self.rows):
            raise ValueError("cannot extend schedules of different stripe shapes")
        for op in other._ops:
            self.append(op)

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[XorOp]:
        return iter(self._ops)

    def __getitem__(self, i: int) -> XorOp:
        return self._ops[i]

    @property
    def ops(self) -> Sequence[XorOp]:
        return tuple(self._ops)

    @property
    def n_xors(self) -> int:
        """Total XOR cost (accumulate ops) -- the paper's metric."""
        return sum(op.xor_cost for op in self._ops)

    @property
    def n_copies(self) -> int:
        return len(self._ops) - self.n_xors

    def destinations(self) -> set[tuple[int, int]]:
        """All cells written by this schedule."""
        return {op.dst for op in self._ops}

    def to_array(self) -> np.ndarray:
        """Pack ops as an ``(n, 5)`` int32 array for the fast executors.

        Columns: ``dst_col, dst_row, src_col, src_row, copy_flag``.
        """
        if not self._ops:
            return np.zeros((0, 5), dtype=np.int32)
        return np.array(
            [
                (op.dst_col, op.dst_row, op.src_col, op.src_row, int(op.copy))
                for op in self._ops
            ],
            dtype=np.int32,
        )

    def __repr__(self) -> str:
        return (
            f"Schedule(cols={self.cols}, rows={self.rows}, "
            f"ops={len(self._ops)}, xors={self.n_xors})"
        )
