"""XOR schedule representation and execution engine.

Every encoder/decoder in this library -- the paper's optimal Algorithms
1-4 as well as the Jerasure-style bit-matrix baseline -- is expressed as
a *schedule*: an ordered list of copy/XOR operations on stripe cells
``(column, row)``.  One engine then executes a schedule either

* on bit arrays (one bit per cell; exact semantics, used for
  correctness tests and XOR counting), or
* on machine-word arrays (``uint64`` element buffers; used for
  throughput benchmarks, 64 interleaved codewords per word as in the
  paper §II-A), either op-at-a-time (streaming), per-destination
  (fused), or lowered to levelized bulk-XOR slice kernels
  (:mod:`repro.engine.kernels` -- the native-speed data plane).

Keeping algorithms as schedule generators gives exact, implementation-
independent XOR counts (a copy is free, each XOR'd source counts 1 --
the paper's accounting) while sharing a single optimised datapath, so
throughput comparisons between algorithms measure the algorithms and
not incidental implementation differences.
"""

from repro.engine.ops import XorOp, Schedule
from repro.engine.executor import (
    execute_bits,
    execute_words,
    CompiledSchedule,
    StreamingSchedule,
    compile_schedule,
)
from repro.engine.kernels import KernelOp, KernelPlan, compile_kernel
from repro.engine.verify import ScheduleViolation, verify_schedule

__all__ = [
    "XorOp",
    "Schedule",
    "execute_bits",
    "execute_words",
    "CompiledSchedule",
    "StreamingSchedule",
    "compile_schedule",
    "KernelOp",
    "KernelPlan",
    "compile_kernel",
    "ScheduleViolation",
    "verify_schedule",
]
