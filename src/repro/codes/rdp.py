"""RDP -- Row-Diagonal Parity (Corbett et al., FAST'04) baseline.

RDP codewords are ``(p-1) x (p+1)`` arrays (plus our Q column makes
``p+1`` logical positions): ``k <= p-1`` data columns (phantoms zero),
the row-parity column P, and the diagonal-parity column Q.  Diagonals
are defined over data *and P* at logical positions ``0..p-1`` (P sits at
position ``p-1``): diagonal ``d`` collects cells with
``row + position = d (mod p)``; diagonal ``p-1`` is never stored
("missing diagonal"), which is what makes the construction work.

Because P participates in the diagonals there is no EVENODD-style
adjuster: encoding costs ``(p-1)(k-1) + k(p-2)`` XORs, which meets the
``k-1``-per-bit bound exactly at ``k = p-1`` and degrades as ``k``
shrinks -- the scalability weakness the paper's Fig. 6/8 highlight.

Decoding two data columns uses the same two-chain zig-zag as EVENODD
(diagonal syndromes here include the surviving P cell).  A data column
plus P is recovered by substituting the P definition into the diagonal
equations, producing a single chain through the data column, after
which P is re-encoded.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import XorScheduleCode
from repro.engine.ops import Schedule
from repro.utils.modular import Mod
from repro.utils.primes import next_prime
from repro.utils.validation import check_prime_p, check_k, check_erasures

__all__ = ["RDPCode"]


class RDPCode(XorScheduleCode):
    """RDP RAID-6 code with schedule-based encode/decode."""

    name = "rdp"

    def __init__(
        self, k: int, *, p: int | None = None, element_size: int = 8, execution: str = "kernel"
    ) -> None:
        self.p = check_prime_p(p if p is not None else next_prime(k + 1))
        check_k(k, self.p - 1, code="rdp")
        super().__init__(k, element_size=element_size, execution=execution)
        self.mod = Mod(self.p)

    @property
    def rows(self) -> int:
        return self.p - 1

    def with_k(self, new_k: int):
        """Same ``p``, different ``k <= p-1``."""
        return type(self)(
            new_k, p=self.p, element_size=self.element_size, execution=self.execution
        )

    # -- structure helpers --------------------------------------------------

    def _diag_members(self, d: int, *, exclude: set[int] = frozenset()) -> list[tuple[int, int]]:
        """Real cells ``(col, row)`` of diagonal ``d`` over data + P.

        ``exclude`` lists *data* columns to omit; pass ``self.p_col`` in
        it to omit the P member.  P sits at logical position ``p-1``.
        """
        p, k = self.p, self.k
        out = []
        for j in range(k):
            if j in exclude:
                continue
            i = self.mod(d - j)
            if i != p - 1:
                out.append((j, i))
        if self.p_col not in exclude:
            i = self.mod(d + 1)  # d - (p-1) mod p
            if i != p - 1:
                out.append((self.p_col, i))
        return out

    # -- encoding --------------------------------------------------------------

    def build_encode_schedule(self) -> Schedule:
        p, k = self.p, self.k
        sched = Schedule(self.total_cols, self.rows)
        for i in range(p - 1):
            for j in range(k):
                sched.xor_into((self.p_col, i), (j, i))
        for d in range(p - 1):
            for cell in self._diag_members(d):
                sched.xor_into((self.q_col, d), cell)
        return sched

    # -- decoding ----------------------------------------------------------------

    def build_decode_schedule(self, erasures) -> Schedule:
        ers = check_erasures(erasures, self.n_cols)
        data = [c for c in ers if c < self.k]
        parity = tuple(c - self.k for c in ers if c >= self.k)
        sched = Schedule(self.total_cols, self.rows)
        if not ers:
            return sched
        if not data:
            return self._reencode_parity(sched, parity)
        if len(data) == 2:
            return self._decode_two_data(sched, data[0], data[1])
        if not parity:
            return self._decode_one_data_by_rows(sched, data[0])
        if parity == (1,):
            self._decode_one_data_by_rows(sched, data[0])
            return self._reencode_parity(sched, (1,))
        self._decode_data_and_p(sched, data[0])
        return sched

    def _reencode_parity(self, sched: Schedule, parity: tuple[int, ...]) -> Schedule:
        p, k = self.p, self.k
        if 0 in parity:
            for i in range(p - 1):
                for j in range(k):
                    sched.xor_into((self.p_col, i), (j, i))
        if 1 in parity:
            for d in range(p - 1):
                for cell in self._diag_members(d):
                    sched.xor_into((self.q_col, d), cell)
        return sched

    def _decode_one_data_by_rows(self, sched: Schedule, col: int) -> Schedule:
        for i in range(self.p - 1):
            for j in range(self.k):
                if j != col:
                    sched.xor_into((col, i), (j, i))
            sched.xor_into((col, i), (self.p_col, i))
        return sched

    def _decode_two_data(self, sched: Schedule, l: int, r: int) -> Schedule:
        """Two-chain zig-zag, as in EVENODD but adjuster-free."""
        p, mod = self.p, self.mod
        erased = {l, r}
        delta = mod(r - l)

        steps: list[tuple[str, int, tuple[int, int], tuple[int, int] | None]] = []
        x = mod(r - 1 - l)
        steps.append(("diag", mod(r - 1), (l, x), None))
        while True:
            steps.append(("row", x, (r, x), (l, x)))
            if mod(x + r) == p - 1:
                break
            nxt = mod(x + delta)
            steps.append(("diag", mod(x + r), (l, nxt), (r, x)))
            x = nxt
        if l != 0:
            y = mod(l - 1 - r)
            steps.append(("diag", mod(l - 1), (r, y), None))
            while True:
                steps.append(("row", y, (l, y), (r, y)))
                if mod(y + l) == p - 1:
                    break
                nxt = mod(y - delta)
                steps.append(("diag", mod(y + l), (r, nxt), (l, y)))
                y = nxt

        for kind, idx, home, _feeder in steps:
            if kind == "row":
                sched.copy_cell(home, (self.p_col, idx))
                for j in range(self.k):
                    if j not in erased:
                        sched.accumulate(home, (j, idx))
            else:
                sched.copy_cell(home, (self.q_col, idx))
                for cell in self._diag_members(idx, exclude=erased):
                    sched.accumulate(home, cell)
        for _kind, _idx, home, feeder in steps:
            if feeder is not None:
                sched.accumulate(home, feeder)
        return sched

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write.

        Touches ``P_row``, the element's own diagonal Q element (unless
        it lies on the missing diagonal) and -- because the changed P
        element itself sits on a diagonal -- the Q element of diagonal
        ``row - 1`` (unless *that* P cell is on the missing diagonal,
        i.e. ``row = 0``).  This third write is what pushes RDP's
        average update complexity to ~3 (Table I).
        """
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        p, mod = self.p, self.mod
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        touched = [(self.p_col, row)]
        d_own = mod(row + col)
        if d_own != p - 1:
            touched.append((self.q_col, d_own))
        d_p = mod(row - 1)  # diagonal through the P cell of this row
        if d_p != p - 1:
            touched.append((self.q_col, d_p))
        for c, r in touched:
            np.bitwise_xor(buf[c, r], delta, out=buf[c, r])
        return len(touched)

    def _decode_data_and_p(self, sched: Schedule, col: int) -> Schedule:
        """Recover data column ``col`` and P from Q.

        Substituting ``P_i = xor_j d(i, j)`` into diagonal ``d`` turns
        each diagonal equation into a relation between *two* cells of
        column ``col``: its native member at row ``<d-col>`` and its
        contribution to the P member at row ``<d+1>``.  The relation
        graph is a single path entered at the diagonal whose native
        member is imaginary (``d = <col-1>``) and terminated at the
        diagonal with no P member (``d = p-2``), so peeling recovers
        every element with one constraint each.  P is re-encoded last.
        """
        p, k, mod = self.p, self.k, self.mod

        def members_of(d: int) -> set[int]:
            """Rows of column ``col`` in the substituted equation of diag d."""
            return {i for i in (mod(d - col), mod(d + 1)) if i != p - 1}

        # Peel: repeatedly pick an unused diagonal whose substituted
        # equation has exactly one unresolved column-`col` row.
        resolved: set[int] = set()
        unused = set(range(p - 1))
        order: list[int] = []
        while len(resolved) < p - 1:
            d = next(
                (c for c in sorted(unused) if len(members_of(c) - resolved) == 1),
                None,
            )
            if d is None:
                raise AssertionError("RDP data+P peeling stalled")
            unused.remove(d)
            order.append(d)
            resolved |= members_of(d)

        # Emit: for each step, target <- Q_d ^ (other columns' diagonal
        # members) ^ (row <d+1> data cells, i.e. the substituted P) ^
        # (already recovered col cells involved).
        done_rows: set[int] = set()
        for d in order:
            i_native = mod(d - col)
            i_p = mod(d + 1)
            members = [i for i in {i_native, i_p} if i != p - 1]
            unknown = [i for i in members if i not in done_rows]
            assert len(unknown) == 1, (d, members, done_rows)
            x = unknown[0]
            target = (col, x)
            sched.copy_cell(target, (self.q_col, d))
            # Other columns' native diagonal members.
            for (j, i) in self._diag_members(d, exclude={col, self.p_col}):
                sched.accumulate(target, (j, i))
            # Substituted P member: row <d+1> over all data columns.
            if i_p != p - 1:
                for j in range(k):
                    if j != col:
                        sched.accumulate(target, (j, i_p))
            # Already-recovered cells of this column in the equation.
            for i in members:
                if i != x:
                    sched.accumulate(target, (col, i))
            done_rows.add(x)
        return self._reencode_parity(sched, (0,))
