"""Common interface for RAID-6 code implementations.

Every code family (Liberation optimal/original, EVENODD, RDP,
Reed-Solomon) implements :class:`RAID6Code`.  A code is configured with
``k`` data disks (plus P and Q) and an element size; stripes are NumPy
word arrays ``buf[k+2, rows, words]`` as produced by
:meth:`RAID6Code.alloc_stripe`.

XOR-based codes additionally implement the *schedule* API
(:class:`XorScheduleCode`): their encode/decode programs are
:class:`~repro.engine.ops.Schedule` objects, which gives exact XOR
counts for the complexity experiments and a shared compiled execution
path for the throughput experiments.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.engine import (
    Schedule,
    CompiledSchedule,
    StreamingSchedule,
    compile_schedule,
    execute_bits,
)
from repro.obs.profile import kernel_attrs, schedule_span
from repro.obs.tracing import active_tracer
from repro.utils.validation import check_element_size, check_erasures
from repro.utils.words import alloc_stripe, element_words

__all__ = ["RAID6Code", "XorScheduleCode"]


class RAID6Code(abc.ABC):
    """A systematic P+Q RAID-6 erasure code over ``k`` data columns."""

    #: short identifier, e.g. ``"liberation-optimal"``
    name: str = "abstract"

    #: extra workspace columns appended to the stripe buffer (EVENODD's
    #: decoder stages its S adjuster in one; disks never store them).
    n_scratch: int = 0

    def __init__(self, k: int, *, element_size: int = 8) -> None:
        self.k = int(k)
        self.element_size = check_element_size(element_size)

    # -- geometry ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def rows(self) -> int:
        """Number of elements per strip (the code's column height ``w``)."""

    @property
    def n_cols(self) -> int:
        """Logical columns: ``k`` data + P + Q (what disks store)."""
        return self.k + 2

    @property
    def total_cols(self) -> int:
        """Stripe-buffer columns: logical plus scratch workspace."""
        return self.n_cols + self.n_scratch

    @property
    def p_col(self) -> int:
        return self.k

    @property
    def q_col(self) -> int:
        return self.k + 1

    @property
    def strip_bytes(self) -> int:
        """Bytes per strip (one disk's share of a stripe)."""
        return self.rows * self.element_size

    @property
    def data_bytes(self) -> int:
        """User payload bytes per stripe."""
        return self.k * self.strip_bytes

    def alloc_stripe(self) -> np.ndarray:
        """A zeroed stripe buffer ``[total_cols, rows, words]``."""
        return alloc_stripe(self.total_cols, self.rows, self.element_size)

    def check_stripe(self, buf: np.ndarray) -> np.ndarray:
        expected = (self.total_cols, self.rows, element_words(self.element_size))
        if buf.shape != expected:
            raise ValueError(f"stripe shape {buf.shape}, expected {expected}")
        return buf

    # -- coding ------------------------------------------------------------

    @abc.abstractmethod
    def encode(self, buf: np.ndarray) -> np.ndarray:
        """Fill the parity columns from the data columns, in place."""

    @abc.abstractmethod
    def decode(self, buf: np.ndarray, erasures) -> np.ndarray:
        """Rebuild up to two erased columns, in place."""

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Small-write: replace one data element and patch parity.

        Generic read-modify-write: XOR-based codes override nothing --
        the parity delta of a data element change is code-specific, so
        the default recomputes the affected parity elements by full
        re-encode of a scratch stripe.  Subclasses provide the efficient
        delta path.  Returns the number of parity *elements* rewritten
        (the update-complexity metric).
        """
        self.check_stripe(buf)
        buf[col, row] = new_element
        parity = buf[self.k :].copy()
        self.encode(buf)
        changed = int(
            sum(
                np.any(parity[c - self.k, r] != buf[c, r])
                for c in (self.p_col, self.q_col)
                for r in range(self.rows)
            )
        )
        return changed

    # -- reconfiguration ------------------------------------------------------

    def with_k(self, new_k: int) -> "RAID6Code":
        """A code of the same family/geometry with a different ``k``.

        Used by online array growth: the new instance must keep the
        same strip geometry (``rows`` and ``element_size``) so existing
        strips remain valid.  Subclasses override to preserve their
        structural parameters (``p``); the default raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support reconfiguration"
        )

    # -- verification -------------------------------------------------------

    def verify(self, buf: np.ndarray) -> bool:
        """Whether the stripe's parity columns are consistent."""
        self.check_stripe(buf)
        work = buf.copy()
        self.encode(work)
        return bool(np.array_equal(work[: self.n_cols], buf[: self.n_cols]))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(k={self.k}, rows={self.rows}, "
            f"element_size={self.element_size})"
        )


class XorScheduleCode(RAID6Code):
    """A RAID-6 code whose programs are XOR schedules.

    Subclasses implement :meth:`build_encode_schedule` and
    :meth:`build_decode_schedule`; this base class provides word-level
    execution with compiled-schedule caching, bit-level execution, and
    XOR accounting.

    ``cache_decode_plans`` controls whether decode programs are memoised
    per erasure pattern.  The paper's *original* (Jerasure) baseline
    regenerates its decoding matrix and schedule on every call -- that
    per-call matrix work is part of what the paper measures -- so the
    baseline subclass disables the cache by default while the optimal
    implementation enables it.
    """

    cache_decode_plans: bool = True

    def __init__(self, k: int, *, element_size: int = 8, execution: str = "kernel") -> None:
        super().__init__(k, element_size=element_size)
        if execution not in ("kernel", "fused", "streaming"):
            raise ValueError(
                f"execution must be 'kernel', 'fused' or 'streaming', got {execution!r}"
            )
        #: "kernel" lowers the schedule to levelized bulk-XOR slice
        #: kernels (fastest; see :mod:`repro.engine.kernels`); "fused"
        #: runs each destination's accumulation as one XOR-reduce;
        #: "streaming" runs one region op per scheduled op, mirroring
        #: Jerasure's execution model -- use it when measured throughput
        #: should be proportional to schedule op counts, as in the
        #: paper's Figs. 9-13.
        self.execution = execution
        self._encode_plan = None
        self._encode_sched: Schedule | None = None
        self._decode_plans: dict[tuple[int, ...], object] = {}
        #: (n_xors, n_ops) per cached decode plan, so a traced cache hit
        #: can report schedule cost without rebuilding the schedule.
        self._decode_stats: dict[tuple[int, ...], tuple[int, int]] = {}

    def _compile(self, sched: Schedule):
        if self.execution == "streaming":
            return StreamingSchedule(sched)
        return compile_schedule(sched, kernel=self.execution == "kernel")

    # -- schedule builders (subclass API) ----------------------------------

    @abc.abstractmethod
    def build_encode_schedule(self) -> Schedule:
        """Construct the encoding schedule (uncached)."""

    @abc.abstractmethod
    def build_decode_schedule(self, erasures: tuple[int, ...]) -> Schedule:
        """Construct the decoding schedule for an erasure pattern."""

    # -- cached accessors ----------------------------------------------------

    def encode_schedule(self) -> Schedule:
        if self._encode_sched is None:
            self._encode_sched = self.build_encode_schedule()
        return self._encode_sched

    def decode_schedule(self, erasures) -> Schedule:
        ers = check_erasures(erasures, self.n_cols)
        return self.build_decode_schedule(ers)

    # -- word-level coding ----------------------------------------------------

    def encode(self, buf: np.ndarray) -> np.ndarray:
        self.check_stripe(buf)
        tracer = active_tracer()
        if tracer is None:  # hot path: one global read, zero allocations
            if self._encode_plan is None:
                self._encode_plan = self._compile(self.encode_schedule())
            return self._encode_plan.run(buf)
        sched = self.encode_schedule()
        cache = "hit" if self._encode_plan is not None else "miss"
        with schedule_span(
            tracer, "code.encode", code=self.name, xors=sched.n_xors,
            ops=len(sched), nbytes=int(buf.nbytes), cache=cache,
        ) as span:
            if self._encode_plan is None:
                self._encode_plan = self._compile(sched)
            kernel_attrs(span, self._encode_plan)
            return self._encode_plan.run(buf)

    def decode(self, buf: np.ndarray, erasures) -> np.ndarray:
        self.check_stripe(buf)
        ers = check_erasures(erasures, self.n_cols)
        if not ers:
            return buf
        tracer = active_tracer()
        if tracer is None:  # hot path: one global read, zero allocations
            plan = self._decode_plans.get(ers)
            if plan is None:
                sched = self.build_decode_schedule(ers)
                plan = self._compile(sched)
                if self.cache_decode_plans:
                    self._decode_plans[ers] = plan
                    self._decode_stats[ers] = (sched.n_xors, len(sched))
            return plan.run(buf)
        plan = self._decode_plans.get(ers)
        if plan is None:
            sched = self.build_decode_schedule(ers)
            stats = (sched.n_xors, len(sched))
            cache = "miss"
        else:
            sched = None
            hit = self._decode_stats.get(ers)
            if hit is None:  # plan cached before stats existed: rebuild cheaply
                rebuilt = self.build_decode_schedule(ers)
                hit = (rebuilt.n_xors, len(rebuilt))
                self._decode_stats[ers] = hit
            stats = hit
            cache = "hit"
        with schedule_span(
            tracer, "code.decode", code=self.name, xors=stats[0],
            ops=stats[1], nbytes=int(buf.nbytes), cache=cache,
            erasures=",".join(map(str, ers)),
        ) as span:
            if plan is None:
                plan = self._compile(sched)
                if self.cache_decode_plans:
                    self._decode_plans[ers] = plan
                    self._decode_stats[ers] = stats
            kernel_attrs(span, plan)
            return plan.run(buf)

    # -- bit-level coding (tests, exact semantics) ------------------------------

    def encode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Encode a single ``(n_cols, rows)`` 0/1 codeword in place."""
        return execute_bits(self.encode_schedule(), bits)

    def decode_bits(self, bits: np.ndarray, erasures) -> np.ndarray:
        ers = check_erasures(erasures, self.n_cols)
        return execute_bits(self.build_decode_schedule(ers), bits)

    # -- accounting --------------------------------------------------------------

    def encoding_xors(self) -> int:
        """Total XORs of the encoding program."""
        return self.encode_schedule().n_xors

    def decoding_xors(self, erasures) -> int:
        """Total XORs of the decoding program for a pattern."""
        ers = check_erasures(erasures, self.n_cols)
        return self.build_decode_schedule(ers).n_xors

    def encoding_complexity(self) -> float:
        """Average XORs per parity *bit* (the paper's encode metric)."""
        return self.encoding_xors() / (2 * self.rows)

    def decoding_complexity(self, erasures) -> float:
        """Average XORs per missing bit for a pattern."""
        ers = check_erasures(erasures, self.n_cols)
        if not ers:
            return 0.0
        return self.decoding_xors(ers) / (len(ers) * self.rows)
