"""RAID-6 code implementations.

The zoo the paper's evaluation draws on:

* :class:`~repro.codes.liberation.LiberationOptimal` -- the paper's
  contribution (Algorithms 1-4).
* :class:`~repro.codes.liberation.LiberationOriginal` -- the Jerasure
  bit-matrix baseline.
* :class:`~repro.codes.evenodd.EvenOddCode`,
  :class:`~repro.codes.rdp.RDPCode` -- complexity comparators
  (Figs. 5-8).
* :class:`~repro.codes.reed_solomon.ReedSolomonCode` -- the GF(2^8)
  reference scheme (Linux RAID-6), outside the XOR-count framework.
"""

from repro.codes.base import RAID6Code, XorScheduleCode
from repro.codes.blaum_roth import BlaumRothCode
from repro.codes.cauchy import CauchyRSCode
from repro.codes.evenodd import EvenOddCode
from repro.codes.liberation import LiberationCode, LiberationOptimal, LiberationOriginal
from repro.codes.rdp import RDPCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.registry import CODE_FAMILIES, available_codes, make_code
from repro.codes import theory

__all__ = [
    "RAID6Code",
    "XorScheduleCode",
    "LiberationCode",
    "LiberationOptimal",
    "LiberationOriginal",
    "EvenOddCode",
    "RDPCode",
    "ReedSolomonCode",
    "CauchyRSCode",
    "BlaumRothCode",
    "CODE_FAMILIES",
    "available_codes",
    "make_code",
    "theory",
]
