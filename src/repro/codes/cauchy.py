"""Cauchy Reed-Solomon as a RAID-6 XOR code.

The third coding technique Jerasure ships (besides Vandermonde RS and
Liberation): an MDS generator for any ``k`` with ``k + 2 <= 2^w``,
lowered to XOR schedules through the bit-matrix substrate.  With the
"good" matrix its P row is plain RAID-5 parity, so it is P+Q compliant;
its Q row costs substantially more XORs than the diagonal-structured
codes, which is precisely why the paper's lineage of array codes
(EVENODD/RDP/Liberation) exists.  Included to complete the substrate
and as a reference point in the comparison examples.
"""

from __future__ import annotations

import numpy as np

from repro.bitmatrix.cauchy import (
    cauchy_bitmatrix,
    cauchy_good_matrix,
    cauchy_original_matrix,
    min_w_for,
)
from repro.bitmatrix.decode import bitmatrix_decode_schedule
from repro.bitmatrix.schedule import dumb_schedule, smart_schedule
from repro.codes.base import XorScheduleCode
from repro.gf.gf2w import GF2w

__all__ = ["CauchyRSCode"]


class CauchyRSCode(XorScheduleCode):
    """Cauchy Reed-Solomon RAID-6 over GF(2^w) bit-matrices."""

    name = "cauchy-rs"

    def __init__(
        self,
        k: int,
        *,
        w: int | None = None,
        good: bool = True,
        element_size: int = 8,
        execution: str = "kernel",
    ) -> None:
        self.w = int(w) if w is not None else min_w_for(k)
        if k + 2 > (1 << self.w):
            raise ValueError(f"cauchy-rs: k + 2 = {k + 2} needs w > {self.w}")
        super().__init__(k, element_size=element_size, execution=execution)
        self.good = bool(good)
        self.gf = GF2w(self.w)
        build = cauchy_good_matrix if good else cauchy_original_matrix
        self.field_matrix = build(self.gf, self.k, 2)
        self.generator = cauchy_bitmatrix(self.gf, self.field_matrix)

    @property
    def rows(self) -> int:
        return self.w

    def with_k(self, new_k: int):
        """Same ``w`` (strip geometry), different ``k``."""
        return type(self)(
            new_k,
            w=self.w,
            good=self.good,
            element_size=self.element_size,
            execution=self.execution,
        )

    def build_encode_schedule(self):
        # Smart scheduling genuinely helps dense Cauchy rows.
        return smart_schedule(self.generator, self.w, self.k, total_cols=self.total_cols)

    def build_decode_schedule(self, erasures):
        return bitmatrix_decode_schedule(
            self.generator, self.w, self.k, erasures, total_cols=self.total_cols
        )

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write via the generator's column bits.

        A data bit feeds every parity bit whose generator entry is 1:
        with the good matrix that is 1 P element plus however many Q
        rows the column's bit-matrix lights up -- the dense-update cost
        that rules Cauchy RS out for small-write workloads.
        """
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        column = self.generator[:, col * self.w + row]
        touched = 0
        for parity_bit in np.nonzero(column)[0]:
            c = self.p_col + int(parity_bit) // self.w
            r = int(parity_bit) % self.w
            np.bitwise_xor(buf[c, r], delta, out=buf[c, r])
            touched += 1
        return touched
