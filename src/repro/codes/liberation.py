"""Liberation code implementations: the paper's optimal algorithms and
the original Jerasure-style bit-matrix baseline.

Both classes realise the *same* code (identical codewords -- tests
assert this), differing only in how encode/decode programs are derived:

* :class:`LiberationOptimal` -- Algorithms 1-4 of the paper.  Encoding
  costs exactly ``2p(k-1)`` XORs; two-column decoding is within a few
  percent of the ``k-1``-per-bit bound; decode plans are cheap index
  walks and are memoised per erasure pattern.

* :class:`LiberationOriginal` -- the bit-matrix path: dumb-scheduled
  encoding (``(k-1)(2p+1)`` XORs) and smart-scheduled decoding derived
  from a per-call GF(2) matrix inversion, mirroring Jerasure's
  ``jerasure_schedule_decode_lazy`` (no plan cache -- the inversion and
  scheduling cost on every decode call is part of what the paper
  measures).
"""

from __future__ import annotations

import numpy as np

from repro.bitmatrix import (
    liberation_bitmatrix,
    dumb_schedule,
    smart_schedule,
    bitmatrix_decode_schedule,
)
from repro.codes.base import XorScheduleCode
from repro.core.decoder import decode_schedule as optimal_decode_schedule
from repro.core.encoder import encode_schedule as optimal_encode_schedule
from repro.core.geometry import LiberationGeometry
from repro.utils.primes import prime_for_k
from repro.utils.validation import check_prime_p, check_k

__all__ = ["LiberationCode", "LiberationOptimal", "LiberationOriginal"]


class LiberationCode(XorScheduleCode):
    """Shared parameterisation for both Liberation variants."""

    def __init__(
        self, k: int, *, p: int | None = None, element_size: int = 8, execution: str = "kernel"
    ) -> None:
        self.p = check_prime_p(p if p is not None else prime_for_k(k))
        check_k(k, self.p, code="liberation")
        super().__init__(k, element_size=element_size, execution=execution)
        self.geometry = LiberationGeometry(self.p, self.k)

    @property
    def rows(self) -> int:
        return self.p

    def with_k(self, new_k: int):
        """Same ``p`` (so strips keep their height), different ``k``.

        Liberation's scalability property: for fixed ``p`` any
        ``2 <= k <= p`` works on the same ``p``-row strips, and adding
        an (all-zero) data column leaves both parity columns unchanged.
        """
        return type(self)(
            new_k, p=self.p, element_size=self.element_size, execution=self.execution
        )

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write: Liberation's optimal-update property.

        A data element change touches its row-parity element, its native
        anti-diagonal parity element and -- only if the element serves
        as an extra bit -- one more Q element, i.e. 2 parity writes for
        all but one element per column (``~2`` average, the Table I
        lower bound).
        """
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        geo = self.geometry
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        touched = [(self.p_col, row), (self.q_col, geo.anti_diag_of(row, col))]
        if geo.extra_bit_of_column(col) == (row, col):
            touched.append((self.q_col, geo.extra_diag_of_column(col)))
        for c, r in touched:
            np.bitwise_xor(buf[c, r], delta, out=buf[c, r])
        return len(touched)


class LiberationOptimal(LiberationCode):
    """Liberation code with the paper's optimal Algorithms 1-4."""

    name = "liberation-optimal"
    cache_decode_plans = True

    def build_encode_schedule(self):
        return optimal_encode_schedule(self.p, self.k)

    def build_decode_schedule(self, erasures):
        return optimal_decode_schedule(self.p, self.k, erasures)


class LiberationOriginal(LiberationCode):
    """Liberation code via the original bit-matrix machinery.

    ``smart`` selects Plank's bit-matrix scheduling for decode (the
    Jerasure default and the paper's baseline); encoding always uses the
    dumb lowering, which is what the original implementation does (bit
    rows are near-disjoint, so scheduling cannot improve them).
    """

    name = "liberation-original"
    cache_decode_plans = False

    def __init__(
        self,
        k: int,
        *,
        p: int | None = None,
        element_size: int = 8,
        smart: bool = True,
        execution: str = "kernel",
    ) -> None:
        super().__init__(k, p=p, element_size=element_size, execution=execution)
        self.smart = bool(smart)
        self._generator: np.ndarray | None = None

    @property
    def generator(self) -> np.ndarray:
        """The ``2p x kp`` generator bit-matrix (built once)."""
        if self._generator is None:
            self._generator = liberation_bitmatrix(self.p, self.k)
        return self._generator

    def build_encode_schedule(self):
        # Smart scheduling degenerates to dumb for Liberation encoding;
        # use the dumb lowering explicitly, as Jerasure's encoder does.
        return dumb_schedule(self.generator, self.p, self.k, total_cols=self.total_cols)

    def build_decode_schedule(self, erasures):
        return bitmatrix_decode_schedule(
            self.generator,
            self.p,
            self.k,
            erasures,
            smart=self.smart,
            total_cols=self.total_cols,
        )
