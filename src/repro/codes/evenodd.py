"""EVENODD code (Blaum, Brady, Bruck & Menon 1995) -- complexity baseline.

EVENODD codewords are ``(p-1) x (p+2)`` arrays over an odd prime ``p``
(``k <= p`` data columns, the rest phantom zeros), with an *imaginary*
all-zero row ``p-1``:

* ``P_i`` -- plain row parity.
* ``Q_d`` (``d = 0..p-2``) -- the parity of diagonal
  ``{(r, c) : r + c = d (mod p)}`` XOR the *adjuster* ``S``, where ``S``
  is the parity of the missing diagonal ``p-1``.

The encoder stages ``S`` in the ``Q_0`` cell and fans it out to the
other Q cells with free copies, giving the classic
``k - 1/2`` XORs per parity bit.  The decoder for two data columns
stores diagonal syndromes in the *left* erased column and row syndromes
in the *right* one, then zig-zags in place along the
``delta = r - l`` chain starting from the diagonal through the right
column's imaginary cell; the adjuster is staged in the scratch column.

This implementation exists for the paper's complexity comparisons
(Figs. 5-8): the paper does not benchmark EVENODD throughput (no
official implementation exists -- it is patented), and neither do we.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import XorScheduleCode
from repro.engine.ops import Schedule
from repro.utils.modular import Mod
from repro.utils.primes import prime_for_k
from repro.utils.validation import check_prime_p, check_k, check_erasures

__all__ = ["EvenOddCode"]


class EvenOddCode(XorScheduleCode):
    """EVENODD RAID-6 code with schedule-based encode/decode."""

    name = "evenodd"
    n_scratch = 1  # decode stages the adjuster S here

    def __init__(
        self, k: int, *, p: int | None = None, element_size: int = 8, execution: str = "kernel"
    ) -> None:
        self.p = check_prime_p(p if p is not None else prime_for_k(k))
        check_k(k, self.p, code="evenodd")
        super().__init__(k, element_size=element_size, execution=execution)
        self.mod = Mod(self.p)

    @property
    def rows(self) -> int:
        return self.p - 1

    def with_k(self, new_k: int):
        """Same ``p``, different ``k`` (phantom-column semantics)."""
        return type(self)(
            new_k, p=self.p, element_size=self.element_size, execution=self.execution
        )

    # -- structure helpers ----------------------------------------------

    def _diag_cells(self, d: int, *, exclude: set[int] = frozenset()) -> list[tuple[int, int]]:
        """Real data cells ``(col, row)`` of diagonal ``d`` (row+col = d)."""
        out = []
        for j in range(self.k):
            if j in exclude:
                continue
            i = self.mod(d - j)
            if i != self.p - 1:  # imaginary row
                out.append((j, i))
        return out

    def _s_cells(self) -> list[tuple[int, int]]:
        """Cells of the adjuster diagonal ``p-1``."""
        return self._diag_cells(self.p - 1)

    # -- encoding -----------------------------------------------------------

    def build_encode_schedule(self) -> Schedule:
        p, k, mod = self.p, self.k, self.mod
        sched = Schedule(self.total_cols, self.rows)
        # Row parities.
        for i in range(p - 1):
            for j in range(k):
                sched.xor_into((self.p_col, i), (j, i))
        # Adjuster S staged in the Q_0 cell, fanned out by free copies.
        s_cells = self._s_cells()
        if s_cells:
            for cell in s_cells:
                sched.xor_into((self.q_col, 0), cell)
            for d in range(1, p - 1):
                sched.copy_cell((self.q_col, d), (self.q_col, 0))
        # Diagonal parities on top.
        for d in range(p - 1):
            for cell in self._diag_cells(d):
                sched.xor_into((self.q_col, d), cell)
        return sched

    # -- decoding ------------------------------------------------------------

    def build_decode_schedule(self, erasures) -> Schedule:
        ers = check_erasures(erasures, self.n_cols)
        data = [c for c in ers if c < self.k]
        parity = tuple(c - self.k for c in ers if c >= self.k)
        sched = Schedule(self.total_cols, self.rows)
        if not ers:
            return sched
        if not data:
            return self._reencode_parity(sched, parity)
        if len(data) == 2:
            return self._decode_two_data(sched, data[0], data[1])
        if not parity:
            return self._decode_one_data_by_rows(sched, data[0])
        if parity == (1,):
            self._decode_one_data_by_rows(sched, data[0])
            return self._reencode_parity(sched, (1,))
        # data + P: recover the column through the diagonals, then P.
        self._decode_one_data_by_diagonals(sched, data[0])
        return self._reencode_parity(sched, (0,))

    def _reencode_parity(self, sched: Schedule, parity: tuple[int, ...]) -> Schedule:
        p, k = self.p, self.k
        if 0 in parity:
            for i in range(p - 1):
                for j in range(k):
                    sched.xor_into((self.p_col, i), (j, i))
        if 1 in parity:
            s_cells = self._s_cells()
            base = self.q_col
            if s_cells:
                for cell in s_cells:
                    sched.xor_into((base, 0), cell)
                for d in range(1, p - 1):
                    sched.copy_cell((base, d), (base, 0))
            for d in range(p - 1):
                for cell in self._diag_cells(d):
                    sched.xor_into((base, d), cell)
        return sched

    def _decode_one_data_by_rows(self, sched: Schedule, col: int) -> Schedule:
        for i in range(self.p - 1):
            for j in range(self.k):
                if j != col:
                    sched.xor_into((col, i), (j, i))
            sched.xor_into((col, i), (self.p_col, i))
        return sched

    def _decode_one_data_by_diagonals(self, sched: Schedule, col: int) -> Schedule:
        """Recover one data column from Q alone (used when P is dead).

        The adjuster ``S`` is obtained without P: for ``col = 0`` every
        adjuster-diagonal cell survives, so ``S`` is their direct XOR;
        for ``col >= 1`` the diagonal ``col - 1`` runs through the
        column's imaginary cell, so all of its real members survive and
        ``S = Q_{col-1} ^ (its cells)``.  Each remaining live diagonal
        then yields one missing element; the column's cell on the dead
        diagonal (``col >= 1`` only) is recovered last, from ``S``
        itself and the surviving adjuster-diagonal cells.
        """
        p, mod = self.p, self.mod
        scratch = self.n_cols  # first scratch column
        skip_d: int | None = None
        if col == 0:
            for cell in self._s_cells():
                sched.xor_into((scratch, 0), cell)
            if not sched.touched((scratch, 0)):  # k = 1 edge: S is empty
                raise AssertionError("unreachable: k >= 2 guarantees S cells")
        else:
            skip_d = col - 1  # in [0, p-2]: a live diagonal
            sched.copy_cell((scratch, 0), (self.q_col, skip_d))
            for cell in self._diag_cells(skip_d, exclude={col}):
                sched.accumulate((scratch, 0), cell)
        for d in range(p - 1):
            if d == skip_d:
                continue
            target = (col, mod(d - col))
            sched.copy_cell(target, (self.q_col, d))
            sched.accumulate(target, (scratch, 0))
            for cell in self._diag_cells(d, exclude={col}):
                sched.accumulate(target, cell)
        if col >= 1:
            # The cell on the dead diagonal: S ^ its surviving members.
            target = (col, mod(p - 1 - col))
            sched.copy_cell(target, (scratch, 0))
            for cell in self._diag_cells(p - 1, exclude={col}):
                sched.accumulate(target, cell)
        return sched

    def _row_syndrome(self, sched: Schedule, home: tuple[int, int], i: int, erased: set[int]) -> None:
        """``home <- P_i ^ surviving data cells of row i``."""
        sched.copy_cell(home, (self.p_col, i))
        for j in range(self.k):
            if j not in erased:
                sched.accumulate(home, (j, i))

    def _diag_syndrome(
        self, sched: Schedule, home: tuple[int, int], d: int, erased: set[int], scratch: int
    ) -> None:
        """``home <- Q_d ^ S ^ surviving data cells of diagonal d``."""
        sched.copy_cell(home, (self.q_col, d))
        sched.accumulate(home, (scratch, 0))
        for cell in self._diag_cells(d, exclude=erased):
            sched.accumulate(home, cell)

    def _decode_two_data(self, sched: Schedule, l: int, r: int) -> Schedule:
        """Two-chain zig-zag recovery (Blaum et al. §IV).

        The unknown cells and the row/diagonal constraints form (up to)
        two alternating chains, each entered through a diagonal whose
        partner cell lies on the imaginary row and each terminating at
        a cell of the dead diagonal ``p-1``.  Every constraint's
        syndrome is staged directly in the cell it recovers, so the
        retrieval itself is one XOR per recovered element.
        """
        p, mod = self.p, self.mod
        scratch = self.n_cols
        erased = {l, r}
        delta = mod(r - l)

        # Adjuster: S = xor(P) ^ xor(Q), staged once.
        for i in range(p - 1):
            sched.xor_into((scratch, 0), (self.p_col, i))
        for d in range(p - 1):
            sched.accumulate((scratch, 0), (self.q_col, d))

        # Chain walks: list of (kind, index, recovered_cell, feeder_cell).
        steps: list[tuple[str, int, tuple[int, int], tuple[int, int] | None]] = []

        # Chain A: enter through the diagonal whose column-r member is
        # imaginary; diagonals recover l-cells, rows recover r-cells.
        x = mod(r - 1 - l)
        steps.append(("diag", mod(r - 1), (l, x), None))
        while True:
            steps.append(("row", x, (r, x), (l, x)))
            if mod(x + r) == p - 1:
                break  # (x, r) lies on the dead diagonal: chain ends
            nxt = mod(x + delta)
            steps.append(("diag", mod(x + r), (l, nxt), (r, x)))
            x = nxt

        # Chain B (absent for l = 0): enter through the diagonal whose
        # column-l member is imaginary; roles are flipped.
        if l != 0:
            y = mod(l - 1 - r)
            steps.append(("diag", mod(l - 1), (r, y), None))
            while True:
                steps.append(("row", y, (l, y), (r, y)))
                if mod(y + l) == p - 1:
                    break  # (y, l) on the dead diagonal: chain ends
                nxt = mod(y - delta)
                steps.append(("diag", mod(y + l), (r, nxt), (l, y)))
                y = nxt

        # Stage every syndrome at the cell its constraint recovers.
        for kind, idx, home, _feeder in steps:
            if kind == "row":
                self._row_syndrome(sched, home, idx, erased)
            else:
                self._diag_syndrome(sched, home, idx, erased, scratch)
        # Retrieval: fold the previously recovered neighbour into each
        # staged syndrome, in chain order.
        for _kind, _idx, home, feeder in steps:
            if feeder is not None:
                sched.accumulate(home, feeder)
        return sched

    # -- small writes -------------------------------------------------------

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write.

        Touches ``P_row``, the cell's diagonal Q element (unless the
        cell lies on the imaginary diagonal), and -- when the cell lies
        on the adjuster diagonal -- *every* Q element (S changes), which
        is what drives EVENODD's ~3 average update complexity.
        """
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        mod = self.mod
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        touched = [(self.p_col, row)]
        d = mod(row + col)
        if d == self.p - 1:
            touched += [(self.q_col, dd) for dd in range(self.p - 1)]
        else:
            touched.append((self.q_col, d))
        for c, rr in touched:
            np.bitwise_xor(buf[c, rr], delta, out=buf[c, rr])
        return len(touched)
