"""Blaum-Roth R_p codes (the 1993 construction underlying ref [13]).

Over the ring R_p = GF(2)[x]/M_p(x) (see :mod:`repro.gf.ring`) the
generator is

* P row: ``(1, 1, ..., 1)``
* Q row: ``(1, x, x^2, ..., x^(k-1))``

with strips of ``w = p - 1`` elements and ``k <= p - 1``.  MDS follows
from ``x^i + x^j = x^j (1 + x^(i-j))`` being a unit of R_p for
``i != j`` (verified computationally in the tests).

Historical placement: Blaum & Roth later proved the lowest-density
bound the paper's Table I cites and constructed codes attaining it;
Liberation codes are Plank's minimum-density family with the better
scheduling behaviour.  This module implements the *ring* (BR-93)
construction -- its Q bit-matrices carry one dense column per block
(the ``x^(p-1)`` wrap), so it is MDS but deliberately **not** minimum
density: comparing it against Liberation in the examples shows exactly
what the minimum-density property buys for update cost.

Like Cauchy RS, this implementation rides the bit-matrix substrate
(smart scheduling is the best generic approach known for it, which is
the paper's point about bit-matrix-presented codes).
"""

from __future__ import annotations

import numpy as np

from repro.bitmatrix.decode import bitmatrix_decode_schedule
from repro.bitmatrix.schedule import dumb_schedule, smart_schedule
from repro.codes.base import XorScheduleCode
from repro.gf.ring import PolyRing
from repro.utils.primes import next_prime
from repro.utils.validation import check_prime_p, check_k

__all__ = ["BlaumRothCode"]


class BlaumRothCode(XorScheduleCode):
    """Blaum-Roth RAID-6 code over R_p, via bit-matrices."""

    name = "blaum-roth"

    def __init__(
        self,
        k: int,
        *,
        p: int | None = None,
        element_size: int = 8,
        smart: bool = True,
        execution: str = "kernel",
    ) -> None:
        self.p = check_prime_p(p if p is not None else next_prime(k + 1))
        check_k(k, self.p - 1, code="blaum-roth")
        super().__init__(k, element_size=element_size, execution=execution)
        self.smart = bool(smart)
        self.ring = PolyRing(self.p)
        w = self.ring.w
        gen = np.zeros((2 * w, k * w), dtype=np.uint8)
        for j in range(k):
            gen[:w, j * w : (j + 1) * w] = np.eye(w, dtype=np.uint8)
            gen[w:, j * w : (j + 1) * w] = self.ring.power_matrix(j)
        self.generator = gen

    @property
    def rows(self) -> int:
        return self.p - 1

    def with_k(self, new_k: int):
        """Same ``p`` (strip geometry), different ``k <= p-1``."""
        return type(self)(
            new_k,
            p=self.p,
            element_size=self.element_size,
            smart=self.smart,
            execution=self.execution,
        )

    def build_encode_schedule(self):
        lower = smart_schedule if self.smart else dumb_schedule
        return lower(self.generator, self.rows, self.k, total_cols=self.total_cols)

    def build_decode_schedule(self, erasures):
        return bitmatrix_decode_schedule(
            self.generator,
            self.rows,
            self.k,
            erasures,
            smart=self.smart,
            total_cols=self.total_cols,
        )

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write via the generator column.

        The dense ``x^(p-1)`` wrap column makes the average ~3 parity
        updates -- the gap to Liberation's ~2 that minimum density
        closes."""
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        column = self.generator[:, col * self.rows + row]
        touched = 0
        for parity_bit in np.nonzero(column)[0]:
            c = self.p_col + int(parity_bit) // self.rows
            r = int(parity_bit) % self.rows
            np.bitwise_xor(buf[c, r], delta, out=buf[c, r])
            touched += 1
        return touched
