"""Closed-form complexity models (the paper's Table I).

These formulas describe the *expected* behaviour of each code; the test
suite asserts that the measured schedule costs of our implementations
match them, which is how we know the implementations faithfully
represent the codes being compared in Figs. 5-8.

All encoding/decoding complexities are per parity/missing *bit*; the
lower bound for a (k+2, k) MDS code is ``k - 1`` for both, and ``2`` for
update complexity (Blaum & Roth).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "lower_bound_encoding",
    "lower_bound_decoding",
    "lower_bound_update",
    "CodeModel",
    "EVENODD_MODEL",
    "RDP_MODEL",
    "LIBERATION_ORIGINAL_MODEL",
    "LIBERATION_OPTIMAL_MODEL",
    "TABLE1_MODELS",
]


def lower_bound_encoding(k: int) -> float:
    """Optimal XORs per parity bit for a (k+2, k) MDS array code."""
    return float(k - 1)


def lower_bound_decoding(k: int) -> float:
    """Optimal XORs per missing bit."""
    return float(k - 1)


def lower_bound_update(_k: int) -> float:
    """Minimum parity updates per data-bit modification (= r = 2)."""
    return 2.0


@dataclass(frozen=True)
class CodeModel:
    """Table I row: closed-form characteristics of one code family."""

    name: str
    column_bits: str  # w as a function of p
    k_max: str  # restriction on k

    def w(self, p: int) -> int:
        raise NotImplementedError

    def encoding_complexity(self, p: int, k: int) -> float:
        raise NotImplementedError

    def update_complexity(self, p: int, k: int) -> float:
        raise NotImplementedError


class _EvenOdd(CodeModel):
    def w(self, p: int) -> int:
        return p - 1

    def encoding_complexity(self, p: int, k: int) -> float:
        # ((p-1)(k-1) + k(p-1) - 1) / (2(p-1)): "about k - 1/2".
        return ((p - 1) * (2 * k - 1) - 1) / (2 * (p - 1))

    def update_complexity(self, p: int, k: int) -> float:
        # One P element always.  A bit on the adjuster (= missing)
        # diagonal has no Q element of its own but flips S and hence
        # every Q element; any other bit touches exactly one Q element.
        cells = k * (p - 1)
        s_cells = k - 1  # adjuster-diagonal cells among real columns
        plain = cells - s_cells
        return (plain * 2 + s_cells * (1 + (p - 1))) / cells


class _Rdp(CodeModel):
    def w(self, p: int) -> int:
        return p - 1

    def encoding_complexity(self, p: int, k: int) -> float:
        return ((p - 1) * (k - 1) + k * (p - 2)) / (2 * (p - 1))

    def update_complexity(self, p: int, k: int) -> float:
        # P element + own diagonal Q (unless on the missing diagonal)
        # + the diagonal Q through the changed P element (unless that
        # diagonal is the missing one, i.e. row 0 when i-1 wraps).
        cells = k * (p - 1)
        total = 0
        for j in range(k):
            for i in range(p - 1):
                n = 1  # P
                if (i + j) % p != p - 1:
                    n += 1
                if (i - 1) % p != p - 1:
                    n += 1
                total += n
        return total / cells


class _LiberationOriginal(CodeModel):
    def w(self, p: int) -> int:
        return p

    def encoding_complexity(self, p: int, k: int) -> float:
        # (k-1) + (k-1)/(2p): the dumb bit-matrix count.
        return (k - 1) + (k - 1) / (2 * p)

    def update_complexity(self, p: int, k: int) -> float:
        # Every bit touches P and its native anti-diagonal; one bit per
        # column (except column 0) additionally serves as an extra bit.
        cells = k * p
        extra = k - 1
        return (2 * cells + extra) / cells


class _LiberationOptimal(_LiberationOriginal):
    def encoding_complexity(self, p: int, k: int) -> float:
        return float(k - 1)  # Algorithm 1 meets the bound exactly


EVENODD_MODEL = _EvenOdd("evenodd", "p-1", "k <= p")
RDP_MODEL = _Rdp("rdp", "p-1", "k <= p-1")
LIBERATION_ORIGINAL_MODEL = _LiberationOriginal("liberation-original", "p", "k <= p")
LIBERATION_OPTIMAL_MODEL = _LiberationOptimal("liberation-optimal", "p", "k <= p")

TABLE1_MODELS = (
    EVENODD_MODEL,
    RDP_MODEL,
    LIBERATION_ORIGINAL_MODEL,
    LIBERATION_OPTIMAL_MODEL,
)
