"""Reed-Solomon P+Q RAID-6 (the Linux-kernel reference scheme).

The paper's §I points to the Linux RAID-6 driver as the canonical
"conventional" implementation: ``P`` is plain XOR parity and
``Q = sum g^j d_j`` over GF(2^8) with generator ``g = 2``.  This module
provides that code behind the same :class:`~repro.codes.base.RAID6Code`
interface so the array simulator and the examples can swap it in, and
so the documentation's "why XOR codes" comparison is runnable.

It is *not* an XOR-schedule code: its cost model is field
multiplications, so it participates in none of the XOR-count figures --
exactly as in the paper, where RS serves as motivation rather than as a
measured baseline.

Any strip height works; we default to ``rows = 1`` with the whole strip
as a single element, since RS RAID-6 has no intra-strip structure.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import RAID6Code
from repro.gf.gf256 import GF256
from repro.utils.validation import check_erasures

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode(RAID6Code):
    """GF(2^8) P+Q code with vectorised table arithmetic."""

    name = "reed-solomon"

    def __init__(self, k: int, *, element_size: int = 8, rows: int = 1) -> None:
        if not 2 <= k <= 255:
            raise ValueError(f"reed-solomon: k must be in [2, 255], got {k}")
        self._rows = int(rows)
        if self._rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        super().__init__(k, element_size=element_size)
        self.gf = GF256()
        # Q-parity coefficients g^j, one per data column.
        self._coeff = np.array([self.gf.gen_pow(j) for j in range(self.k)], dtype=np.uint8)

    @property
    def rows(self) -> int:
        return self._rows

    def with_k(self, new_k: int):
        """Same strip geometry, different ``k``.

        Note: unlike the XOR array codes, RS parity *changes* when a
        column is appended only if that column is non-zero; a zero
        column contributes nothing to P or Q, so growth is free here
        too.
        """
        return type(self)(new_k, element_size=self.element_size, rows=self._rows)

    # -- byte views -----------------------------------------------------------

    @staticmethod
    def _bytes(strip: np.ndarray) -> np.ndarray:
        """View a strip (rows, words) as a flat byte vector."""
        return strip.reshape(-1).view(np.uint8)

    # -- coding ------------------------------------------------------------------

    def encode(self, buf: np.ndarray) -> np.ndarray:
        self.check_stripe(buf)
        pb = self._bytes(buf[self.p_col])
        qb = self._bytes(buf[self.q_col])
        pb[:] = 0
        qb[:] = 0
        for j in range(self.k):
            db = self._bytes(buf[j])
            np.bitwise_xor(pb, db, out=pb)
            np.bitwise_xor(qb, self._bytes(self.gf.mul_strip(self._coeff[j], buf[j])), out=qb)
        return buf

    def decode(self, buf: np.ndarray, erasures) -> np.ndarray:
        self.check_stripe(buf)
        ers = check_erasures(erasures, self.n_cols)
        if not ers:
            return buf
        data = [c for c in ers if c < self.k]
        parity = [c for c in ers if c >= self.k]

        if len(data) == 2:
            self._decode_two_data(buf, data[0], data[1])
        elif len(data) == 1:
            if self.p_col in parity:
                self._decode_one_data_with_q(buf, data[0])
            else:
                self._decode_one_data_with_p(buf, data[0])
        if parity:
            self._reencode_parity(buf, parity)
        return buf

    def _reencode_parity(self, buf: np.ndarray, parity: list[int]) -> None:
        if self.p_col in parity:
            pb = self._bytes(buf[self.p_col])
            pb[:] = 0
            for j in range(self.k):
                np.bitwise_xor(pb, self._bytes(buf[j]), out=pb)
        if self.q_col in parity:
            qb = self._bytes(buf[self.q_col])
            qb[:] = 0
            for j in range(self.k):
                np.bitwise_xor(
                    qb, self._bytes(self.gf.mul_strip(self._coeff[j], buf[j])), out=qb
                )

    def _syndrome_p(self, buf: np.ndarray, skip: set[int]) -> np.ndarray:
        s = self._bytes(buf[self.p_col]).copy()
        for j in range(self.k):
            if j not in skip:
                np.bitwise_xor(s, self._bytes(buf[j]), out=s)
        return s

    def _syndrome_q(self, buf: np.ndarray, skip: set[int]) -> np.ndarray:
        s = self._bytes(buf[self.q_col]).copy()
        for j in range(self.k):
            if j not in skip:
                np.bitwise_xor(
                    s, self._bytes(self.gf.mul_strip(self._coeff[j], buf[j])), out=s
                )
        return s

    def _decode_one_data_with_p(self, buf: np.ndarray, col: int) -> None:
        """Missing data strip from P (plain XOR)."""
        self._bytes(buf[col])[:] = self._syndrome_p(buf, {col})

    def _decode_one_data_with_q(self, buf: np.ndarray, col: int) -> None:
        """Missing data strip from Q: ``d = S_q / g^col``."""
        s = self._syndrome_q(buf, {col})
        inv = self.gf.inverse(self._coeff[col])
        self._bytes(buf[col])[:] = self._bytes(self.gf.mul_strip(int(inv), s))

    def _decode_two_data(self, buf: np.ndarray, a: int, b: int) -> None:
        """Two missing data strips from P and Q.

        Solving ``da ^ db = Sp`` and ``ga*da ^ gb*db = Sq`` gives
        ``da = (Sq ^ gb*Sp) / (ga ^ gb)`` -- the standard RAID-6
        double-failure formula, vectorised over the whole strip.
        """
        sp = self._syndrome_p(buf, {a, b})
        sq = self._syndrome_q(buf, {a, b})
        ga, gb = int(self._coeff[a]), int(self._coeff[b])
        denom_inv = int(self.gf.inverse(ga ^ gb))
        num = sq ^ self._bytes(self.gf.mul_strip(gb, sp.view(np.uint8)))
        da = self._bytes(self.gf.mul_strip(denom_inv, num.view(np.uint8)))
        self._bytes(buf[a])[:] = da
        self._bytes(buf[b])[:] = sp ^ da

    # -- small writes ----------------------------------------------------------------

    def update(self, buf: np.ndarray, col: int, row: int, new_element: np.ndarray) -> int:
        """Delta small-write: RS RAID-6 also attains 2 parity updates."""
        self.check_stripe(buf)
        if not 0 <= col < self.k:
            raise IndexError(f"update targets data columns only, got {col}")
        delta = np.bitwise_xor(buf[col, row], new_element)
        buf[col, row] = new_element
        np.bitwise_xor(buf[self.p_col, row], delta, out=buf[self.p_col, row])
        qd = self.gf.mul_strip(int(self._coeff[col]), delta)
        np.bitwise_xor(buf[self.q_col, row], qd, out=buf[self.q_col, row])
        return 2
