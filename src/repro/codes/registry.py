"""Name-based code construction.

``make_code("liberation-optimal", k=10)`` is the one-stop factory used
by the array simulator, the examples and the benchmark harness; it
keeps string names (CLI/config friendly) in one place.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.codes.base import RAID6Code
from repro.codes.blaum_roth import BlaumRothCode
from repro.codes.cauchy import CauchyRSCode
from repro.codes.evenodd import EvenOddCode
from repro.codes.liberation import LiberationOptimal, LiberationOriginal
from repro.codes.rdp import RDPCode
from repro.codes.reed_solomon import ReedSolomonCode

__all__ = ["CODE_FAMILIES", "make_code", "available_codes"]


def _original_dumb(k: int, **kw) -> LiberationOriginal:
    return LiberationOriginal(k, smart=False, **kw)


def _cauchy_original(k: int, **kw) -> CauchyRSCode:
    return CauchyRSCode(k, good=False, **kw)


CODE_FAMILIES: dict[str, Callable[..., RAID6Code]] = {
    "liberation-optimal": LiberationOptimal,
    "liberation-original": LiberationOriginal,
    "liberation-original-dumb": _original_dumb,
    "evenodd": EvenOddCode,
    "rdp": RDPCode,
    "reed-solomon": ReedSolomonCode,
    "cauchy-rs": CauchyRSCode,
    "cauchy-rs-original": _cauchy_original,
    "blaum-roth": BlaumRothCode,
}


def available_codes() -> tuple[str, ...]:
    """Registered code family names."""
    return tuple(CODE_FAMILIES)


def make_code(name: str, k: int, **kwargs) -> RAID6Code:
    """Instantiate a code family by name.

    Extra keyword arguments are forwarded to the constructor (``p``,
    ``element_size``, ...).
    """
    try:
        factory = CODE_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown code {name!r}; available: {', '.join(CODE_FAMILIES)}"
        ) from None
    return factory(k, **kwargs)
